#include "net/headers.h"

#include <algorithm>

#include "util/byte_io.h"

namespace upbound {

namespace {

constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

// Pseudo-header checksum input shared by TCP and UDP.
std::uint32_t pseudo_header_sum(const FiveTuple& t, std::uint32_t l4_len) {
  std::uint32_t sum = 0;
  const std::uint32_t s = t.src_addr.value();
  const std::uint32_t d = t.dst_addr.value();
  sum += (s >> 16) + (s & 0xffff);
  sum += (d >> 16) + (d & 0xffff);
  sum += static_cast<std::uint8_t>(t.protocol);
  sum += l4_len & 0xffff;
  sum += l4_len >> 16;
  return sum;
}

std::uint16_t fold(std::uint32_t sum) {
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::uint32_t sum_bytes(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;
  return sum;
}

void write_mac_for(Ipv4Addr addr, ByteWriter& w) {
  // Locally administered unicast MAC derived from the IP; purely cosmetic.
  w.u8(0x02);
  w.u8(0x42);
  w.u8(static_cast<std::uint8_t>(addr.value() >> 24));
  w.u8(static_cast<std::uint8_t>(addr.value() >> 16));
  w.u8(static_cast<std::uint8_t>(addr.value() >> 8));
  w.u8(static_cast<std::uint8_t>(addr.value()));
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  return fold(sum_bytes(data));
}

std::vector<std::uint8_t> encode_frame(const PacketRecord& pkt) {
  const bool tcp = pkt.tuple.protocol == Protocol::kTcp;
  const std::uint32_t l4_header = tcp ? kTcpHeaderSize : kUdpHeaderSize;
  const std::uint32_t l4_len = l4_header + pkt.payload_size;
  const std::uint32_t ip_total = kIpv4HeaderSize + l4_len;

  std::vector<std::uint8_t> out;
  out.reserve(kEthernetHeaderSize + ip_total);
  ByteWriter w{out};

  // Ethernet II.
  write_mac_for(pkt.tuple.dst_addr, w);
  write_mac_for(pkt.tuple.src_addr, w);
  w.u16be(kEtherTypeIpv4);

  // IPv4 (no options).
  const std::size_t ip_begin = out.size();
  w.u8(0x45);                 // version 4, IHL 5
  w.u8(0);                    // DSCP/ECN
  w.u16be(static_cast<std::uint16_t>(ip_total));
  w.u16be(0);                 // identification
  w.u16be(0x4000);            // flags: DF
  w.u8(64);                   // TTL
  w.u8(static_cast<std::uint8_t>(pkt.tuple.protocol));
  w.u16be(0);                 // checksum placeholder
  w.u32be(pkt.tuple.src_addr.value());
  w.u32be(pkt.tuple.dst_addr.value());
  const std::uint16_t ip_csum = internet_checksum(
      std::span<const std::uint8_t>{out.data() + ip_begin, kIpv4HeaderSize});
  out[ip_begin + 10] = static_cast<std::uint8_t>(ip_csum >> 8);
  out[ip_begin + 11] = static_cast<std::uint8_t>(ip_csum);

  // L4 header.
  const std::size_t l4_begin = out.size();
  if (tcp) {
    w.u16be(pkt.tuple.src_port);
    w.u16be(pkt.tuple.dst_port);
    w.u32be(0);  // seq (not modeled)
    w.u32be(0);  // ack (not modeled)
    w.u8(0x50);  // data offset 5
    w.u8(pkt.flags.to_byte());
    w.u16be(65535);  // window
    w.u16be(0);      // checksum placeholder
    w.u16be(0);      // urgent pointer
  } else {
    w.u16be(pkt.tuple.src_port);
    w.u16be(pkt.tuple.dst_port);
    w.u16be(static_cast<std::uint16_t>(l4_len));
    w.u16be(0);  // checksum placeholder
  }

  // Payload: captured prefix, then zero fill to the declared size.
  w.bytes(std::span<const std::uint8_t>{pkt.payload.data(),
                                        std::min<std::size_t>(
                                            pkt.payload.size(),
                                            pkt.payload_size)});
  out.resize(kEthernetHeaderSize + ip_total, 0);

  // L4 checksum over pseudo-header + segment.
  std::uint32_t sum = pseudo_header_sum(pkt.tuple, l4_len);
  sum += sum_bytes(std::span<const std::uint8_t>{out.data() + l4_begin,
                                                 l4_len});
  std::uint16_t l4_csum = fold(sum);
  if (!tcp && l4_csum == 0) l4_csum = 0xffff;  // UDP: 0 means "no checksum"
  const std::size_t csum_off = tcp ? l4_begin + 16 : l4_begin + 6;
  out[csum_off] = static_cast<std::uint8_t>(l4_csum >> 8);
  out[csum_off + 1] = static_cast<std::uint8_t>(l4_csum);

  return out;
}

bool decode_frame_into(std::span<const std::uint8_t> frame,
                       SimTime timestamp, DecodedFrame& out) {
  try {
    // `out` may be a reused buffer: reset every field that is only
    // conditionally written below (flags stay default for UDP, checksum
    // verdicts only resolve when the capture holds the full segment).
    out.ip_checksum_ok = false;
    out.l4_checksum_ok = false;
    out.packet.flags = TcpFlags{};
    out.packet.checksum_valid = true;

    ByteReader r{frame};
    r.skip(12);  // MACs
    if (r.u16be() != kEtherTypeIpv4) return false;

    const std::size_t ip_begin = r.position();
    const std::uint8_t ver_ihl = r.u8();
    if ((ver_ihl >> 4) != 4) return false;
    const std::size_t ihl = (ver_ihl & 0x0f) * 4u;
    if (ihl < kIpv4HeaderSize) return false;
    r.skip(1);  // DSCP
    const std::uint16_t ip_total = r.u16be();
    r.skip(4);  // id, flags/frag
    r.skip(1);  // TTL
    const std::uint8_t proto = r.u8();
    r.skip(2);  // header checksum (verified below)
    const std::uint32_t src = r.u32be();
    const std::uint32_t dst = r.u32be();
    if (ihl > kIpv4HeaderSize) r.skip(ihl - kIpv4HeaderSize);

    if (proto != static_cast<std::uint8_t>(Protocol::kTcp) &&
        proto != static_cast<std::uint8_t>(Protocol::kUdp)) {
      return false;
    }
    if (ip_total < ihl) return false;

    PacketRecord& pkt = out.packet;
    pkt.timestamp = timestamp;
    pkt.tuple.protocol = static_cast<Protocol>(proto);
    pkt.tuple.src_addr = Ipv4Addr{src};
    pkt.tuple.dst_addr = Ipv4Addr{dst};

    const std::size_t ip_captured =
        std::min<std::size_t>(frame.size() - ip_begin, ihl);
    out.ip_checksum_ok =
        ip_captured >= ihl &&
        internet_checksum(frame.subspan(ip_begin, ihl)) == 0;

    const std::size_t l4_begin = r.position();
    const std::uint32_t l4_total = ip_total - static_cast<std::uint32_t>(ihl);
    std::size_t l4_header;
    std::uint16_t udp_checksum_field = 1;  // nonzero unless UDP says "none"
    if (pkt.tuple.protocol == Protocol::kTcp) {
      pkt.tuple.src_port = r.u16be();
      pkt.tuple.dst_port = r.u16be();
      r.skip(8);  // seq, ack
      const std::uint8_t offset = r.u8();
      l4_header = (offset >> 4) * 4u;
      if (l4_header < kTcpHeaderSize || l4_header > l4_total) {
        return false;
      }
      pkt.flags = TcpFlags::from_byte(r.u8());
      r.skip(4);  // window, checksum (verified below)
      r.skip(2);  // urgent
      if (l4_header > kTcpHeaderSize) r.skip(l4_header - kTcpHeaderSize);
    } else {
      pkt.tuple.src_port = r.u16be();
      pkt.tuple.dst_port = r.u16be();
      const std::uint16_t udp_len = r.u16be();
      udp_checksum_field = r.u16be();
      l4_header = kUdpHeaderSize;
      if (udp_len < kUdpHeaderSize || udp_len > l4_total) return false;
    }

    pkt.payload_size = l4_total - static_cast<std::uint32_t>(l4_header);

    // Captured payload may be shorter than the on-wire payload (snaplen).
    const std::size_t captured_payload =
        std::min<std::size_t>(r.remaining(), pkt.payload_size);
    const auto payload = r.bytes(captured_payload);
    pkt.payload.assign(payload.begin(), payload.end());

    // L4 checksum verification requires the full segment in the capture.
    const std::size_t l4_captured = frame.size() - (ip_begin + ihl);
    if (l4_captured >= l4_total) {
      if (pkt.tuple.protocol == Protocol::kUdp && udp_checksum_field == 0) {
        out.l4_checksum_ok = true;  // UDP checksum disabled by sender
      } else {
        std::uint32_t sum = pseudo_header_sum(pkt.tuple, l4_total);
        sum += sum_bytes(frame.subspan(ip_begin + ihl, l4_total));
        out.l4_checksum_ok = fold(sum) == 0;
      }
      pkt.checksum_valid = out.l4_checksum_ok;
      (void)l4_begin;
    }
    if (ip_captured >= ihl && !out.ip_checksum_ok) {
      pkt.checksum_valid = false;
    }
    return true;
  } catch (const ByteUnderflow&) {
    return false;
  }
}

std::optional<DecodedFrame> decode_frame(std::span<const std::uint8_t> frame,
                                         SimTime timestamp) {
  DecodedFrame out;
  if (!decode_frame_into(frame, timestamp, out)) return std::nullopt;
  return out;
}

}  // namespace upbound
