// IPv4 addressing: address values, dotted-quad parsing/formatting, and CIDR
// prefixes used to delimit the client network at the filter's vantage point.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace upbound {

/// An IPv4 address stored in host byte order.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  explicit constexpr Ipv4Addr(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : value_((static_cast<std::uint32_t>(a) << 24) |
               (static_cast<std::uint32_t>(b) << 16) |
               (static_cast<std::uint32_t>(c) << 8) | d) {}

  /// Parses "a.b.c.d"; nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(std::string_view text);

  constexpr std::uint32_t value() const { return value_; }

  std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Addr&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix, e.g. 140.112.30.0/24.
class Cidr {
 public:
  constexpr Cidr() = default;
  /// Requires prefix_len <= 32. Host bits of `base` are ignored.
  Cidr(Ipv4Addr base, unsigned prefix_len);

  /// Parses "a.b.c.d/len"; nullopt on malformed input.
  static std::optional<Cidr> parse(std::string_view text);

  bool contains(Ipv4Addr addr) const {
    return (addr.value() & mask_) == network_;
  }

  Ipv4Addr network() const { return Ipv4Addr{network_}; }
  unsigned prefix_len() const { return prefix_len_; }
  /// Number of addresses covered by the prefix.
  std::uint64_t size() const { return 1ULL << (32 - prefix_len_); }
  /// The i-th address inside the prefix. Requires i < size().
  Ipv4Addr host(std::uint64_t i) const;

  std::string to_string() const;

  bool operator==(const Cidr&) const = default;

 private:
  std::uint32_t network_ = 0;
  std::uint32_t mask_ = 0;
  unsigned prefix_len_ = 0;
};

}  // namespace upbound
