#include "net/packet.h"

#include <algorithm>
#include <cstdio>

namespace upbound {

std::uint8_t TcpFlags::to_byte() const {
  std::uint8_t b = 0;
  if (fin) b |= 0x01;
  if (syn) b |= 0x02;
  if (rst) b |= 0x04;
  if (psh) b |= 0x08;
  if (ack) b |= 0x10;
  return b;
}

TcpFlags TcpFlags::from_byte(std::uint8_t b) {
  TcpFlags f;
  f.fin = b & 0x01;
  f.syn = b & 0x02;
  f.rst = b & 0x04;
  f.psh = b & 0x08;
  f.ack = b & 0x10;
  return f;
}

std::string TcpFlags::to_string() const {
  std::string out;
  if (syn) out += "S";
  if (ack) out += "A";
  if (psh) out += "P";
  if (fin) out += "F";
  if (rst) out += "R";
  if (out.empty()) out = ".";
  return out;
}

std::string PacketRecord::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s %s [%s] len=%u", timestamp.to_string().c_str(),
                tuple.to_string().c_str(), flags.to_string().c_str(),
                payload_size);
  return buf;
}

bool is_time_sorted(const Trace& trace) {
  return std::is_sorted(
      trace.begin(), trace.end(),
      [](const PacketRecord& a, const PacketRecord& b) {
        return a.timestamp < b.timestamp;
      });
}

}  // namespace upbound
