#include "net/app_protocol.h"

namespace upbound {

const char* app_protocol_name(AppProtocol app) {
  switch (app) {
    case AppProtocol::kHttp: return "HTTP";
    case AppProtocol::kFtp: return "FTP";
    case AppProtocol::kDns: return "DNS";
    case AppProtocol::kBitTorrent: return "bittorrent";
    case AppProtocol::kEdonkey: return "edonkey";
    case AppProtocol::kGnutella: return "gnutella";
    case AppProtocol::kOther: return "Others";
    case AppProtocol::kUnknown: return "UNKNOWN";
  }
  return "?";
}

}  // namespace upbound
