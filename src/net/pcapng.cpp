#include "net/pcapng.h"

#include <algorithm>

#include "net/headers.h"
#include "util/byte_io.h"

namespace upbound {

namespace {

void pad32(std::vector<std::uint8_t>& out) {
  while (out.size() % 4 != 0) out.push_back(0);
}

std::uint32_t get_u32(std::span<const std::uint8_t> data, std::size_t off,
                      bool swap) {
  std::uint32_t v = static_cast<std::uint32_t>(data[off]) |
                    (static_cast<std::uint32_t>(data[off + 1]) << 8) |
                    (static_cast<std::uint32_t>(data[off + 2]) << 16) |
                    (static_cast<std::uint32_t>(data[off + 3]) << 24);
  return swap ? bswap32(v) : v;
}

std::uint16_t get_u16(std::span<const std::uint8_t> data, std::size_t off,
                      bool swap) {
  const std::uint16_t v = static_cast<std::uint16_t>(
      data[off] | (static_cast<std::uint16_t>(data[off + 1]) << 8));
  return swap ? static_cast<std::uint16_t>((v >> 8) | (v << 8)) : v;
}

}  // namespace

PcapngWriter::PcapngWriter(const std::string& path, std::uint32_t snaplen)
    : snaplen_(snaplen) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) throw PcapError("cannot open for writing: " + path);

  std::vector<std::uint8_t> out;
  ByteWriter w{out};
  // Section Header Block.
  w.u32le(kPcapngShb);
  w.u32le(28);                      // block total length (no options)
  w.u32le(kPcapngByteOrderMagic);
  w.u16le(1);                       // major
  w.u16le(0);                       // minor
  w.u32le(0xffffffff);              // section length unknown
  w.u32le(0xffffffff);
  w.u32le(28);
  // Interface Description Block (Ethernet, default usec resolution).
  w.u32le(kPcapngIdb);
  w.u32le(20);
  w.u16le(1);  // LINKTYPE_ETHERNET
  w.u16le(0);  // reserved
  w.u32le(snaplen_);
  w.u32le(20);
  if (std::fwrite(out.data(), 1, out.size(), file_) != out.size()) {
    throw PcapError("short write on pcapng header");
  }
}

PcapngWriter::~PcapngWriter() { close(); }

void PcapngWriter::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void PcapngWriter::write(const PacketRecord& pkt) {
  if (file_ == nullptr) throw PcapError("write after close");

  const std::vector<std::uint8_t> frame = encode_frame(pkt);
  const std::uint32_t orig_len = static_cast<std::uint32_t>(frame.size());
  const std::uint32_t headers = orig_len - pkt.payload_size;
  std::uint32_t incl_len = headers + static_cast<std::uint32_t>(
                                         std::min<std::size_t>(
                                             pkt.payload.size(),
                                             pkt.payload_size));
  incl_len = std::min(incl_len, snaplen_);

  std::vector<std::uint8_t> out;
  ByteWriter w{out};
  const std::uint64_t ts = static_cast<std::uint64_t>(pkt.timestamp.usec());
  const std::uint32_t padded = (incl_len + 3) & ~3u;
  const std::uint32_t total = 32 + padded;

  w.u32le(kPcapngEpb);
  w.u32le(total);
  w.u32le(0);  // interface id
  w.u32le(static_cast<std::uint32_t>(ts >> 32));
  w.u32le(static_cast<std::uint32_t>(ts));
  w.u32le(incl_len);
  w.u32le(orig_len);
  w.bytes(std::span<const std::uint8_t>{frame.data(), incl_len});
  pad32(out);
  w.u32le(total);

  if (std::fwrite(out.data(), 1, out.size(), file_) != out.size()) {
    throw PcapError("short write on pcapng packet block");
  }
  ++packets_written_;
}

void PcapngWriter::write_all(const Trace& trace) {
  for (const PacketRecord& pkt : trace) write(pkt);
}

PcapngReader::PcapngReader(const std::string& path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) throw PcapError("cannot open for reading: " + path);

  std::vector<std::uint8_t> body;
  std::uint32_t type = 0;
  if (!read_block(body, type) || type != kPcapngShb) {
    throw PcapError("pcapng: file does not start with a section header");
  }
  parse_section_header(body);
}

PcapngReader::~PcapngReader() {
  if (file_ != nullptr) std::fclose(file_);
}

// Reads one block's body (without the type/length framing). The first
// block must be read with swap_ == false handling both orders: the SHB's
// total length is endian-ambiguous until its byte-order magic is parsed,
// so this uses a two-step read for SHBs.
bool PcapngReader::read_block(std::vector<std::uint8_t>& body,
                              std::uint32_t& type) {
  std::uint8_t head[8];
  const std::size_t got = std::fread(head, 1, sizeof(head), file_);
  if (got == 0) return false;
  if (got != sizeof(head)) throw PcapError("pcapng: truncated block header");

  type = get_u32(head, 0, false);  // SHB type is palindromic; others use
                                   // the section's established order
  if (type != kPcapngShb) type = get_u32(head, 0, swap_);

  std::uint32_t total = get_u32(head, 4, swap_);
  if (type == kPcapngShb) {
    // Peek the byte-order magic to disambiguate the length.
    std::uint8_t magic_bytes[4];
    if (std::fread(magic_bytes, 1, 4, file_) != 4) {
      throw PcapError("pcapng: truncated section header");
    }
    const std::uint32_t magic = get_u32(magic_bytes, 0, false);
    if (magic == kPcapngByteOrderMagic) {
      swap_ = false;
    } else if (bswap32(magic) == kPcapngByteOrderMagic) {
      swap_ = true;
    } else {
      throw PcapError("pcapng: bad byte-order magic");
    }
    total = get_u32(head, 4, swap_);
    if (total < 28 || total % 4 != 0) {
      throw PcapError("pcapng: bad section header length");
    }
    // Body = everything after type+length (total - 8 bytes), of which the
    // 4 magic bytes are already consumed.
    body.resize(total - 8);
    std::copy(magic_bytes, magic_bytes + 4, body.begin());
    if (std::fread(body.data() + 4, 1, body.size() - 4, file_) !=
        body.size() - 4) {
      throw PcapError("pcapng: truncated section header body");
    }
    return true;
  }

  if (total < 12 || total % 4 != 0 || total > 256 * 1024 * 1024) {
    throw PcapError("pcapng: bad block length");
  }
  body.resize(total - 8);
  if (std::fread(body.data(), 1, body.size(), file_) != body.size()) {
    throw PcapError("pcapng: truncated block body");
  }
  // Verify the trailing duplicate length.
  if (get_u32(body, body.size() - 4, swap_) != total) {
    throw PcapError("pcapng: trailing length mismatch");
  }
  body.resize(body.size() - 4);
  return true;
}

void PcapngReader::parse_section_header(std::span<const std::uint8_t> body) {
  // body: magic(4) version(4) section_length(8) options... trailer already
  // included for SHB (read_block keeps it; harmless).
  if (body.size() < 16) throw PcapError("pcapng: short section header");
  if_ticks_per_sec_.clear();  // interfaces are per-section
}

void PcapngReader::parse_interface_block(std::span<const std::uint8_t> body) {
  // body: linktype(2) reserved(2) snaplen(4) options...
  if (body.size() < 8) throw PcapError("pcapng: short interface block");
  const std::uint16_t link_type = get_u16(body, 0, swap_);
  if (link_type != 1) {
    // Non-Ethernet interface: record a sentinel so its packets skip.
    if_ticks_per_sec_.push_back(0);
    return;
  }
  // Scan options for if_tsresol (code 9, one byte).
  std::uint64_t ticks = 1'000'000;
  std::size_t off = 8;
  while (off + 4 <= body.size()) {
    const std::uint16_t code = get_u16(body, off, swap_);
    const std::uint16_t len = get_u16(body, off + 2, swap_);
    off += 4;
    if (code == 0) break;  // opt_endofopt
    if (off + len > body.size()) break;
    if (code == 9 && len >= 1) {
      const std::uint8_t resol = body[off];
      if (resol & 0x80) {
        ticks = 1ULL << (resol & 0x7f);
      } else {
        ticks = 1;
        for (int i = 0; i < (resol & 0x7f) && ticks < 1'000'000'000'000ULL;
             ++i) {
          ticks *= 10;
        }
      }
    }
    off += (len + 3u) & ~3u;  // options pad to 32 bits
  }
  if_ticks_per_sec_.push_back(ticks);
}

std::optional<PacketRecord> PcapngReader::next() {
  std::vector<std::uint8_t> body;
  std::uint32_t type = 0;
  while (read_block(body, type)) {
    if (type == kPcapngShb) {
      parse_section_header(body);
      continue;
    }
    if (type == kPcapngIdb) {
      parse_interface_block(body);
      continue;
    }
    if (type == kPcapngEpb) {
      if (body.size() < 20) throw PcapError("pcapng: short packet block");
      const std::uint32_t interface_id = get_u32(body, 0, swap_);
      const std::uint64_t ts =
          (static_cast<std::uint64_t>(get_u32(body, 4, swap_)) << 32) |
          get_u32(body, 8, swap_);
      const std::uint32_t incl_len = get_u32(body, 12, swap_);
      if (20 + incl_len > body.size()) {
        throw PcapError("pcapng: packet larger than block");
      }
      const std::uint64_t ticks =
          interface_id < if_ticks_per_sec_.size()
              ? if_ticks_per_sec_[interface_id]
              : 1'000'000;
      if (ticks == 0) {  // non-Ethernet interface
        ++blocks_skipped_;
        continue;
      }
      const std::int64_t usec = static_cast<std::int64_t>(
          static_cast<double>(ts) * 1e6 / static_cast<double>(ticks));
      auto decoded =
          decode_frame(std::span<const std::uint8_t>{body.data() + 20,
                                                     incl_len},
                       SimTime::from_usec(usec));
      if (!decoded) {
        ++blocks_skipped_;
        continue;
      }
      ++packets_read_;
      return decoded->packet;
    }
    if (type == kPcapngSpb) {
      if (body.size() < 4) throw PcapError("pcapng: short simple block");
      const std::uint32_t orig_len = get_u32(body, 0, swap_);
      const std::uint32_t incl_len = std::min<std::uint32_t>(
          orig_len, static_cast<std::uint32_t>(body.size() - 4));
      // SPBs carry no timestamp; they land at the trace origin.
      auto decoded = decode_frame(
          std::span<const std::uint8_t>{body.data() + 4, incl_len},
          SimTime::origin());
      if (!decoded) {
        ++blocks_skipped_;
        continue;
      }
      ++packets_read_;
      return decoded->packet;
    }
    ++blocks_skipped_;
  }
  return std::nullopt;
}

Trace PcapngReader::read_all() {
  Trace out;
  while (auto pkt = next()) out.push_back(std::move(*pkt));
  return out;
}

}  // namespace upbound
