// PacketBatch: a zero-copy, read-only view over a contiguous run of
// PacketRecords -- the unit of work of the batched datapath. A batch is
// just a span: building one never allocates or copies, and sub-batches
// (per-stage runs, rotation-bounded chunks) are cheap slices of the same
// storage. Batch consumers require timestamps to be non-decreasing within
// a batch; EdgeRouter enforces this by clamping regressions before the
// filter stages see them.
#pragma once

#include <span>

#include "net/packet.h"

namespace upbound {

class PacketBatch {
 public:
  using iterator = const PacketRecord*;

  constexpr PacketBatch() = default;
  constexpr PacketBatch(const PacketRecord* data, std::size_t count)
      : span_(data, count) {}
  // Implicit on purpose: spans and whole traces are batches.
  constexpr PacketBatch(std::span<const PacketRecord> span) : span_(span) {}
  PacketBatch(const Trace& trace) : span_(trace.data(), trace.size()) {}

  constexpr std::size_t size() const { return span_.size(); }
  constexpr bool empty() const { return span_.empty(); }
  constexpr const PacketRecord& operator[](std::size_t i) const {
    return span_[i];
  }
  constexpr const PacketRecord& front() const { return span_.front(); }
  constexpr const PacketRecord& back() const { return span_.back(); }
  constexpr iterator begin() const { return span_.data(); }
  constexpr iterator end() const { return span_.data() + span_.size(); }

  constexpr PacketBatch subspan(std::size_t offset,
                                std::size_t count = std::dynamic_extent)
      const {
    return PacketBatch{span_.subspan(offset, count)};
  }

  /// True when timestamps are non-decreasing across the batch.
  bool is_time_sorted() const {
    for (std::size_t i = 1; i < span_.size(); ++i) {
      if (span_[i].timestamp < span_[i - 1].timestamp) return false;
    }
    return true;
  }

 private:
  std::span<const PacketRecord> span_;
};

}  // namespace upbound
