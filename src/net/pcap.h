// Classic pcap (v2.4) file reader/writer, implemented from scratch.
//
// The paper captures traces with tcpdump and replays them through the
// filters; this module gives the same libpcap-compatible fit without the
// dependency. Both byte orders and both microsecond/nanosecond timestamp
// magics are read; writing always uses the little-endian microsecond magic,
// which every libpcap tool accepts.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/headers.h"
#include "net/packet.h"

namespace upbound {

constexpr std::uint32_t kPcapMagicUsecLe = 0xa1b2c3d4;
constexpr std::uint32_t kPcapMagicNsecLe = 0xa1b23c4d;
constexpr std::uint32_t kPcapLinkTypeEthernet = 1;
constexpr std::uint32_t kDefaultSnapLen = 65535;

/// Thrown on malformed pcap files and I/O failures.
class PcapError : public std::runtime_error {
 public:
  explicit PcapError(const std::string& what) : std::runtime_error(what) {}
};

/// Streams PacketRecords to a pcap file. Frames are synthesized through
/// encode_frame(); payloads captured only as a prefix are truncated in the
/// record (incl_len < orig_len) exactly like a snaplen-limited capture.
class PcapWriter {
 public:
  explicit PcapWriter(const std::string& path,
                      std::uint32_t snaplen = kDefaultSnapLen);
  ~PcapWriter();

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  void write(const PacketRecord& pkt);
  void write_all(const Trace& trace);

  std::uint64_t packets_written() const { return packets_written_; }

  /// Flushes and closes; called by the destructor if not called explicitly.
  void close();

 private:
  std::FILE* file_ = nullptr;
  std::uint32_t snaplen_;
  std::uint64_t packets_written_ = 0;
};

/// Reads a pcap file into PacketRecords, skipping non-IPv4/TCP/UDP frames.
class PcapReader {
 public:
  explicit PcapReader(const std::string& path);
  ~PcapReader();

  PcapReader(const PcapReader&) = delete;
  PcapReader& operator=(const PcapReader&) = delete;

  /// Next decodable packet, or nullopt at end of file. Malformed frames
  /// and unsupported protocols are counted and skipped.
  std::optional<PacketRecord> next();

  /// Reads the remaining packets.
  Trace read_all();

  std::uint64_t packets_read() const { return packets_read_; }
  std::uint64_t frames_skipped() const { return frames_skipped_; }
  bool nanosecond_resolution() const { return nanosecond_; }

 private:
  std::FILE* file_ = nullptr;
  bool swap_ = false;        // file byte order != host order
  bool nanosecond_ = false;  // magic selects usec vs nsec timestamps
  std::uint64_t packets_read_ = 0;
  std::uint64_t frames_skipped_ = 0;
  std::vector<std::uint8_t> frame_buf_;
};

}  // namespace upbound
