#include "net/direction.h"

#include "net/packet.h"

namespace upbound {

const char* direction_name(Direction d) {
  switch (d) {
    case Direction::kOutbound: return "outbound";
    case Direction::kInbound: return "inbound";
    case Direction::kLocal: return "local";
    case Direction::kTransit: return "transit";
  }
  return "?";
}

ClientNetwork::ClientNetwork(std::vector<Cidr> prefixes)
    : prefixes_(std::move(prefixes)) {}

bool ClientNetwork::is_internal(Ipv4Addr addr) const {
  for (const auto& prefix : prefixes_) {
    if (prefix.contains(addr)) return true;
  }
  return false;
}

Direction ClientNetwork::classify(const FiveTuple& tuple) const {
  const bool src_in = is_internal(tuple.src_addr);
  const bool dst_in = is_internal(tuple.dst_addr);
  if (src_in && dst_in) return Direction::kLocal;
  if (src_in) return Direction::kOutbound;
  if (dst_in) return Direction::kInbound;
  return Direction::kTransit;
}

std::string ClientNetwork::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < prefixes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += prefixes_[i].to_string();
  }
  out += "}";
  return out;
}

}  // namespace upbound
