#include "net/ip.h"

#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace upbound {

namespace {

// Parses a decimal integer <= limit from the front of `text`, advancing it.
std::optional<std::uint32_t> parse_decimal(std::string_view& text,
                                           std::uint32_t limit) {
  std::uint32_t value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin || value > limit) return std::nullopt;
  text.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return value;
}

}  // namespace

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (text.empty() || text.front() != '.') return std::nullopt;
      text.remove_prefix(1);
    }
    const auto octet = parse_decimal(text, 255);
    if (!octet) return std::nullopt;
    value = (value << 8) | *octet;
  }
  if (!text.empty()) return std::nullopt;
  return Ipv4Addr{value};
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

Cidr::Cidr(Ipv4Addr base, unsigned prefix_len) : prefix_len_(prefix_len) {
  if (prefix_len > 32) throw std::invalid_argument("Cidr: prefix_len > 32");
  mask_ = prefix_len == 0 ? 0 : ~std::uint32_t{0} << (32 - prefix_len);
  network_ = base.value() & mask_;
}

std::optional<Cidr> Cidr::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  std::string_view len_text = text.substr(slash + 1);
  const auto len = parse_decimal(len_text, 32);
  if (!len || !len_text.empty()) return std::nullopt;
  return Cidr{*addr, *len};
}

Ipv4Addr Cidr::host(std::uint64_t i) const {
  if (i >= size()) throw std::out_of_range("Cidr::host: index out of prefix");
  return Ipv4Addr{network_ + static_cast<std::uint32_t>(i)};
}

std::string Cidr::to_string() const {
  return Ipv4Addr{network_}.to_string() + "/" + std::to_string(prefix_len_);
}

}  // namespace upbound
