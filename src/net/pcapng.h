// pcapng (pcap next generation) reader/writer -- the default on-disk
// format of modern wireshark/tshark captures. Implemented from scratch:
// Section Header, Interface Description, Enhanced Packet and Simple Packet
// blocks, both byte orders, and the if_tsresol timestamp-resolution option.
// Other block types are skipped. Frames decode through the same
// Ethernet/IPv4 codec as classic pcap, so .pcapng captures feed the same
// analyzer/filter pipeline.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>

#include "net/packet.h"
#include "net/pcap.h"  // PcapError

namespace upbound {

constexpr std::uint32_t kPcapngShb = 0x0A0D0D0A;
constexpr std::uint32_t kPcapngIdb = 0x00000001;
constexpr std::uint32_t kPcapngSpb = 0x00000003;
constexpr std::uint32_t kPcapngEpb = 0x00000006;
constexpr std::uint32_t kPcapngByteOrderMagic = 0x1A2B3C4D;

/// Writes PacketRecords as a single-section, single-interface pcapng file
/// (microsecond timestamps, Ethernet link type).
class PcapngWriter {
 public:
  explicit PcapngWriter(const std::string& path,
                        std::uint32_t snaplen = kDefaultSnapLen);
  ~PcapngWriter();

  PcapngWriter(const PcapngWriter&) = delete;
  PcapngWriter& operator=(const PcapngWriter&) = delete;

  void write(const PacketRecord& pkt);
  void write_all(const Trace& trace);

  std::uint64_t packets_written() const { return packets_written_; }
  void close();

 private:
  std::FILE* file_ = nullptr;
  std::uint32_t snaplen_;
  std::uint64_t packets_written_ = 0;
};

/// Reads Enhanced/Simple Packet Blocks from a pcapng file; non-packet and
/// undecodable blocks are skipped.
class PcapngReader {
 public:
  explicit PcapngReader(const std::string& path);
  ~PcapngReader();

  PcapngReader(const PcapngReader&) = delete;
  PcapngReader& operator=(const PcapngReader&) = delete;

  std::optional<PacketRecord> next();
  Trace read_all();

  std::uint64_t packets_read() const { return packets_read_; }
  std::uint64_t blocks_skipped() const { return blocks_skipped_; }

 private:
  bool read_block(std::vector<std::uint8_t>& body, std::uint32_t& type);
  void parse_section_header(std::span<const std::uint8_t> body);
  void parse_interface_block(std::span<const std::uint8_t> body);

  std::FILE* file_ = nullptr;
  bool swap_ = false;
  /// Ticks per second of EPB timestamps for each interface (default 1e6).
  std::vector<std::uint64_t> if_ticks_per_sec_;
  std::uint64_t packets_read_ = 0;
  std::uint64_t blocks_skipped_ = 0;
};

}  // namespace upbound
