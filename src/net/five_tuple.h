// The five-tuple socket pair sigma = {protocol, source-address, source-port,
// destination-address, destination-port} from paper Section 3.2. A packet's
// tuple is written sender-first; the inverse() of a tuple identifies the same
// connection seen from the other direction.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "net/ip.h"

namespace upbound {

enum class Protocol : std::uint8_t {
  kTcp = 6,
  kUdp = 17,
};

const char* protocol_name(Protocol p);

struct FiveTuple {
  Protocol protocol = Protocol::kTcp;
  Ipv4Addr src_addr;
  std::uint16_t src_port = 0;
  Ipv4Addr dst_addr;
  std::uint16_t dst_port = 0;

  /// The same connection seen from the other endpoint (sigma-bar).
  FiveTuple inverse() const {
    return FiveTuple{protocol, dst_addr, dst_port, src_addr, src_port};
  }

  /// Direction-independent connection identity: the lexicographically
  /// smaller endpoint is placed first, so a tuple and its inverse map to
  /// the same key. Used by connection tables.
  FiveTuple canonical() const;

  bool operator==(const FiveTuple&) const = default;

  /// e.g. "TCP 140.112.30.5:34567 -> 61.2.3.4:6881".
  std::string to_string() const;
};

/// Serializes the tuple into a fixed 13-byte key (proto|src|sport|dst|dport,
/// network order); the byte layout feeds hash functions and must not change.
constexpr std::size_t kTupleKeySize = 13;
void encode_tuple_key(const FiveTuple& t,
                      std::span<std::uint8_t, kTupleKeySize> out);

/// Stable 64-bit hash of the tuple (direction-sensitive).
std::uint64_t tuple_hash(const FiveTuple& t, std::uint64_t seed = 0);

/// Hasher for unordered containers keyed by exact (directional) tuples.
struct FiveTupleHash {
  std::size_t operator()(const FiveTuple& t) const {
    return static_cast<std::size_t>(tuple_hash(t));
  }
};

/// Hasher/equality for containers keyed by connection identity, where a
/// tuple and its inverse must collide.
struct CanonicalTupleHash {
  std::size_t operator()(const FiveTuple& t) const {
    return static_cast<std::size_t>(tuple_hash(t.canonical()));
  }
};
struct CanonicalTupleEq {
  bool operator()(const FiveTuple& a, const FiveTuple& b) const {
    return a.canonical() == b.canonical();
  }
};

}  // namespace upbound
