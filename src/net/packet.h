// PacketRecord: the in-memory representation of one captured/generated
// packet. Mirrors the paper's header traces: L3/L4 metadata is always
// present, while payload bytes may be truncated to the classification
// prefix (payload_size keeps the true on-wire length so throughput
// accounting stays exact).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/five_tuple.h"
#include "util/time.h"

namespace upbound {

/// TCP control flags (subset relevant to connection tracking).
struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
  bool psh = false;

  bool operator==(const TcpFlags&) const = default;

  std::uint8_t to_byte() const;
  static TcpFlags from_byte(std::uint8_t b);

  std::string to_string() const;
};

constexpr std::uint32_t kEthernetHeaderSize = 14;
constexpr std::uint32_t kIpv4HeaderSize = 20;    // no options
constexpr std::uint32_t kTcpHeaderSize = 20;     // no options
constexpr std::uint32_t kUdpHeaderSize = 8;

struct PacketRecord {
  SimTime timestamp;
  FiveTuple tuple;       // sender-first as seen on the wire
  TcpFlags flags;        // meaningful for TCP only
  std::uint32_t payload_size = 0;     // true L4 payload length on the wire
  std::vector<std::uint8_t> payload;  // captured prefix, <= payload_size
  /// False when a checksum failed verification on capture; such packets
  /// are not examined by the classifier (paper Section 3.2). Truncated
  /// captures that cannot be verified stay true.
  bool checksum_valid = true;

  /// Total frame length on the wire (Ethernet + IPv4 + L4 + payload).
  std::uint32_t wire_size() const {
    const std::uint32_t l4 =
        tuple.protocol == Protocol::kTcp ? kTcpHeaderSize : kUdpHeaderSize;
    return kEthernetHeaderSize + kIpv4HeaderSize + l4 + payload_size;
  }

  bool is_tcp() const { return tuple.protocol == Protocol::kTcp; }
  bool is_udp() const { return tuple.protocol == Protocol::kUdp; }

  /// True when this is a bare SYN (connection-opening) packet.
  bool is_syn_only() const { return is_tcp() && flags.syn && !flags.ack; }

  std::string to_string() const;
};

/// A time-ordered packet trace.
using Trace = std::vector<PacketRecord>;

/// True when `trace` timestamps are non-decreasing.
bool is_time_sorted(const Trace& trace);

}  // namespace upbound
