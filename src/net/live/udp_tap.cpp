#include "net/live/udp_tap.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <unistd.h>

#include "net/headers.h"

namespace upbound::live {

namespace {

/// Record header: u64 timestamp + u16 frame length.
constexpr std::size_t kRecordHeader = 10;

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

std::int64_t read_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return static_cast<std::int64_t>(v);
}

std::size_t read_le16(const std::uint8_t* p) {
  return static_cast<std::size_t>(p[0]) |
         (static_cast<std::size_t>(p[1]) << 8);
}

void write_le64(std::uint64_t v, std::vector<std::uint8_t>& out) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void write_le16(std::uint16_t v, std::vector<std::uint8_t>& out) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

}  // namespace

void append_tap_record(const PacketRecord& pkt,
                       std::vector<std::uint8_t>& out) {
  const std::vector<std::uint8_t> frame = encode_frame(pkt);
  if (frame.size() > 0xFFFF) {
    throw std::invalid_argument("append_tap_record: frame exceeds u16 length");
  }
  out.reserve(out.size() + kRecordHeader + frame.size());
  write_le64(static_cast<std::uint64_t>(pkt.timestamp.usec()), out);
  write_le16(static_cast<std::uint16_t>(frame.size()), out);
  out.insert(out.end(), frame.begin(), frame.end());
}

std::vector<std::uint8_t> encode_tap_datagram(const PacketRecord& pkt) {
  std::vector<std::uint8_t> out;
  append_tap_record(pkt, out);
  return out;
}

std::vector<std::vector<std::uint8_t>> pack_tap_datagrams(
    const Trace& trace, std::size_t max_bytes) {
  std::vector<std::vector<std::uint8_t>> out;
  for (const PacketRecord& pkt : trace) {
    std::vector<std::uint8_t> record;
    append_tap_record(pkt, record);
    if (out.empty() || out.back().size() + record.size() > max_bytes) {
      out.emplace_back();
    }
    out.back().insert(out.back().end(), record.begin(), record.end());
  }
  return out;
}

UdpTapSource::UdpTapSource(const Config& config) : config_(config) {
  if (config_.timestamp_mode == TapTimestampMode::kOnReceive &&
      config_.clock == nullptr) {
    throw std::invalid_argument(
        "UdpTapSource: kOnReceive requires a clock");
  }
  open_socket(config_.port);

  buffers_.resize(kRecvBatch * kDatagramCap);
  ctrls_.resize(kRecvBatch * kCtrlCap);
  msgs_.resize(kRecvBatch);
  iovs_.resize(kRecvBatch);
  for (std::size_t i = 0; i < kRecvBatch; ++i) {
    iovs_[i].iov_base = buffers_.data() + i * kDatagramCap;
    iovs_[i].iov_len = kDatagramCap;
    std::memset(&msgs_[i], 0, sizeof(msgs_[i]));
    msgs_[i].msg_hdr.msg_iov = &iovs_[i];
    msgs_[i].msg_hdr.msg_iovlen = 1;
  }
}

void UdpTapSource::open_socket(std::uint16_t port) {
  const int fd =
      ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket(AF_INET, SOCK_DGRAM)");

  // Best-effort: a deep socket buffer absorbs sender bursts while the
  // datapath is mid-batch. The kernel silently caps at rmem_max.
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &config_.rcvbuf_bytes,
               sizeof(config_.rcvbuf_bytes));
#ifdef SO_RXQ_OVFL
  // Best-effort: a cumulative drop counter rides each datagram as
  // ancillary data, so receive-queue overflow becomes visible loss
  // instead of silence.
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_RXQ_OVFL, &one, sizeof(one));
#endif

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("bind(udp tap)");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("getsockname(udp tap)");
  }
  fd_ = fd;
  local_port_ = ntohs(bound.sin_port);
  error_ = 0;
  kernel_drops_seen_ = 0;  // SO_RXQ_OVFL counts per socket
}

UdpTapSource::~UdpTapSource() {
  if (fd_ >= 0) ::close(fd_);
}

int UdpTapSource::reattach() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  // Whatever sat in the scatter ring when the fd died is gone for good;
  // account it before the rebind can fail and leave us retrying.
  lost_ += queued_ - consumed_;
  queued_ = consumed_ = 0;
  record_off_ = 0;
  // Rebind the port the first bind resolved: connect()ed senders keep a
  // valid destination, and a conformance run's port stays stable.
  open_socket(local_port_ != 0 ? local_port_ : config_.port);
  return fd_;
}

void UdpTapSource::inject_failure() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  error_ = EBADF;
}

std::size_t UdpTapSource::refill() {
  if (fd_ < 0) return 0;
  // recvmmsg scribbles on msg_controllen; re-arm the ancillary buffers
  // every batch.
  for (std::size_t i = 0; i < kRecvBatch; ++i) {
    msgs_[i].msg_hdr.msg_control = ctrls_.data() + i * kCtrlCap;
    msgs_[i].msg_hdr.msg_controllen = kCtrlCap;
  }
  const int got = ::recvmmsg(fd_, msgs_.data(), kRecvBatch, MSG_DONTWAIT,
                             nullptr);
  if (got < 0) {
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      // Fatal socket death (ENETDOWN, EBADF after an external close):
      // latch it so the datapath can tell "broken" from "would block".
      error_ = errno;
      ::close(fd_);
      fd_ = -1;
    }
    return 0;
  }
  if (got == 0) return 0;
  queued_ = static_cast<std::size_t>(got);
  consumed_ = 0;
  record_off_ = 0;
#ifdef SO_RXQ_OVFL
  for (std::size_t i = 0; i < queued_; ++i) {
    msghdr* mh = &msgs_[i].msg_hdr;
    for (cmsghdr* c = CMSG_FIRSTHDR(mh); c != nullptr;
         c = CMSG_NXTHDR(mh, c)) {
      if (c->cmsg_level != SOL_SOCKET || c->cmsg_type != SO_RXQ_OVFL) {
        continue;
      }
      std::uint32_t drops = 0;
      std::memcpy(&drops, CMSG_DATA(c), sizeof(drops));
      if (drops > kernel_drops_seen_) {
        lost_ += drops - kernel_drops_seen_;
        kernel_drops_seen_ = drops;
      }
    }
  }
#endif
  if (config_.timestamp_mode == TapTimestampMode::kOnReceive) {
    // One clock read stamps the whole refill: cheaper than per-datagram
    // reads and still monotone (later refills read a later clock).
    refill_stamp_ = config_.clock->now();
  }
  return queued_;
}

std::size_t UdpTapSource::drain(std::size_t max_frames,
                                const FrameSink& sink) {
  std::size_t delivered = 0;
  while (delivered < max_frames) {
    if (consumed_ == queued_ && refill() == 0) break;
    const std::size_t len = msgs_[consumed_].msg_len;
    const std::uint8_t* data = buffers_.data() + consumed_ * kDatagramCap;
    if (len - record_off_ < kRecordHeader) {
      // Runt datagram, or a truncated tail after valid records: counted
      // once, rest of the datagram skipped.
      ++malformed_;
      ++consumed_;
      record_off_ = 0;
      continue;
    }
    const std::uint8_t* rec = data + record_off_;
    const std::size_t frame_len = read_le16(rec + 8);
    if (frame_len > len - record_off_ - kRecordHeader) {
      // Declared length overruns the datagram.
      ++malformed_;
      ++consumed_;
      record_off_ = 0;
      continue;
    }
    const SimTime ts =
        config_.timestamp_mode == TapTimestampMode::kFromFrames
            ? SimTime::from_usec(read_le64(rec))
            : refill_stamp_;
    ++frames_;
    bytes_ += frame_len;
    sink(std::span<const std::uint8_t>{rec + kRecordHeader, frame_len}, ts);
    record_off_ += kRecordHeader + frame_len;
    if (record_off_ == len) {
      ++consumed_;
      record_off_ = 0;
    }
    ++delivered;
  }
  return delivered;
}

UdpTapSender::UdpTapSender(std::uint16_t port, const std::string& host) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket(udp tap sender)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw std::invalid_argument("UdpTapSender: bad host '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd_);
    errno = saved;
    throw_errno("connect(udp tap sender)");
  }
}

UdpTapSender::~UdpTapSender() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpTapSender::send_packet(const PacketRecord& pkt) {
  send_datagram(encode_tap_datagram(pkt));
}

void UdpTapSender::send_datagram(std::span<const std::uint8_t> datagram) {
  if (::send(fd_, datagram.data(), datagram.size(), 0) < 0) {
    throw_errno("send(udp tap)");
  }
  ++sent_;
}

void UdpTapSender::send_burst(
    std::span<const std::vector<std::uint8_t>> datagrams) {
  constexpr std::size_t kChunk = 64;
  std::size_t off = 0;
  while (off < datagrams.size()) {
    const std::size_t n = std::min(kChunk, datagrams.size() - off);
    mmsghdr msgs[kChunk];
    iovec iovs[kChunk];
    std::memset(msgs, 0, sizeof(mmsghdr) * n);
    for (std::size_t i = 0; i < n; ++i) {
      iovs[i].iov_base =
          const_cast<std::uint8_t*>(datagrams[off + i].data());
      iovs[i].iov_len = datagrams[off + i].size();
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    std::size_t done = 0;
    while (done < n) {
      const int got = ::sendmmsg(fd_, msgs + done,
                                 static_cast<unsigned>(n - done), 0);
      if (got < 0) {
        if (errno == EINTR) continue;
        throw_errno("sendmmsg(udp tap)");
      }
      done += static_cast<std::size_t>(got);
    }
    sent_ += n;
    off += n;
  }
}

}  // namespace upbound::live
