// Single-threaded epoll event loop: the reactor under the live datapath.
// Readable fds (capture sockets, control connections) dispatch to
// callbacks; periodic work runs off timerfds so coalesced expirations are
// observable (the handler receives the expiration count and the datapath
// proves one rotation per dt boundary regardless of scheduling delay);
// shutdown signals arrive as ordinary readable events via signalfd, so a
// SIGINT drains in-flight batches instead of killing them mid-stride.
//
// Everything runs on the thread that calls run()/poll_once(); handlers
// may add/remove registrations and stop() the loop re-entrantly.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <vector>

#include <signal.h>  // sigset_t

#include "util/time.h"

namespace upbound::live {

class EventLoop {
 public:
  using FdHandler = std::function<void()>;
  /// `expirations` is the coalesced timerfd count: >1 when the loop fell
  /// behind the period (stall, debugger, overload).
  using TimerHandler = std::function<void(std::uint64_t expirations)>;
  using SignalHandler = std::function<void(int signo)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` (level-triggered, EPOLLIN). With `owns_fd` the loop
  /// closes it on removal/destruction. `on_error` fires instead of
  /// `on_readable` when the kernel reports EPOLLERR/EPOLLHUP with no
  /// readable data -- a dead fd (downed NIC, closed socket) re-fires
  /// level-triggered forever, so without an error path the loop would
  /// busy-spin calling a read handler that can never make progress.
  void add_fd(int fd, FdHandler on_readable, bool owns_fd = false,
              FdHandler on_error = nullptr);

  /// Unregisters `fd` (safe from inside a handler, including its own).
  void remove_fd(int fd);

  /// Periodic CLOCK_MONOTONIC timer; returns the timerfd (usable with
  /// remove_fd). The loop owns the fd.
  int add_timer(Duration period, TimerHandler on_tick);

  /// One-shot CLOCK_MONOTONIC timer: `fn` runs once after `delay` and the
  /// timerfd self-removes. Returns the timerfd (remove_fd cancels the
  /// callback before it fires). Backoff/retry timers use this so a
  /// pending retry never outlives its schedule.
  int add_oneshot(Duration delay, std::function<void()> fn);

  /// Blocks `signals` process-wide (pthread_sigmask, restored on
  /// destruction) and delivers them as events instead. Returns the
  /// signalfd; the loop owns it.
  int add_signals(std::initializer_list<int> signals, SignalHandler on_signal);

  /// One epoll_wait + dispatch round. `timeout_ms` -1 blocks until an
  /// event. Returns the number of handlers dispatched (0 on timeout or
  /// EINTR).
  int poll_once(int timeout_ms = 0);

  /// Dispatches until stop(). Handlers call stop() to end the loop.
  void run();

  void stop() { stop_ = true; }
  bool stopped() const { return stop_; }

  std::uint64_t wakeups() const { return wakeups_; }
  std::uint64_t dispatched() const { return dispatched_; }

 private:
  struct Registration {
    FdHandler handler;
    /// Dispatched on EPOLLERR/EPOLLHUP-without-data; null falls back to
    /// `handler` (pre-existing behaviour for fds with no error path).
    FdHandler on_error;
    bool owned = false;
    /// Removed mid-dispatch: skipped for the rest of the round and erased
    /// afterwards, so remove_fd from inside a handler never destroys the
    /// std::function currently executing.
    bool dead = false;
  };

  void erase_dead();

  int epoll_fd_ = -1;
  std::map<int, Registration> regs_;
  /// Handlers of dead registrations reclaimed mid-dispatch (the kernel
  /// reused the fd number before the deferred erase ran). Destroyed only
  /// after the round, so a reclaim never frees an executing closure.
  std::vector<FdHandler> graveyard_;
  bool stop_ = false;
  bool dispatching_ = false;
  bool pending_cleanup_ = false;
  bool signal_mask_saved_ = false;
  sigset_t saved_mask_{};
  std::uint64_t wakeups_ = 0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace upbound::live
