// Periodic crash-consistent checkpointing for the live daemon.
//
// A checkpoint is a UBCK envelope wrapping one bitmap filter snapshot
// (the UBMF v2 image from src/filter/snapshot.*) plus the datapath state
// a restart cannot rederive from traffic: the drop-policy thresholds, the
// rotation cadence, the tenant digest epoch, and the meter window. The
// envelope is little-endian with its own CRC-32 over every other byte,
// and every write goes through save_snapshot_file's temp + fsync + atomic
// rename, so a SIGKILL at any instant leaves the directory holding only
// complete generations.
//
// Envelope (v1), all little-endian:
//
//   offset  size  field
//        0     4  magic 0x5542434B ("UBCK")
//        4     4  version (1)
//        8     8  generation (monotone per directory, survives restart)
//       16     8  checkpoint sim-time, microseconds
//       24     8  drop-policy low watermark, f64 bits
//       32     8  drop-policy high watermark, f64 bits
//       40     8  rotation interval dt, microseconds
//       48     8  tenant digest epoch (0 = single-tenant)
//       56     8  meter window, microseconds (0 = no meter)
//       64     8  snapshot payload length
//       72     4  CRC-32 over bytes [0,72) + payload
//       76     -  snapshot payload (UBMF image)
//
// Generations are kept as checkpoint-<generation>.ubck; the writer prunes
// to the newest `keep` so disk use is bounded. Restore walks generations
// newest-first and falls back across corrupt, stale, or truncated files
// with a typed reason for each skip -- one bad generation never costs the
// warm start, only its own staleness delta.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "filter/snapshot.h"
#include "util/time.h"

namespace upbound::live {

/// Datapath state carried alongside the filter snapshot.
struct CheckpointMeta {
  SimTime time;  // sim time the checkpoint represents
  double policy_low = 0.0;
  double policy_high = 0.0;
  Duration rotate_interval{};
  std::uint64_t tenant_epoch = 0;
  Duration meter_window{};
};

/// Why a checkpoint envelope could not be decoded. Snapshot-payload
/// failures are reported separately via SnapshotRestoreError.
enum class CheckpointError {
  kNone,
  kUnreadable,   // file missing or read failed
  kTruncated,    // shorter than header + declared payload
  kBadMagic,     // not a UBCK file
  kBadVersion,   // envelope version this build does not read
  kBadLength,    // declared payload length disagrees with the file size
  kCorruptCrc,   // envelope CRC-32 mismatch: bit rot or tampering
};

const char* checkpoint_error_name(CheckpointError error);

struct DecodedCheckpoint {
  std::uint64_t generation = 0;
  CheckpointMeta meta;
  std::vector<std::uint8_t> snapshot;  // UBMF payload, not yet restored
};

struct CheckpointDecodeResult {
  std::optional<DecodedCheckpoint> decoded;  // set iff error == kNone
  CheckpointError error = CheckpointError::kNone;

  bool ok() const { return error == CheckpointError::kNone; }
};

/// Builds the UBCK envelope around a snapshot payload.
std::vector<std::uint8_t> encode_checkpoint(
    std::uint64_t generation, const CheckpointMeta& meta,
    std::span<const std::uint8_t> snapshot);

/// Decodes an envelope with a typed failure reason; never throws on bad
/// input (checkpoints cross the same trust boundary snapshots do).
CheckpointDecodeResult decode_checkpoint(
    std::span<const std::uint8_t> bytes);

/// The checkpoint filename for a generation ("checkpoint-00000012.ubck";
/// zero-padded so lexicographic order is generation order).
std::string checkpoint_filename(std::uint64_t generation);

class Checkpointer {
 public:
  struct Config {
    std::string dir;  // must exist and be writable
    /// Cadence the datapath drives write_checkpoint() at; also the bound
    /// on state lost to a crash (the "staleness window").
    Duration interval = Duration::sec(5.0);
    /// Generations retained on disk; older files are pruned after each
    /// successful write. Minimum 1.
    std::size_t keep = 4;
  };

  /// Fills `meta` and returns the filter snapshot payload. Runs at a
  /// batch boundary (the datapath quiesces before calling), so the image
  /// is internally consistent by construction.
  using StateProvider = std::function<std::vector<std::uint8_t>(
      CheckpointMeta& meta)>;

  /// Scans `config.dir` for existing generations and continues numbering
  /// after the newest, so a restarted daemon never reuses (and silently
  /// overwrites) a generation the previous incarnation wrote. `faults`
  /// may arm checkpoint.corrupt:<generation>, which flips a payload byte
  /// after the CRC is sealed -- the deterministic bit-rot used by the
  /// fallback tests.
  Checkpointer(Config config, StateProvider provider,
               FaultInjector* faults = nullptr);

  /// Writes one generation crash-consistently and prunes to `keep`.
  /// Returns the path written. Throws std::runtime_error on I/O failure
  /// (the caller counts it and keeps running; checkpointing is an
  /// availability aid, not a correctness dependency).
  std::string write_checkpoint();

  std::uint64_t generations_written() const { return written_; }
  std::uint64_t next_generation() const { return next_gen_; }
  /// Sim time of the newest successful checkpoint, if any.
  std::optional<SimTime> last_checkpoint_time() const { return last_time_; }
  /// How far `now` has run past the newest checkpoint: the state a crash
  /// right now would lose. Maximum Duration when nothing has been
  /// written yet (everything would be lost).
  Duration staleness(SimTime now) const;

  const Config& config() const { return config_; }

 private:
  void prune() const;

  Config config_;
  StateProvider provider_;
  FaultInjector* faults_;
  std::uint64_t next_gen_ = 1;
  std::uint64_t written_ = 0;
  std::optional<SimTime> last_time_;
};

/// One directory restore: the newest valid generation wins; every older
/// or invalid file that was considered and passed over is recorded with
/// its typed reason.
struct CheckpointRestore {
  /// Set iff a generation restored cleanly.
  std::optional<RestoredBitmapFilter> filter;
  CheckpointMeta meta;
  std::uint64_t generation = 0;
  std::string path;
  /// "checkpoint-00000007.ubck: corrupt-crc" -- newest first, every
  /// generation tried before the winner (or all of them on failure).
  std::vector<std::string> skipped;

  bool ok() const { return filter.has_value(); }
  /// Human-readable one-paragraph summary for logs / CLI output.
  std::string report() const;
};

/// Walks `dir` newest-generation-first and restores the first checkpoint
/// that decodes, CRC-checks, and whose snapshot payload restores. When
/// `now` is provided, snapshots older than their own T_e are skipped as
/// stale (same rule as restore_bitmap_filter_checked). A live restart
/// across process boundaries passes nullopt: MonotonicClock epochs are
/// not comparable between runs, so wall-gap staleness is meaningless
/// there and the rotation schedule re-anchors on the first packet.
CheckpointRestore restore_newest_checkpoint(
    const std::string& dir, std::optional<SimTime> now = std::nullopt);

}  // namespace upbound::live
