#include "net/live/control.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <system_error>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace upbound::live {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

/// Whitespace tokenizer. NUL bytes and any other binary junk simply end
/// up inside tokens and fail the command/number parses below -- malformed
/// input degrades to a typed error, never to undefined behavior.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

/// Full-consume strtod; nullopt on garbage ("1e6x", "", embedded NUL).
std::optional<double> parse_number(const std::string& text) {
  if (text.empty() || text.find('\0') != std::string::npos) {
    return std::nullopt;
  }
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return std::nullopt;
  return value;
}

}  // namespace

ControlServer::ControlServer(EventLoop& loop, std::string path,
                             ControlApi* api, Duration idle_timeout)
    : loop_(loop),
      path_(std::move(path)),
      api_(api),
      idle_timeout_(idle_timeout) {
  if (api_ == nullptr) {
    throw std::invalid_argument("ControlServer: api required");
  }
  sockaddr_un addr{};
  if (path_.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("ControlServer: socket path too long: " +
                                path_);
  }
  listen_fd_ =
      ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket(AF_UNIX)");
  // A stale socket file from a crashed daemon must not block restart.
  ::unlink(path_.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path_.c_str(), path_.size());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("bind(control socket)");
  }
  if (::listen(listen_fd_, 8) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    ::unlink(path_.c_str());
    errno = saved;
    throw_errno("listen(control socket)");
  }
  loop_.add_fd(listen_fd_, [this]() { on_accept(); });
  if (idle_timeout_ > Duration{}) {
    // Sweep at a quarter of the timeout: a stuck client is reaped
    // between 1x and 1.25x the configured bound, and the timer is far
    // too slow to matter on the datapath.
    const Duration sweep =
        std::max(idle_timeout_ / 4, Duration::msec(10));
    sweep_fd_ = loop_.add_timer(sweep, [this](std::uint64_t) {
      reap_idle();
    });
  }
}

ControlServer::~ControlServer() {
  for (const auto& [fd, conn] : conns_) {
    loop_.remove_fd(fd);
    ::close(fd);
  }
  if (sweep_fd_ >= 0) loop_.remove_fd(sweep_fd_);
  if (listen_fd_ >= 0) {
    loop_.remove_fd(listen_fd_);
    ::close(listen_fd_);
    ::unlink(path_.c_str());
  }
}

void ControlServer::reap_idle() {
  const auto now = std::chrono::steady_clock::now();
  const auto bound =
      std::chrono::microseconds(idle_timeout_.count_usec());
  std::vector<int> victims;
  for (const auto& [fd, conn] : conns_) {
    // Only MID-LINE idlers hold server memory hostage; a quiet
    // connection between commands is a legitimate monitoring client.
    if (conn.inbuf.empty() && !conn.skipping) continue;
    if (now - conn.last_data < bound) continue;
    victims.push_back(fd);
  }
  for (const int fd : victims) {
    ++reaped_;
    send_reply(fd, ControlReply::err(
                       "timeout",
                       "mid-command idle past " +
                           idle_timeout_.to_string() + "; closing"));
    // send_reply may already have closed it on a write error.
    if (conns_.find(fd) != conns_.end()) close_connection(fd);
  }
}

void ControlServer::on_accept() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN: accepted everything pending
    ++accepted_;
    conns_[fd] = Connection{};
    conns_[fd].last_data = std::chrono::steady_clock::now();
    loop_.add_fd(fd, [this, fd]() { on_readable(fd); });
  }
}

void ControlServer::close_connection(int fd) {
  loop_.remove_fd(fd);
  ::close(fd);
  conns_.erase(fd);
}

void ControlServer::on_readable(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  char buf[4096];
  for (;;) {
    const ssize_t got = ::read(fd, buf, sizeof(buf));
    if (got == 0) {
      // Disconnect -- possibly mid-command; the partial line dies with
      // the connection, everything else keeps running.
      close_connection(fd);
      return;
    }
    if (got < 0) return;  // EAGAIN (or transient error): wait for epoll
    handle_data(fd, it->second, buf, static_cast<std::size_t>(got));
    if (conns_.find(fd) == conns_.end()) return;  // closed while handling
  }
}

void ControlServer::handle_data(int fd, Connection& conn, const char* data,
                                std::size_t len) {
  conn.last_data = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < len; ++i) {
    const char c = data[i];
    if (c == '\n') {
      if (conn.skipping) {
        conn.skipping = false;
        conn.inbuf.clear();
        continue;
      }
      std::string line = std::move(conn.inbuf);
      conn.inbuf.clear();
      if (!line.empty() && line.back() == '\r') line.pop_back();
      bool quit = false;
      const ControlReply reply = execute(line, &quit);
      if (!reply.ok) ++protocol_errors_;
      send_reply(fd, reply);
      if (quit) api_->control_quit();
      if (conns_.find(fd) == conns_.end()) return;
      continue;
    }
    if (conn.skipping) continue;
    conn.inbuf.push_back(c);
    if (conn.inbuf.size() > kMaxLine) {
      ++protocol_errors_;
      send_reply(fd, ControlReply::err(
                         "line-too-long",
                         "commands are limited to " +
                             std::to_string(kMaxLine) + " bytes"));
      // send_reply may close_connection() on a write error, destroying
      // the Connection that `conn` references -- check liveness before
      // touching it again.
      if (conns_.find(fd) == conns_.end()) return;
      conn.skipping = true;
      conn.inbuf.clear();
    }
  }
}

void ControlServer::send_reply(int fd, const ControlReply& reply) {
  const std::string text = reply.render() + "\n";
  std::size_t off = 0;
  while (off < text.size()) {
    // MSG_NOSIGNAL: a client that disconnects before reading its reply
    // must surface as EPIPE here, not as a process-killing SIGPIPE.
    const ssize_t put =
        ::send(fd, text.data() + off, text.size() - off, MSG_NOSIGNAL);
    if (put > 0) {
      off += static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    if (put < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Client not reading: drop the tail rather than block the datapath
      // (counted; the protocol is idempotent enough to re-ask).
      ++replies_dropped_;
      return;
    }
    close_connection(fd);  // EPIPE etc.: client is gone
    return;
  }
}

ControlReply ControlServer::execute(const std::string& line,
                                    bool* quit_requested) {
  ++commands_;
  const std::vector<std::string> tokens = tokenize(line);
  if (tokens.empty()) {
    return ControlReply::err("unknown-command", "empty command");
  }
  const std::string& cmd = tokens[0];

  if (cmd == "quit") {
    if (tokens.size() != 1) {
      return ControlReply::err("bad-argument", "quit takes no arguments");
    }
    if (quit_requested != nullptr) *quit_requested = true;
    return ControlReply::good("bye");
  }
  if (cmd == "stats") {
    if (tokens.size() == 2 && tokens[1] == "tenants") {
      return api_->control_stats_tenants();
    }
    if (tokens.size() != 1) {
      return ControlReply::err("bad-argument", "usage: stats [tenants]");
    }
    return api_->control_stats();
  }
  if (cmd == "snapshot") {
    if (tokens.size() != 2) {
      return ControlReply::err("bad-argument", "usage: snapshot <path>");
    }
    if (tokens[1].find('\0') != std::string::npos) {
      return ControlReply::err("bad-argument", "path contains NUL");
    }
    return api_->control_snapshot(tokens[1]);
  }
  if (cmd == "reload") {
    if (tokens.size() != 2) {
      return ControlReply::err("bad-argument", "usage: reload <path>");
    }
    if (tokens[1].find('\0') != std::string::npos) {
      return ControlReply::err("bad-argument", "path contains NUL");
    }
    return api_->control_reload(tokens[1]);
  }
  if (cmd == "checkpoint") {
    if (tokens.size() != 1) {
      return ControlReply::err("bad-argument",
                               "checkpoint takes no arguments");
    }
    return api_->control_checkpoint();
  }
  if (cmd == "set") {
    if (tokens.size() != 3) {
      return ControlReply::err(
          "bad-argument",
          "usage: set low|high|dt|on-unhealthy <value>");
    }
    const std::string& key = tokens[1];
    const std::string& value = tokens[2];
    if (key == "low" || key == "high") {
      const std::optional<double> bps = parse_number(value);
      if (!bps.has_value() || !(*bps > 0.0)) {
        return ControlReply::err("bad-argument",
                                 "threshold must be a positive bits/sec "
                                 "number, got '" + value + "'");
      }
      return api_->control_set_threshold(key == "low", *bps);
    }
    if (key == "dt") {
      const std::optional<double> sec = parse_number(value);
      if (!sec.has_value() || !(*sec > 0.0)) {
        return ControlReply::err("bad-argument",
                                 "dt must be a positive seconds number, "
                                 "got '" + value + "'");
      }
      return api_->control_set_rotate_interval(Duration::sec(*sec));
    }
    if (key == "on-unhealthy") {
      if (value == "fail-open") {
        return api_->control_set_unhealthy_stance(UnhealthyStance::kFailOpen);
      }
      if (value == "fail-closed") {
        return api_->control_set_unhealthy_stance(
            UnhealthyStance::kFailClosed);
      }
      return ControlReply::err(
          "bad-argument", "on-unhealthy must be fail-open or fail-closed");
    }
    return ControlReply::err("unknown-command",
                             "unknown set key '" + key + "'");
  }
  return ControlReply::err("unknown-command", "'" + cmd + "'");
}

}  // namespace upbound::live
