#include "net/live/af_packet.h"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

#include <arpa/inet.h>
#include <linux/if_packet.h>
#include <net/ethernet.h>
#include <net/if.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <unistd.h>

namespace upbound::live {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

tpacket_block_desc* block_at(std::uint8_t* ring, std::uint32_t block_size,
                             std::uint32_t index) {
  return reinterpret_cast<tpacket_block_desc*>(
      ring + static_cast<std::size_t>(index) * block_size);
}

}  // namespace

AfPacketSource::AfPacketSource(const Config& config) : config_(config) {
  if (config_.interface.empty()) {
    throw std::invalid_argument("AfPacketSource: interface required");
  }
  if (config_.clock == nullptr) {
    throw std::invalid_argument("AfPacketSource: clock required");
  }
  if (config_.block_size == 0 || config_.block_count == 0 ||
      config_.frame_size == 0) {
    throw std::invalid_argument(
        "AfPacketSource: ring geometry (block_size, block_count, "
        "frame_size) must be non-zero");
  }
  if (config_.frame_size > config_.block_size) {
    throw std::invalid_argument(
        "AfPacketSource: frame_size must not exceed block_size");
  }
  setup();
}

void AfPacketSource::setup() {
  int fd = ::socket(AF_PACKET, SOCK_RAW | SOCK_NONBLOCK | SOCK_CLOEXEC,
                    htons(ETH_P_ALL));
  if (fd < 0) throw_errno("socket(AF_PACKET)");  // EPERM unprivileged

  std::uint8_t* ring = nullptr;
  std::size_t ring_bytes = 0;
  try {
    const int version = TPACKET_V3;
    if (::setsockopt(fd, SOL_PACKET, PACKET_VERSION, &version,
                     sizeof(version)) < 0) {
      throw_errno("setsockopt(PACKET_VERSION)");
    }
    tpacket_req3 req{};
    req.tp_block_size = config_.block_size;
    req.tp_block_nr = config_.block_count;
    req.tp_frame_size = config_.frame_size;
    req.tp_frame_nr =
        (config_.block_size / config_.frame_size) * config_.block_count;
    req.tp_retire_blk_tov = config_.block_timeout_ms;
    if (::setsockopt(fd, SOL_PACKET, PACKET_RX_RING, &req, sizeof(req)) <
        0) {
      throw_errno("setsockopt(PACKET_RX_RING)");
    }
    ring_bytes =
        static_cast<std::size_t>(req.tp_block_size) * req.tp_block_nr;
    void* mapped = ::mmap(nullptr, ring_bytes, PROT_READ | PROT_WRITE,
                          MAP_SHARED, fd, 0);
    if (mapped == MAP_FAILED) throw_errno("mmap(rx ring)");
    ring = static_cast<std::uint8_t*>(mapped);

    const unsigned ifindex = ::if_nametoindex(config_.interface.c_str());
    if (ifindex == 0) {
      throw std::invalid_argument("AfPacketSource: unknown interface '" +
                                  config_.interface + "'");
    }
    sockaddr_ll addr{};
    addr.sll_family = AF_PACKET;
    addr.sll_protocol = htons(ETH_P_ALL);
    addr.sll_ifindex = static_cast<int>(ifindex);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      throw_errno("bind(AF_PACKET)");
    }
  } catch (...) {
    if (ring != nullptr) ::munmap(ring, ring_bytes);
    ::close(fd);
    throw;
  }
  fd_ = fd;
  ring_ = ring;
  ring_bytes_ = ring_bytes;
  block_index_ = 0;
  frames_left_in_block_ = 0;
  next_frame_ = nullptr;
  error_ = 0;
}

void AfPacketSource::teardown() {
  if (ring_ != nullptr) {
    ::munmap(ring_, ring_bytes_);
    ring_ = nullptr;
    ring_bytes_ = 0;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  block_index_ = 0;
  frames_left_in_block_ = 0;
  next_frame_ = nullptr;
}

void AfPacketSource::collect_kernel_drops() {
  if (fd_ < 0) return;
  tpacket_stats_v3 stats{};
  socklen_t len = sizeof(stats);
  if (::getsockopt(fd_, SOL_PACKET, PACKET_STATISTICS, &stats, &len) == 0) {
    lost_ += stats.tp_drops;  // the read resets the kernel counter
  }
}

int AfPacketSource::reattach() {
  collect_kernel_drops();
  teardown();
  // Unconsumed frames in the dead ring are gone; the kernel drop counter
  // above is the only loss signal AF_PACKET offers, so reattach loss is
  // best-effort by construction.
  setup();
  return fd_;
}

void AfPacketSource::inject_failure() {
  collect_kernel_drops();
  teardown();
  error_ = EBADF;
}

AfPacketSource::~AfPacketSource() {
  teardown();
}

std::size_t AfPacketSource::drain(std::size_t max_frames,
                                  const FrameSink& sink) {
  if (ring_ == nullptr) return 0;  // detached (failure injected)
  // One clock read per drain keeps stamping cost off the per-frame path;
  // the tick timer bounds how stale this can get.
  const SimTime stamp = config_.clock->now();
  std::size_t delivered = 0;

  while (delivered < max_frames) {
    tpacket_block_desc* block =
        block_at(ring_, config_.block_size, block_index_);
    if (frames_left_in_block_ == 0) {
      // Acquire: the kernel publishes the block's frames before flipping
      // the status word to TP_STATUS_USER.
      const std::uint32_t status =
          std::atomic_ref<std::uint32_t>(block->hdr.bh1.block_status)
              .load(std::memory_order_acquire);
      if ((status & TP_STATUS_USER) == 0) break;  // ring empty: would block
      frames_left_in_block_ = block->hdr.bh1.num_pkts;
      next_frame_ = reinterpret_cast<const std::uint8_t*>(block) +
                    block->hdr.bh1.offset_to_first_pkt;
      if (frames_left_in_block_ == 0) {
        // Timeout-retired empty block: hand it straight back.
        std::atomic_ref<std::uint32_t>(block->hdr.bh1.block_status)
            .store(TP_STATUS_KERNEL, std::memory_order_release);
        block_index_ = (block_index_ + 1) % config_.block_count;
        continue;
      }
    }

    const auto* hdr = reinterpret_cast<const tpacket3_hdr*>(next_frame_);
    const std::uint8_t* frame = next_frame_ + hdr->tp_mac;
    ++frames_;
    bytes_ += hdr->tp_snaplen;
    sink(std::span<const std::uint8_t>{frame, hdr->tp_snaplen}, stamp);
    ++delivered;

    if (--frames_left_in_block_ > 0) {
      next_frame_ += hdr->tp_next_offset;
    } else {
      // Release: every frame read must complete before the kernel may
      // overwrite the block.
      std::atomic_ref<std::uint32_t>(block->hdr.bh1.block_status)
          .store(TP_STATUS_KERNEL, std::memory_order_release);
      block_index_ = (block_index_ + 1) % config_.block_count;
    }
  }
  return delivered;
}

}  // namespace upbound::live
