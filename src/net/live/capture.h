// The capture-source seam of the live datapath: one abstraction with an
// fd to wait on and a drain() the event loop calls when it fires. Two
// backends implement it -- the AF_PACKET mmap ring for real interfaces
// (root) and the UDP loopback tap any CI runner can use unprivileged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>

#include "util/time.h"

namespace upbound::live {

/// Receives one raw Ethernet frame plus the timestamp the source stamped
/// it with. The span is only valid for the duration of the call.
using FrameSink =
    std::function<void(std::span<const std::uint8_t> frame, SimTime ts)>;

class CaptureSource {
 public:
  virtual ~CaptureSource() = default;

  /// The fd the event loop waits on (readable => frames pending). Sources
  /// are nonblocking; level-triggered epoll re-fires while data remains,
  /// so a partial drain() is never lost.
  virtual int fd() const = 0;

  /// Delivers up to `max_frames` buffered frames to `sink`; returns the
  /// number delivered. 0 means would-block (nothing buffered).
  virtual std::size_t drain(std::size_t max_frames, const FrameSink& sink) = 0;

  virtual std::string name() const = 0;

  /// Frames delivered to sinks so far.
  virtual std::uint64_t frames_received() const = 0;
  /// Frame payload bytes delivered so far.
  virtual std::uint64_t bytes_received() const = 0;
  /// Inputs consumed but too malformed to contain a frame (tap datagrams
  /// shorter than their header). Counted, never delivered.
  virtual std::uint64_t malformed_inputs() const { return 0; }

  // --- Failure / recovery seam (the supervised-reattach cycle) ---

  /// Sticky errno of a fatal source failure (ENETDOWN, EBADF, ring
  /// death); 0 while healthy. drain() returning 0 with error() != 0 means
  /// "broken", not "would block" -- the datapath detaches the fd and
  /// enters backoff instead of waiting on epoll forever.
  virtual int error() const { return 0; }

  /// Tears down and rebuilds the underlying socket/ring in place,
  /// clearing error(). Returns the NEW fd to register (sources keep
  /// their identity: the tap rebinds its original port, AF_PACKET
  /// rebuilds its ring on the same interface). Throws std::system_error
  /// when the resource is still unavailable -- the caller backs off and
  /// retries later.
  virtual int reattach() {
    throw std::logic_error("CaptureSource::reattach: not supported");
  }

  /// Inputs the source knows were lost: kernel receive-queue drops plus
  /// anything buffered when the fd died. The conservation check
  /// (processed + lost == sent) runs on this.
  virtual std::uint64_t frames_lost() const { return 0; }

  /// Deterministic failure hook (capture.kill fault, tests): makes the
  /// source fail exactly as if its fd died -- error() latches and the
  /// descriptor is closed. reattach() recovers.
  virtual void inject_failure() {}
};

}  // namespace upbound::live
