// The UDP-loopback "tap": an unprivileged capture backend for CI and the
// conformance harness. A tap datagram carries one or more length-framed
// records, each wrapping a raw Ethernet frame:
//
//   datagram := record+
//   record   := [u64 LE timestamp, microseconds][u16 LE frame length]
//               [frame bytes]
//
// Packing many records per datagram is what lets a loopback sender feed
// the datapath at line rate: the per-datagram syscall + kernel cost is
// amortized over every record inside (see pack_tap_datagrams).
//
// The embedded timestamp is what makes byte-identical live-vs-offline
// conformance possible: the harness replays a trace's own timeline
// through a real socket + event loop, so the router sees exactly the
// SimTimes offline replay saw. Deployment-style runs instead stamp
// frames on receive from the datapath clock (kOnReceive), which keeps
// live timelines monotonic no matter what senders claim.
#pragma once

#include <cstdint>
#include <vector>

#include <sys/socket.h>  // mmsghdr

#include "net/live/capture.h"
#include "net/packet.h"
#include "util/clock.h"

namespace upbound::live {

enum class TapTimestampMode {
  /// Trust the timestamp embedded in each datagram (conformance harness).
  kFromFrames,
  /// Stamp each refill batch from the datapath clock (deployment/bench).
  kOnReceive,
};

/// Appends one [timestamp][length][frame] tap record to `out`.
void append_tap_record(const PacketRecord& pkt,
                       std::vector<std::uint8_t>& out);

/// Builds the tap datagram for one packet (a single record).
std::vector<std::uint8_t> encode_tap_datagram(const PacketRecord& pkt);

/// Packs a trace into multi-record datagrams of at most `max_bytes`,
/// preserving packet order. High-rate senders use this to amortize the
/// per-datagram cost across every record inside.
std::vector<std::vector<std::uint8_t>> pack_tap_datagrams(
    const Trace& trace, std::size_t max_bytes = 32768);

class UdpTapSource final : public CaptureSource {
 public:
  struct Config {
    std::uint16_t port = 0;  // 0 = ephemeral; read back via local_port()
    TapTimestampMode timestamp_mode = TapTimestampMode::kFromFrames;
    /// Required for kOnReceive; ignored for kFromFrames.
    Clock* clock = nullptr;
    /// Best-effort SO_RCVBUF request (the kernel caps at rmem_max).
    int rcvbuf_bytes = 4 << 20;
  };

  explicit UdpTapSource(const Config& config);
  ~UdpTapSource() override;
  UdpTapSource(const UdpTapSource&) = delete;
  UdpTapSource& operator=(const UdpTapSource&) = delete;

  int fd() const override { return fd_; }
  std::size_t drain(std::size_t max_frames, const FrameSink& sink) override;
  std::string name() const override { return "udp-tap"; }
  std::uint64_t frames_received() const override { return frames_; }
  std::uint64_t bytes_received() const override { return bytes_; }
  std::uint64_t malformed_inputs() const override { return malformed_; }

  int error() const override { return error_; }
  /// Rebinds a fresh socket to the port the first bind resolved, so
  /// connect()ed senders keep working across the gap. Datagrams still
  /// buffered when the old fd died are abandoned and counted as lost.
  int reattach() override;
  /// Kernel receive-queue overflow drops (SO_RXQ_OVFL) plus datagrams
  /// abandoned across reattach.
  std::uint64_t frames_lost() const override { return lost_; }
  void inject_failure() override;

  /// The bound port (resolves port 0 to the kernel's choice).
  std::uint16_t local_port() const { return local_port_; }

 private:
  /// recvmmsg refill width. 64 datagrams per syscall amortizes the
  /// kernel crossing to <2% of the per-frame budget at 500k pkt/s.
  static constexpr std::size_t kRecvBatch = 64;
  /// Per-datagram buffer: sized for the largest packed datagram a UDP
  /// payload can carry (loopback MTU; no fragmentation).
  static constexpr std::size_t kDatagramCap = 64 * 1024;

  /// Ancillary-data capacity per message (holds the SO_RXQ_OVFL u32).
  static constexpr std::size_t kCtrlCap = 64;

  /// Pulls one recvmmsg batch into the ring; returns datagrams received.
  std::size_t refill();
  /// Creates + binds the socket; commits fd_/local_port_ only on success.
  void open_socket(std::uint16_t port);

  Config config_;
  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  int error_ = 0;

  // Preallocated recvmmsg scatter ring; queued_/consumed_ make drains
  // resumable so a small max_frames never discards buffered datagrams.
  std::vector<std::uint8_t> buffers_;
  std::vector<std::uint8_t> ctrls_;
  std::vector<mmsghdr> msgs_;
  std::vector<iovec> iovs_;
  std::size_t queued_ = 0;
  std::size_t consumed_ = 0;
  /// Parse offset into the current datagram: drains stay resumable at
  /// record granularity even mid-datagram.
  std::size_t record_off_ = 0;
  SimTime refill_stamp_;  // kOnReceive: one clock read per refill batch

  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t malformed_ = 0;
  std::uint64_t lost_ = 0;
  /// Last SO_RXQ_OVFL reading (cumulative per socket; resets on rebind).
  std::uint32_t kernel_drops_seen_ = 0;
};

/// Load/test client for the tap: connects to a local UdpTapSource and
/// sends tap datagrams, batched through sendmmsg. Blocking by design --
/// a sender that outruns the receiver's socket buffer should stall in
/// the kernel, not spin.
class UdpTapSender {
 public:
  explicit UdpTapSender(std::uint16_t port,
                        const std::string& host = "127.0.0.1");
  ~UdpTapSender();
  UdpTapSender(const UdpTapSender&) = delete;
  UdpTapSender& operator=(const UdpTapSender&) = delete;

  /// Encodes and sends one packet.
  void send_packet(const PacketRecord& pkt);
  /// Sends one pre-encoded tap datagram.
  void send_datagram(std::span<const std::uint8_t> datagram);
  /// Sends pre-encoded datagrams via sendmmsg in chunks of 64.
  void send_burst(std::span<const std::vector<std::uint8_t>> datagrams);

  std::uint64_t datagrams_sent() const { return sent_; }

 private:
  int fd_ = -1;
  std::uint64_t sent_ = 0;
};

}  // namespace upbound::live
