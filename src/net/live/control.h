// Line-oriented runtime control socket (UNIX SOCK_STREAM). One command
// per '\n'-terminated line; one reply line per command:
//
//   set low <bps>             retune the Eq. 1 RED low threshold L
//   set high <bps>            retune the RED high threshold H
//   set dt <seconds>          retune the rotation interval (capability-
//                             gated: kCapRotateInterval backends only)
//   set on-unhealthy fail-open|fail-closed
//                             retarget the degraded stance (requires an
//                             armed health monitor)
//   snapshot <path>           save filter state (kCapSnapshot backends)
//   reload <path>             apply a reload config file (policy retune
//                             and/or snapshot-migrating filter swap; see
//                             net/live/reload.h)
//   checkpoint                write one checkpoint generation on demand
//                             (requires --checkpoint-dir)
//   stats                     one-line JSON of live datapath counters
//   stats tenants             one-line JSON per-tenant summary (tenant
//                             count, live fine filters, instantiations,
//                             evictions); kCapTenancy backends only
//   quit                      drain in-flight frames and stop the loop
//
// Replies: "OK <detail>" or "ERR <code> <detail>". Codes are stable
// protocol surface: unknown-command, bad-argument, capability:rotate,
// capability:snapshot, capability:tenancy, unsupported:health,
// unsupported:reload, unsupported:checkpoint, reload-incompatible,
// line-too-long, timeout, io.
//
// The server is hardened against hostile or broken clients: split reads
// reassemble, oversized lines are rejected and skipped to the next
// newline, embedded NULs fall out as unknown commands, and a mid-command
// disconnect just closes that connection -- the loop and the datapath
// never wedge. A client that goes quiet MID-LINE (bytes buffered, no
// newline) is holding server memory hostage; a periodic sweep sends it
// "ERR timeout" and closes the connection once it has idled past the
// configured bound. Idle connections BETWEEN commands are left alone --
// a monitoring client that polls `stats` every minute is fine.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "fault/health_monitor.h"  // UnhealthyStance
#include "net/live/event_loop.h"
#include "util/time.h"

namespace upbound::live {

struct ControlReply {
  bool ok = false;
  std::string code;    // stable machine-readable error code ("" when ok)
  std::string detail;  // human-readable tail

  std::string render() const {
    if (ok) return "OK " + detail;
    return "ERR " + code + (detail.empty() ? "" : " " + detail);
  }

  static ControlReply good(std::string detail) {
    return ControlReply{true, "", std::move(detail)};
  }
  static ControlReply err(std::string code, std::string detail) {
    return ControlReply{false, std::move(code), std::move(detail)};
  }
};

/// What the control surface can do to a running datapath. Implemented by
/// LiveDatapath; split out so protocol tests can fake it.
class ControlApi {
 public:
  virtual ~ControlApi() = default;
  virtual ControlReply control_set_threshold(bool is_low, double bps) = 0;
  virtual ControlReply control_set_rotate_interval(Duration dt) = 0;
  virtual ControlReply control_set_unhealthy_stance(UnhealthyStance s) = 0;
  virtual ControlReply control_snapshot(const std::string& path) = 0;
  /// Applies a reload config file (net/live/reload.h): quiesce, snapshot,
  /// swap. Defaulted so fakes without a reloadable datapath answer with
  /// the typed error.
  virtual ControlReply control_reload(const std::string& path) {
    (void)path;
    return ControlReply::err("unsupported:reload",
                             "this datapath cannot reload");
  }
  /// Writes one checkpoint generation on demand.
  virtual ControlReply control_checkpoint() {
    return ControlReply::err("unsupported:checkpoint",
                             "checkpointing not armed (--checkpoint-dir)");
  }
  virtual ControlReply control_stats() = 0;
  /// Per-tenant summary of a tenancy-capable filter. The default is the
  /// typed capability error, so fakes and non-tenant datapaths answer
  /// consistently without every implementer spelling it.
  virtual ControlReply control_stats_tenants() {
    return ControlReply::err("capability:tenancy",
                             "filter has no tenant table");
  }
  /// Called AFTER the "OK bye" reply is written, so clients always see
  /// the acknowledgement.
  virtual void control_quit() = 0;
};

class ControlServer {
 public:
  /// Binds `path` (an existing socket file is unlinked first -- stale
  /// leftovers of a crashed daemon must not block restart) and registers
  /// with `loop`. `api` must outlive the server. `idle_timeout` bounds
  /// how long a connection may sit mid-line before the sweep reaps it
  /// with "ERR timeout"; zero or negative disables reaping.
  ControlServer(EventLoop& loop, std::string path, ControlApi* api,
                Duration idle_timeout = Duration::sec(30.0));
  ~ControlServer();
  ControlServer(const ControlServer&) = delete;
  ControlServer& operator=(const ControlServer&) = delete;

  const std::string& path() const { return path_; }

  std::uint64_t connections_accepted() const { return accepted_; }
  std::uint64_t commands_processed() const { return commands_; }
  std::uint64_t protocol_errors() const { return protocol_errors_; }
  /// Replies dropped because the client's socket buffer was full. The
  /// server never blocks the datapath on a slow control client.
  std::uint64_t replies_dropped() const { return replies_dropped_; }
  /// Connections closed by the mid-line idle sweep.
  std::uint64_t connections_reaped() const { return reaped_; }

  /// Parses and executes one command line (exposed for protocol tests).
  /// `quit_requested` is set when the line was a well-formed `quit`; the
  /// caller invokes control_quit() after writing the reply.
  ControlReply execute(const std::string& line,
                       bool* quit_requested = nullptr);

 private:
  /// Oversized-line bound: no control command is remotely this long, and
  /// a bound means a garbage client cannot balloon server memory.
  static constexpr std::size_t kMaxLine = 4096;

  struct Connection {
    std::string inbuf;
    /// Line-too-long recovery: discard until the next newline.
    bool skipping = false;
    /// Last time bytes arrived; the idle sweep measures from here.
    std::chrono::steady_clock::time_point last_data;
  };

  void on_accept();
  void on_readable(int fd);
  void handle_data(int fd, Connection& conn, const char* data,
                   std::size_t len);
  void send_reply(int fd, const ControlReply& reply);
  void close_connection(int fd);
  /// Reaps connections idle mid-line past idle_timeout_.
  void reap_idle();

  EventLoop& loop_;
  std::string path_;
  ControlApi* api_;
  Duration idle_timeout_;
  int listen_fd_ = -1;
  int sweep_fd_ = -1;
  std::map<int, Connection> conns_;

  std::uint64_t accepted_ = 0;
  std::uint64_t commands_ = 0;
  std::uint64_t protocol_errors_ = 0;
  std::uint64_t replies_dropped_ = 0;
  std::uint64_t reaped_ = 0;
};

}  // namespace upbound::live
