#include "net/live/checkpointer.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <stdexcept>
#include <utility>

#include "util/hash.h"

namespace upbound::live {

namespace {

constexpr std::uint32_t kMagic = 0x5542434B;  // "UBCK"
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kCrcOffset = 72;
constexpr std::size_t kPayloadOffset = 76;

void put_u32(std::uint32_t v, std::vector<std::uint8_t>& out) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::uint64_t v, std::vector<std::uint8_t>& out) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t f64_bits(double d) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double f64_from_bits(std::uint64_t bits) {
  double d = 0.0;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

/// CRC over header-before-CRC plus payload (skipping the CRC word), same
/// split the UBMF snapshot format uses.
std::uint32_t envelope_crc(std::span<const std::uint8_t> image) {
  const std::uint32_t head = crc32(image.subspan(0, kCrcOffset));
  return crc32(image.subspan(kPayloadOffset), head);
}

/// Parses "checkpoint-<digits>.ubck"; nullopt for anything else.
std::optional<std::uint64_t> generation_from_name(const std::string& name) {
  constexpr const char* kPrefix = "checkpoint-";
  constexpr const char* kSuffix = ".ubck";
  const std::size_t prefix_len = 11;
  const std::size_t suffix_len = 5;
  if (name.size() <= prefix_len + suffix_len) return std::nullopt;
  if (name.compare(0, prefix_len, kPrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t gen = 0;
  for (std::size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    gen = gen * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return gen;
}

/// Reads a whole file; nullopt when it cannot be opened or read.
std::optional<std::vector<std::uint8_t>> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + got);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return std::nullopt;
  return bytes;
}

}  // namespace

const char* checkpoint_error_name(CheckpointError error) {
  switch (error) {
    case CheckpointError::kNone: return "none";
    case CheckpointError::kUnreadable: return "unreadable";
    case CheckpointError::kTruncated: return "truncated";
    case CheckpointError::kBadMagic: return "bad-magic";
    case CheckpointError::kBadVersion: return "bad-version";
    case CheckpointError::kBadLength: return "bad-length";
    case CheckpointError::kCorruptCrc: return "corrupt-crc";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_checkpoint(
    std::uint64_t generation, const CheckpointMeta& meta,
    std::span<const std::uint8_t> snapshot) {
  std::vector<std::uint8_t> out;
  out.reserve(kPayloadOffset + snapshot.size());
  put_u32(kMagic, out);
  put_u32(kVersion, out);
  put_u64(generation, out);
  put_u64(static_cast<std::uint64_t>(meta.time.usec()), out);
  put_u64(f64_bits(meta.policy_low), out);
  put_u64(f64_bits(meta.policy_high), out);
  put_u64(static_cast<std::uint64_t>(meta.rotate_interval.count_usec()),
          out);
  put_u64(meta.tenant_epoch, out);
  put_u64(static_cast<std::uint64_t>(meta.meter_window.count_usec()), out);
  put_u64(snapshot.size(), out);
  put_u32(0, out);  // CRC placeholder
  out.insert(out.end(), snapshot.begin(), snapshot.end());

  const std::uint32_t crc = envelope_crc(out);
  out[kCrcOffset + 0] = static_cast<std::uint8_t>(crc);
  out[kCrcOffset + 1] = static_cast<std::uint8_t>(crc >> 8);
  out[kCrcOffset + 2] = static_cast<std::uint8_t>(crc >> 16);
  out[kCrcOffset + 3] = static_cast<std::uint8_t>(crc >> 24);
  return out;
}

CheckpointDecodeResult decode_checkpoint(
    std::span<const std::uint8_t> bytes) {
  CheckpointDecodeResult result;
  auto fail = [&result](CheckpointError error) {
    result.error = error;
    return result;
  };
  if (bytes.size() < kPayloadOffset) return fail(CheckpointError::kTruncated);
  if (get_u32(bytes.data()) != kMagic) {
    return fail(CheckpointError::kBadMagic);
  }
  if (get_u32(bytes.data() + 4) != kVersion) {
    return fail(CheckpointError::kBadVersion);
  }
  const std::uint64_t payload_len = get_u64(bytes.data() + 64);
  if (payload_len != bytes.size() - kPayloadOffset) {
    return fail(payload_len > bytes.size() - kPayloadOffset
                    ? CheckpointError::kTruncated
                    : CheckpointError::kBadLength);
  }
  // CRC last: a mismatch on a structurally sound envelope is bit rot or
  // tampering, not a framing bug.
  if (get_u32(bytes.data() + kCrcOffset) != envelope_crc(bytes)) {
    return fail(CheckpointError::kCorruptCrc);
  }

  DecodedCheckpoint decoded;
  decoded.generation = get_u64(bytes.data() + 8);
  decoded.meta.time =
      SimTime::from_usec(static_cast<std::int64_t>(get_u64(bytes.data() + 16)));
  decoded.meta.policy_low = f64_from_bits(get_u64(bytes.data() + 24));
  decoded.meta.policy_high = f64_from_bits(get_u64(bytes.data() + 32));
  decoded.meta.rotate_interval = Duration::usec(
      static_cast<std::int64_t>(get_u64(bytes.data() + 40)));
  decoded.meta.tenant_epoch = get_u64(bytes.data() + 48);
  decoded.meta.meter_window = Duration::usec(
      static_cast<std::int64_t>(get_u64(bytes.data() + 56)));
  decoded.snapshot.assign(bytes.begin() + kPayloadOffset, bytes.end());
  result.decoded = std::move(decoded);
  return result;
}

std::string checkpoint_filename(std::uint64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "checkpoint-%08llu.ubck",
                static_cast<unsigned long long>(generation));
  return buf;
}

Checkpointer::Checkpointer(Config config, StateProvider provider,
                           FaultInjector* faults)
    : config_(std::move(config)),
      provider_(std::move(provider)),
      faults_(faults) {
  if (config_.dir.empty()) {
    throw std::invalid_argument("Checkpointer: directory required");
  }
  if (!provider_) {
    throw std::invalid_argument("Checkpointer: state provider required");
  }
  if (config_.interval <= Duration{}) {
    throw std::invalid_argument("Checkpointer: interval must be positive");
  }
  if (config_.keep == 0) config_.keep = 1;
  std::error_code ec;
  if (!std::filesystem::is_directory(config_.dir, ec)) {
    throw std::runtime_error("Checkpointer: '" + config_.dir +
                             "' is not a directory");
  }
  // Continue numbering after whatever a previous incarnation left, so a
  // restart never overwrites the generation it is about to restore from.
  for (const auto& entry :
       std::filesystem::directory_iterator(config_.dir, ec)) {
    const auto gen = generation_from_name(entry.path().filename().string());
    if (gen.has_value() && *gen >= next_gen_) next_gen_ = *gen + 1;
  }
}

std::string Checkpointer::write_checkpoint() {
  CheckpointMeta meta;
  const std::vector<std::uint8_t> snapshot = provider_(meta);
  const std::uint64_t gen = next_gen_;
  std::vector<std::uint8_t> image = encode_checkpoint(gen, meta, snapshot);
  if (kFaultsCompiled && faults_ != nullptr &&
      faults_->corrupt_checkpoint(gen) && image.size() > kPayloadOffset) {
    // After the CRC is sealed: the write is crash-consistent but the
    // payload carries one flipped byte, the deterministic stand-in for
    // at-rest bit rot the restore fallback tests drill.
    image.back() ^= 0xFF;
  }
  const std::string path =
      (std::filesystem::path(config_.dir) / checkpoint_filename(gen))
          .string();
  save_snapshot_file(path, image);
  next_gen_ = gen + 1;
  ++written_;
  last_time_ = meta.time;
  prune();
  return path;
}

Duration Checkpointer::staleness(SimTime now) const {
  if (!last_time_.has_value()) {
    return Duration::usec(std::numeric_limits<std::int64_t>::max());
  }
  const Duration gap = now - *last_time_;
  return gap.is_negative() ? Duration{} : gap;
}

void Checkpointer::prune() const {
  std::error_code ec;
  std::vector<std::pair<std::uint64_t, std::filesystem::path>> gens;
  for (const auto& entry :
       std::filesystem::directory_iterator(config_.dir, ec)) {
    const auto gen = generation_from_name(entry.path().filename().string());
    if (gen.has_value()) gens.emplace_back(*gen, entry.path());
  }
  if (gens.size() <= config_.keep) return;
  std::sort(gens.begin(), gens.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = config_.keep; i < gens.size(); ++i) {
    std::filesystem::remove(gens[i].second, ec);  // best-effort
  }
}

CheckpointRestore restore_newest_checkpoint(const std::string& dir,
                                            std::optional<SimTime> now) {
  CheckpointRestore result;
  std::error_code ec;
  std::vector<std::pair<std::uint64_t, std::string>> gens;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    const auto gen = generation_from_name(name);
    if (gen.has_value()) gens.emplace_back(*gen, entry.path().string());
  }
  std::sort(gens.begin(), gens.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  for (const auto& [gen, path] : gens) {
    const std::string name =
        std::filesystem::path(path).filename().string();
    const auto bytes = read_file(path);
    if (!bytes.has_value()) {
      result.skipped.push_back(name + ": unreadable");
      continue;
    }
    CheckpointDecodeResult decoded = decode_checkpoint(*bytes);
    if (!decoded.ok()) {
      result.skipped.push_back(
          name + ": " + checkpoint_error_name(decoded.error));
      continue;
    }
    if (decoded.decoded->generation != gen) {
      // Filename and embedded generation disagree: a renamed or spliced
      // file. The embedded value is CRC-protected, the filename is not,
      // but a mismatch means someone rearranged the directory -- skip.
      result.skipped.push_back(name + ": generation-mismatch");
      continue;
    }
    BitmapRestoreResult restored =
        restore_bitmap_filter_checked(decoded.decoded->snapshot, now);
    if (!restored.ok()) {
      result.skipped.push_back(
          name + ": " + snapshot_restore_error_name(restored.error));
      continue;
    }
    result.filter = std::move(restored.restored);
    result.meta = decoded.decoded->meta;
    result.generation = gen;
    result.path = path;
    break;
  }
  return result;
}

std::string CheckpointRestore::report() const {
  std::string out;
  if (ok()) {
    out = "restored " + path + " (generation " +
          std::to_string(generation) + ", checkpointed at " +
          meta.time.to_string() + ")";
  } else {
    out = "no restorable checkpoint";
  }
  if (!skipped.empty()) {
    out += "; skipped:";
    for (const std::string& s : skipped) out += " [" + s + "]";
  }
  return out;
}

}  // namespace upbound::live
