// Hot-reload configuration files for the live daemon.
//
// A reload file is line-oriented "key value" pairs ('#' comments, blank
// lines ignored; a key alone on its line is a boolean flag):
//
//   # filter geometry -- forwarded to the FilterRegistry parser
//   filter bitmap
//   bits 20
//   k 4
//   m 3
//   dt 5.0
//   hole-punching
//   # Eq. 1 drop-policy watermarks (bits/sec)
//   low 50e6
//   high 100e6
//
// `filter` selects the backend; every key other than filter/low/high is
// passed through verbatim to that backend's registry parser, so the
// reload file accepts exactly the spellings `--filter` accepts on the
// command line. low/high retune the RED policy and work for any backend;
// a `filter` line requests a state-migrating filter swap, which the
// datapath only grants when old and new geometry are snapshot-compatible
// (see LiveDatapath::control_reload).
#pragma once

#include <optional>
#include <string>

#include "filter/filter_registry.h"

namespace upbound::live {

struct ReloadConfig {
  /// Set when the file names a filter backend; filter_args carries every
  /// pass-through key for its parser.
  bool has_filter = false;
  std::string filter_kind;
  MapFilterArgs filter_args;

  std::optional<double> policy_low;
  std::optional<double> policy_high;
};

/// Parses a reload file. Throws std::runtime_error when the file cannot
/// be read (an "io" control error) and std::invalid_argument for a
/// malformed line, duplicate key, or non-numeric watermark (a
/// "bad-argument" control error), always naming the offending line.
ReloadConfig parse_reload_config(const std::string& path);

}  // namespace upbound::live
