#include "net/live/event_loop.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

#include <sys/epoll.h>
#include <sys/signalfd.h>
#include <sys/timerfd.h>
#include <unistd.h>

namespace upbound::live {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
}

EventLoop::~EventLoop() {
  for (auto& [fd, reg] : regs_) {
    if (reg.owned) ::close(fd);
  }
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (signal_mask_saved_) {
    pthread_sigmask(SIG_SETMASK, &saved_mask_, nullptr);
  }
}

void EventLoop::add_fd(int fd, FdHandler on_readable, bool owns_fd,
                       FdHandler on_error) {
  const auto it = regs_.find(fd);
  if (it != regs_.end()) {
    if (!it->second.dead) {
      throw std::logic_error("EventLoop::add_fd: fd already registered");
    }
    // A dead registration whose fd was closed by its (external) owner:
    // the kernel can hand the same number to a new fd before the
    // deferred erase runs. Reclaim the slot, but keep the old handlers
    // alive until the dispatch round ends -- one may be the closure
    // executing this very call.
    if (dispatching_) {
      graveyard_.push_back(std::move(it->second.handler));
      graveyard_.push_back(std::move(it->second.on_error));
    }
    // An owned dead fd is by definition still open (its close was
    // deferred to erase_dead); erasing the registration here would lose
    // that deferred close and leak the descriptor.
    if (it->second.owned) ::close(fd);
    regs_.erase(it);
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    throw_errno("epoll_ctl(ADD)");
  }
  regs_[fd] =
      Registration{std::move(on_readable), std::move(on_error), owns_fd,
                   false};
}

void EventLoop::remove_fd(int fd) {
  const auto it = regs_.find(fd);
  if (it == regs_.end() || it->second.dead) return;
  // Deregister from the kernel immediately so no further events arrive,
  // but defer destroying the handler (and closing the fd) until the
  // dispatch round finishes -- the caller may BE that handler.
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  if (dispatching_) {
    it->second.dead = true;
    pending_cleanup_ = true;
    return;
  }
  if (it->second.owned) ::close(fd);
  regs_.erase(it);
}

void EventLoop::erase_dead() {
  for (auto it = regs_.begin(); it != regs_.end();) {
    if (it->second.dead) {
      if (it->second.owned) ::close(it->first);
      it = regs_.erase(it);
    } else {
      ++it;
    }
  }
  pending_cleanup_ = false;
}

int EventLoop::add_timer(Duration period, TimerHandler on_tick) {
  if (period <= Duration{}) {
    throw std::invalid_argument("EventLoop::add_timer: period must be > 0");
  }
  const int fd = timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  if (fd < 0) throw_errno("timerfd_create");
  itimerspec spec{};
  const std::int64_t usec = period.count_usec();
  spec.it_interval.tv_sec = usec / 1'000'000;
  spec.it_interval.tv_nsec = (usec % 1'000'000) * 1000;
  spec.it_value = spec.it_interval;
  if (timerfd_settime(fd, 0, &spec, nullptr) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("timerfd_settime");
  }
  add_fd(
      fd,
      [fd, tick = std::move(on_tick)]() {
        // The u64 read drains ALL missed periods at once; handing the
        // count to the handler is what lets the datapath turn N coalesced
        // expirations into the right number of rotation boundaries.
        std::uint64_t expirations = 0;
        const ssize_t got = ::read(fd, &expirations, sizeof(expirations));
        if (got == sizeof(expirations) && expirations > 0) tick(expirations);
      },
      /*owns_fd=*/true);
  return fd;
}

int EventLoop::add_oneshot(Duration delay, std::function<void()> fn) {
  if (delay <= Duration{}) {
    throw std::invalid_argument("EventLoop::add_oneshot: delay must be > 0");
  }
  const int fd = timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  if (fd < 0) throw_errno("timerfd_create");
  itimerspec spec{};
  const std::int64_t usec = delay.count_usec();
  spec.it_value.tv_sec = usec / 1'000'000;
  spec.it_value.tv_nsec = (usec % 1'000'000) * 1000;
  // it_interval stays zero: the timer fires exactly once.
  if (timerfd_settime(fd, 0, &spec, nullptr) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("timerfd_settime");
  }
  add_fd(
      fd,
      [this, fd, once = std::move(fn)]() {
        std::uint64_t expirations = 0;
        const ssize_t got = ::read(fd, &expirations, sizeof(expirations));
        // Self-remove BEFORE running the callback: `once` may re-register
        // this very fd number (the kernel reuses it) without tripping the
        // already-registered check.
        remove_fd(fd);
        if (got == sizeof(expirations) && expirations > 0) once();
      },
      /*owns_fd=*/true);
  return fd;
}

int EventLoop::add_signals(std::initializer_list<int> signals,
                           SignalHandler on_signal) {
  sigset_t set;
  sigemptyset(&set);
  for (const int s : signals) sigaddset(&set, s);
  sigset_t old;
  if (pthread_sigmask(SIG_BLOCK, &set, &old) != 0) {
    throw_errno("pthread_sigmask");
  }
  if (!signal_mask_saved_) {
    saved_mask_ = old;
    signal_mask_saved_ = true;
  }
  const int fd = signalfd(-1, &set, SFD_NONBLOCK | SFD_CLOEXEC);
  if (fd < 0) throw_errno("signalfd");
  add_fd(
      fd,
      [fd, handler = std::move(on_signal)]() {
        signalfd_siginfo info;
        while (::read(fd, &info, sizeof(info)) == sizeof(info)) {
          handler(static_cast<int>(info.ssi_signo));
        }
      },
      /*owns_fd=*/true);
  return fd;
}

int EventLoop::poll_once(int timeout_ms) {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  const int n = epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throw_errno("epoll_wait");
  }
  if (n > 0) ++wakeups_;
  int fired = 0;
  dispatching_ = true;
  for (int i = 0; i < n; ++i) {
    const auto it = regs_.find(events[i].data.fd);
    if (it == regs_.end() || it->second.dead) continue;
    // Route pure error events (EPOLLERR/EPOLLHUP with nothing readable)
    // to the error path when one is registered: level-triggered error
    // bits re-fire forever, so handing them to a read handler that
    // cannot consume them would busy-spin the loop. While data remains
    // readable the read handler still runs -- frames buffered before the
    // fd died must drain before the error is acted on.
    const std::uint32_t bits = events[i].events;
    const bool pure_error = (bits & (EPOLLERR | EPOLLHUP)) != 0 &&
                            (bits & EPOLLIN) == 0;
    if (pure_error && it->second.on_error) {
      it->second.on_error();
    } else {
      it->second.handler();
    }
    ++fired;
    ++dispatched_;
    if (stop_) break;
  }
  dispatching_ = false;
  if (pending_cleanup_) erase_dead();
  graveyard_.clear();
  return fired;
}

void EventLoop::run() {
  while (!stop_) poll_once(-1);
}

}  // namespace upbound::live
