#include "net/live/live_datapath.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "filter/bitmap_filter.h"
#include "filter/drop_policy.h"
#include "filter/snapshot.h"
#include "net/live/reload.h"
#include "tenant/hierarchical_filter.h"

namespace upbound::live {

namespace {

std::string format_bps(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

std::string names_with_cap(FilterCapability cap) {
  std::string out;
  for (const BackendDescriptor& backend :
       FilterRegistry::instance().descriptors()) {
    if (!backend.has(cap)) continue;
    if (!out.empty()) out += '|';
    out += backend.name;
  }
  return out;
}

std::unique_ptr<DropPolicy> policy_from(const LiveConfig& config) {
  if (config.policy_red) {
    return std::make_unique<RedDropPolicy>(config.policy_low,
                                           config.policy_high);
  }
  return std::make_unique<ConstantDropPolicy>(config.policy_pd);
}

}  // namespace

MetricsSnapshot strip_batch_shape(const MetricsSnapshot& snapshot) {
  MetricsSnapshot out = snapshot;
  std::erase_if(out.histograms, [](const HistogramSample& h) {
    return h.name == "batch.packets" || h.name == "run.packets";
  });
  return out;
}

std::string conformance_report(const ReplayResult& result,
                               SimTime end_time) {
  return metrics_to_json(strip_batch_shape(result.metrics.deterministic()),
                         "final", end_time);
}

LiveDatapath::LiveDatapath(LiveConfig config, FilterSpec spec,
                           std::unique_ptr<CaptureSource> source,
                           EventLoop& loop)
    : config_(std::move(config)),
      spec_(std::move(spec)),
      source_(std::move(source)),
      loop_(loop),
      result_(config_.router.series_bucket),
      policy_low_(config_.policy_low),
      policy_high_(config_.policy_high),
      next_metrics_emit_(SimTime::infinite()),
      capture_retry_(config_.capture_retry_initial,
                     config_.capture_retry_max) {
  if (config_.clock == nullptr) {
    throw std::invalid_argument("LiveDatapath: clock required");
  }
  if (source_ == nullptr) {
    throw std::invalid_argument("LiveDatapath: capture source required");
  }
  if (config_.batch_max == 0) {
    throw std::invalid_argument("LiveDatapath: batch_max must be > 0");
  }
  if (config_.capture_retry_initial <= Duration{} ||
      config_.capture_retry_max < config_.capture_retry_initial) {
    throw std::invalid_argument(
        "LiveDatapath: need 0 < capture_retry_initial <= "
        "capture_retry_max");
  }
  router_ = std::make_unique<EdgeRouter>(
      config_.router, make_state_filter(spec_), policy_from(config_));

  pending_.resize(config_.batch_max);
  decisions_.resize(config_.batch_max);
  sink_ = [this](std::span<const std::uint8_t> frame, SimTime ts) {
    ingest_frame(frame, ts);
  };

  if (!config_.metrics_out.empty() && !config_.metrics_prometheus) {
    metrics_writer_ =
        std::make_unique<MetricsJsonlWriter>(config_.metrics_out);
  }

  if (!config_.checkpoint_dir.empty()) {
    if (spec_.backend == nullptr || !spec_.backend->has(kCapSnapshot)) {
      throw std::invalid_argument(
          "LiveDatapath: checkpointing requires a snapshot-capable "
          "filter backend (supported: " +
          names_with_cap(kCapSnapshot) + ")");
    }
    checkpointer_ = std::make_unique<Checkpointer>(
        Checkpointer::Config{config_.checkpoint_dir,
                             config_.checkpoint_interval,
                             config_.checkpoint_keep},
        [this](CheckpointMeta& meta) { return checkpoint_state(meta); },
        config_.faults);
    checkpoint_fd_ = loop_.add_timer(
        config_.checkpoint_interval,
        [this](std::uint64_t) { write_checkpoint_now(); });
  }

  start_time_ = config_.clock->now();
  capture_fd_ = source_->fd();
  attach_capture();
  tick_fd_ = loop_.add_timer(
      config_.tick, [this](std::uint64_t n) { on_tick(n); });
}

LiveDatapath::~LiveDatapath() {
  // The loop may outlive the datapath; its registrations capture `this`.
  loop_.remove_fd(tick_fd_);
  if (checkpoint_fd_ >= 0) loop_.remove_fd(checkpoint_fd_);
  if (pending_oneshot_fd_ >= 0) loop_.remove_fd(pending_oneshot_fd_);
  if (capture_attached_) loop_.remove_fd(capture_fd_);
}

void LiveDatapath::enable_control(const std::string& path,
                                  Duration idle_timeout) {
  control_ =
      std::make_unique<ControlServer>(loop_, path, this, idle_timeout);
}

void LiveDatapath::ingest_frame(std::span<const std::uint8_t> frame,
                                SimTime ts) {
  if (!decode_frame_into(frame, ts, decode_scratch_)) {
    ++live_stats_.decode_errors;
    return;
  }
  // Copy-assignment into the ring slot reuses the slot's payload
  // capacity: the steady-state frame path performs no allocations.
  pending_[pending_count_++] = decode_scratch_.packet;
}

void LiveDatapath::on_capture_readable() {
  for (;;) {
    if (pending_count_ == config_.batch_max) process_pending();
    const std::size_t room = config_.batch_max - pending_count_;
    if (source_->drain(room, sink_) < room) break;  // source would block
  }
  process_pending();
  run_capture_faults();
  if (capture_attached_ && source_->error() != 0) {
    // drain() returned "would block" because the socket is DEAD, not
    // empty; waiting on epoll would wedge the daemon forever.
    handle_capture_failure();
  }
  check_stop_conditions();
}

void LiveDatapath::run_capture_faults() {
  if constexpr (!kFaultsCompiled) return;
  if (config_.faults == nullptr || !config_.faults->armed()) return;
  const std::uint64_t frames = source_->frames_received();
  if (capture_attached_ &&
      config_.faults->take_capture_kill(frames)) {
    source_->inject_failure();  // error() latches; handled by caller
  }
  const double stall_ms = config_.faults->take_capture_stall_ms(frames);
  if (stall_ms > 0.0 && capture_attached_ && source_->error() == 0) {
    stall_capture(Duration::sec(stall_ms / 1e3));
  }
}

void LiveDatapath::attach_capture() {
  loop_.add_fd(
      capture_fd_, [this]() { on_capture_readable(); }, false,
      [this]() { handle_capture_failure(); });
  capture_attached_ = true;
}

void LiveDatapath::handle_capture_failure() {
  if (!capture_attached_) return;
  ++live_stats_.capture_failures;
  loop_.remove_fd(capture_fd_);
  capture_attached_ = false;
  capture_down_since_ = config_.clock->now();
  // The router is blind while the fd is down: a stateless-inbound miss
  // proves nothing, so the health monitor degrades and the configured
  // stance (fail-open / fail-closed) governs traffic across the gap.
  router_->note_capture_outage(true, capture_down_since_);
  const int err = source_->error();
  std::fprintf(stderr,
               "live: capture source '%s' failed (%s); retrying from %s\n",
               source_->name().c_str(),
               err != 0 ? std::strerror(err) : "event error",
               config_.capture_retry_initial.to_string().c_str());
  capture_retry_.reset();
  consecutive_reattach_failures_ = 0;
  schedule_reattach();
}

void LiveDatapath::schedule_reattach() {
  pending_oneshot_fd_ =
      loop_.add_oneshot(capture_retry_.next(), [this]() {
        pending_oneshot_fd_ = -1;
        try_reattach();
      });
}

void LiveDatapath::try_reattach() {
  ++live_stats_.capture_reattach_attempts;
  try {
    capture_fd_ = source_->reattach();
  } catch (const std::exception& e) {
    ++consecutive_reattach_failures_;
    if (config_.capture_retry_limit != 0 &&
        consecutive_reattach_failures_ >= config_.capture_retry_limit) {
      std::fprintf(stderr,
                   "live: capture source did not recover after %llu "
                   "attempts (%s); draining and stopping\n",
                   static_cast<unsigned long long>(
                       consecutive_reattach_failures_),
                   e.what());
      drain_and_stop();
      return;
    }
    schedule_reattach();  // bounded exponential backoff
    return;
  }
  consecutive_reattach_failures_ = 0;
  attach_capture();
  ++live_stats_.capture_reattaches;
  const SimTime now = config_.clock->now();
  const Duration gap = now - capture_down_since_;
  if (!gap.is_negative()) {
    live_stats_.capture_gap_usec +=
        static_cast<std::uint64_t>(gap.count_usec());
  }
  router_->note_capture_outage(false, now);
  capture_retry_.reset();
  // Anything already queued on the fresh fd predates its epoll edge.
  on_capture_readable();
}

void LiveDatapath::stall_capture(Duration window) {
  ++live_stats_.capture_failures;
  loop_.remove_fd(capture_fd_);
  capture_attached_ = false;
  capture_down_since_ = config_.clock->now();
  router_->note_capture_outage(true, capture_down_since_);
  pending_oneshot_fd_ = loop_.add_oneshot(window, [this]() {
    pending_oneshot_fd_ = -1;
    // Same fd, no socket death: just re-register and clear the outage.
    attach_capture();
    ++live_stats_.capture_reattaches;
    const SimTime now = config_.clock->now();
    const Duration gap = now - capture_down_since_;
    if (!gap.is_negative()) {
      live_stats_.capture_gap_usec +=
          static_cast<std::uint64_t>(gap.count_usec());
    }
    router_->note_capture_outage(false, now);
    // The kernel kept buffering while we were detached; catch up now.
    on_capture_readable();
  });
}

void LiveDatapath::process_pending() {
  if (pending_count_ == 0) return;
  const PacketBatch batch{pending_.data(), pending_count_};
  const std::span<RouterDecision> decisions{decisions_.data(),
                                            pending_count_};
  router_->process_batch(batch, decisions);
  account_replay_batch(result_, config_.router.network, batch,
                       std::span<const RouterDecision>{decisions_.data(),
                                                       pending_count_});
  for (std::size_t i = 0; i < pending_count_; ++i) {
    switch (decisions[i]) {
      case RouterDecision::kPassedOutbound:
      case RouterDecision::kPassedInbound:
        ++live_stats_.forwarded;
        break;
      case RouterDecision::kDroppedByPolicy:
      case RouterDecision::kDroppedBlocked:
        ++live_stats_.dropped;
        break;
      case RouterDecision::kIgnored:
        ++live_stats_.ignored;
        break;
    }
    if (verdict_sink_) verdict_sink_(pending_[i], decisions[i]);
  }
  live_stats_.packets += pending_count_;
  ++live_stats_.batches;
  live_stats_.frames = source_->frames_received();
  live_stats_.frame_bytes = source_->bytes_received();
  live_stats_.malformed = source_->malformed_inputs();
  live_stats_.frames_lost = source_->frames_lost();

  const SimTime batch_last = pending_[pending_count_ - 1].timestamp;
  if (!saw_packet_) {
    saw_packet_ = true;
    last_packet_time_ = pending_[0].timestamp;
    if (!config_.metrics_interval.is_zero() && metrics_writer_ != nullptr) {
      // Interval snapshots fire on sim-time boundaries measured from the
      // first packet -- the exact offline replay semantics, so a live
      // interval JSONL stream matches an offline one line for line.
      next_metrics_emit_ = pending_[0].timestamp + config_.metrics_interval;
    }
  }
  if (batch_last > last_packet_time_) last_packet_time_ = batch_last;
  pending_count_ = 0;
  maybe_emit_interval_metrics();
}

void LiveDatapath::maybe_emit_interval_metrics() {
  while (last_packet_time_ >= next_metrics_emit_) {
    MetricsSnapshot snap =
        config_.metrics_deterministic
            ? router_->metrics_snapshot().deterministic()
            : router_->metrics_snapshot();
    append_robustness_gauges(snap, next_metrics_emit_);
    try {
      metrics_writer_->write(snap, "interval", next_metrics_emit_);
    } catch (const std::exception& e) {
      // A full disk must not take the datapath down: count it, warn once,
      // and keep processing. The boundary still advances, so a recovered
      // filesystem resumes at the next interval instead of replaying a
      // burst of stale snapshots.
      ++live_stats_.metrics_export_errors;
      if (live_stats_.metrics_export_errors == 1) {
        std::fprintf(stderr,
                     "live: interval metrics export failed: %s "
                     "(continuing; counted in metrics_export_errors)\n",
                     e.what());
      }
    }
    next_metrics_emit_ = next_metrics_emit_ + config_.metrics_interval;
  }
}

void LiveDatapath::append_robustness_gauges(MetricsSnapshot& snap,
                                            SimTime now) const {
  if (checkpointer_ == nullptr) return;
  // Only armed daemons grow these gauges: with checkpointing off the
  // exported snapshot is byte-identical to offline replay's, which the
  // conformance harness asserts.
  const Duration stale = checkpointer_->staleness(now);
  snap.gauges.push_back(GaugeSample{
      "checkpoint.generations",
      static_cast<double>(checkpointer_->generations_written())});
  snap.gauges.push_back(GaugeSample{
      "checkpoint.staleness_usec",
      static_cast<double>(stale.count_usec())});
  std::sort(snap.gauges.begin(), snap.gauges.end(),
            [](const GaugeSample& a, const GaugeSample& b) {
              return a.name < b.name;
            });  // gauges are name-sorted by contract
}

void LiveDatapath::on_tick(std::uint64_t expirations) {
  live_stats_.ticks += expirations;
  // One advance regardless of how many periods coalesced: advance_clock
  // is idempotent for a given `now`, and the filter's advance_time loops
  // over every dt boundary it crossed -- exactly one rotation per
  // boundary, never one per expiration.
  router_->advance_clock(config_.clock->now());
  check_stop_conditions();
}

void LiveDatapath::check_stop_conditions() {
  if (loop_.stopped() || finalized_) return;
  if (!config_.run_duration.is_zero() &&
      config_.clock->now() - start_time_ >= config_.run_duration) {
    drain_and_stop();
    return;
  }
  if (config_.max_packets != 0 &&
      live_stats_.packets >= config_.max_packets) {
    drain_and_stop();
  }
}

void LiveDatapath::drain_and_stop() {
  finalize();
  loop_.stop();
}

void LiveDatapath::finalize() {
  if (finalized_) return;
  finalized_ = true;
  // Shutdown drains: every frame the kernel already handed us is decoded
  // and processed before the final report (the conservation property the
  // harness asserts).
  for (;;) {
    if (pending_count_ == config_.batch_max) process_pending();
    const std::size_t room = config_.batch_max - pending_count_;
    if (source_->drain(room, sink_) < room) break;
  }
  process_pending();

  result_.stats = router_->stats();
  result_.metrics = router_->metrics_snapshot();
  live_stats_.frames = source_->frames_received();
  live_stats_.frame_bytes = source_->bytes_received();
  live_stats_.malformed = source_->malformed_inputs();
  live_stats_.frames_lost = source_->frames_lost();

  if (!config_.metrics_out.empty()) {
    const SimTime end =
        saw_packet_ ? last_packet_time_ : SimTime::origin();
    MetricsSnapshot exported = config_.metrics_deterministic
                                   ? result_.metrics.deterministic()
                                   : result_.metrics;
    append_robustness_gauges(exported, end);
    if (config_.metrics_prometheus) {
      std::FILE* f = std::fopen(config_.metrics_out.c_str(), "wb");
      if (f == nullptr) {
        metrics_export_failed_ = true;
        std::fprintf(stderr,
                     "live: cannot open metrics output '%s': %s\n",
                     config_.metrics_out.c_str(), std::strerror(errno));
      } else {
        const std::string text = metrics_to_prometheus(exported);
        const bool wrote =
            std::fwrite(text.data(), 1, text.size(), f) == text.size();
        const bool closed = std::fclose(f) == 0;
        if (!wrote || !closed) {
          metrics_export_failed_ = true;
          std::fprintf(stderr,
                       "live: failed writing metrics output '%s'\n",
                       config_.metrics_out.c_str());
        }
      }
    } else {
      try {
        metrics_writer_->write(exported, "final", end);
      } catch (const std::exception& e) {
        metrics_export_failed_ = true;
        ++live_stats_.metrics_export_errors;
        std::fprintf(stderr,
                     "live: failed writing metrics output '%s': %s\n",
                     config_.metrics_out.c_str(), e.what());
      }
    }
  }
}

std::vector<std::uint8_t> LiveDatapath::checkpoint_state(
    CheckpointMeta& meta) {
  // Quiesce at a batch boundary: the image never splits a batch, so a
  // restore resumes exactly where accounting left off.
  process_pending();
  auto* bitmap = dynamic_cast<BitmapFilter*>(&router_->filter());
  if (bitmap == nullptr) {
    throw std::runtime_error(
        "live: running filter is not checkpoint-serializable");
  }
  const SimTime at = saw_packet_ ? last_packet_time_ : SimTime::origin();
  meta.time = at;
  meta.policy_low = policy_low_;
  meta.policy_high = policy_high_;
  meta.rotate_interval = bitmap->config().rotate_interval;
  meta.meter_window = config_.router.meter_window;
  const auto* hier =
      dynamic_cast<const HierarchicalFilter*>(&router_->filter());
  meta.tenant_epoch =
      hier != nullptr && hier->digests_enabled() ? hier->digest_epoch() : 0;
  return snapshot_bitmap_filter(*bitmap, at);
}

void LiveDatapath::write_checkpoint_now() {
  if (checkpointer_ == nullptr) return;
  try {
    checkpointer_->write_checkpoint();
    ++live_stats_.checkpoints_written;
  } catch (const std::exception& e) {
    // Same stance as interval metrics: checkpointing is an availability
    // aid; a full disk costs the warm start, never the datapath.
    ++live_stats_.checkpoint_errors;
    if (live_stats_.checkpoint_errors == 1) {
      std::fprintf(stderr,
                   "live: checkpoint write failed: %s (continuing; "
                   "counted in checkpoint_errors)\n",
                   e.what());
    }
  }
}

CheckpointRestore LiveDatapath::restore_checkpoint_dir(
    const std::string& dir, std::optional<SimTime> now) {
  CheckpointRestore restore = restore_newest_checkpoint(dir, now);
  if (!restore.ok()) return restore;

  // The restored image must match the CONFIGURED geometry: silently
  // adopting a checkpoint with different {n, k, m, seed, key-mode} would
  // change Eq. 2 behavior out from under the operator's flags. dt is the
  // one tunable that follows the checkpoint (a runtime `set dt` retune
  // survives restart).
  const std::string name =
      restore.path.substr(restore.path.find_last_of('/') + 1);
  if (spec_.backend == nullptr || !spec_.backend->has(kCapSnapshot)) {
    restore.skipped.push_back(name + ": geometry-mismatch");
    restore.filter.reset();
    return restore;
  }
  const BitmapFilterConfig& want = spec_.config_as<BitmapFilterConfig>();
  const BitmapFilterConfig& got = restore.filter->filter.config();
  if (got.log2_bits != want.log2_bits ||
      got.vector_count != want.vector_count ||
      got.hash_count != want.hash_count ||
      got.hash_seed != want.hash_seed || got.key_mode != want.key_mode) {
    restore.skipped.push_back(name + ": geometry-mismatch");
    restore.filter.reset();
    return restore;
  }

  if (config_.policy_red) {
    policy_low_ = restore.meta.policy_low;
    policy_high_ = restore.meta.policy_high;
    router_->set_drop_policy(
        std::make_unique<RedDropPolicy>(policy_low_, policy_high_));
  }
  // The filter moves into the router; restore.filter stays engaged (a
  // moved-from husk) so ok()/report() keep describing the success.
  router_->replace_filter(take_restored_filter(std::move(*restore.filter)));
  return restore;
}

ControlReply LiveDatapath::control_set_threshold(bool is_low, double bps) {
  const double low = is_low ? bps : policy_low_;
  const double high = is_low ? policy_high_ : bps;
  if (!(low < high)) {
    return ControlReply::err(
        "bad-argument", "thresholds must satisfy low < high (low=" +
                            format_bps(low) + ", high=" + format_bps(high) +
                            ")");
  }
  policy_low_ = low;
  policy_high_ = high;
  router_->set_drop_policy(std::make_unique<RedDropPolicy>(low, high));
  return ControlReply::good("low=" + format_bps(low) +
                            " high=" + format_bps(high));
}

ControlReply LiveDatapath::control_set_rotate_interval(Duration dt) {
  if (spec_.backend == nullptr ||
      !spec_.backend->has(kCapRotateInterval)) {
    return ControlReply::err(
        "capability:rotate",
        "backend '" + spec_.kind() +
            "' has no runtime-adjustable rotation interval (supported: " +
            names_with_cap(kCapRotateInterval) + ")");
  }
  try {
    if (!router_->filter().set_rotate_interval(dt)) {
      return ControlReply::err(
          "capability:rotate",
          "backend '" + spec_.kind() + "' rejected the retune");
    }
  } catch (const std::invalid_argument& e) {
    return ControlReply::err("bad-argument", e.what());
  }
  return ControlReply::good("dt=" + format_bps(dt.to_sec()) + "s");
}

ControlReply LiveDatapath::control_set_unhealthy_stance(UnhealthyStance s) {
  if (!router_->set_unhealthy_stance(s)) {
    return ControlReply::err(
        "unsupported:health",
        "health monitor not armed (launch with --on-unhealthy on a "
        "UPBOUND_FAULTS=ON build)");
  }
  return ControlReply::good(
      s == UnhealthyStance::kFailOpen ? "on-unhealthy=fail-open"
                                      : "on-unhealthy=fail-closed");
}

ControlReply LiveDatapath::control_snapshot(const std::string& path) {
  if (spec_.backend == nullptr || !spec_.backend->has(kCapSnapshot)) {
    return ControlReply::err(
        "capability:snapshot",
        "backend '" + spec_.kind() +
            "' has no snapshot format (supported: " +
            names_with_cap(kCapSnapshot) + ")");
  }
  auto* bitmap = dynamic_cast<BitmapFilter*>(&router_->filter());
  if (bitmap == nullptr) {
    return ControlReply::err(
        "capability:snapshot",
        "backend '" + spec_.kind() + "' is not snapshot-serializable");
  }
  const SimTime at = saw_packet_ ? last_packet_time_ : SimTime::origin();
  try {
    const std::vector<std::uint8_t> bytes =
        snapshot_bitmap_filter(*bitmap, at);
    save_snapshot_file(path, bytes);
    return ControlReply::good("wrote " + path + " (" +
                              std::to_string(bytes.size()) + " bytes)");
  } catch (const std::exception& e) {
    return ControlReply::err("io", e.what());
  }
}

ControlReply LiveDatapath::control_reload(const std::string& path) {
  ReloadConfig reload;
  try {
    reload = parse_reload_config(path);
  } catch (const std::invalid_argument& e) {
    return ControlReply::err("bad-argument", e.what());
  } catch (const std::exception& e) {
    return ControlReply::err("io", e.what());
  }

  // Validate EVERYTHING before touching the datapath: a reload applies
  // whole or not at all, so a typo'd config can never leave the daemon
  // half-reconfigured.
  double low = policy_low_;
  double high = policy_high_;
  const bool retune_policy =
      reload.policy_low.has_value() || reload.policy_high.has_value();
  if (retune_policy) {
    if (!config_.policy_red) {
      return ControlReply::err(
          "bad-argument",
          "low/high retune a RED policy; this datapath runs a constant "
          "P_d");
    }
    low = reload.policy_low.value_or(low);
    high = reload.policy_high.value_or(high);
    if (!(low < high)) {
      return ControlReply::err(
          "bad-argument", "thresholds must satisfy low < high (low=" +
                              format_bps(low) + ", high=" +
                              format_bps(high) + ")");
    }
  }

  std::string detail;
  if (reload.has_filter) {
    const BackendDescriptor* backend =
        FilterRegistry::instance().find(reload.filter_kind);
    if (backend == nullptr) {
      return ControlReply::err(
          "bad-argument",
          "unknown filter backend '" + reload.filter_kind + "' (" +
              FilterRegistry::instance().names_joined("|") + ")");
    }
    FilterSpec new_spec;
    try {
      new_spec = backend->parse(reload.filter_args);
    } catch (const std::invalid_argument& e) {
      return ControlReply::err("bad-argument", e.what());
    }
    // Marking state migrates through the snapshot format, so both the
    // running backend and the target must speak it, and the geometry
    // {n, k, m, seed, key-mode} must agree -- a snapshot of one geometry
    // has no lossless embedding into another. dt alone may change; the
    // rotation schedule carries over.
    if (spec_.backend == nullptr || !spec_.backend->has(kCapSnapshot) ||
        !backend->has(kCapSnapshot)) {
      return ControlReply::err(
          "reload-incompatible",
          "'" + spec_.kind() + "' -> '" + backend->name +
              "' cannot migrate state (snapshot-capable backends: " +
              names_with_cap(kCapSnapshot) + "); restart to change");
    }
    auto* bitmap = dynamic_cast<BitmapFilter*>(&router_->filter());
    if (bitmap == nullptr) {
      return ControlReply::err(
          "reload-incompatible",
          "running filter is not snapshot-serializable; restart to change");
    }
    const BitmapFilterConfig& want = new_spec.config_as<BitmapFilterConfig>();
    const BitmapFilterConfig& got = bitmap->config();
    if (got.log2_bits != want.log2_bits ||
        got.vector_count != want.vector_count ||
        got.hash_count != want.hash_count ||
        got.hash_seed != want.hash_seed ||
        got.key_mode != want.key_mode) {
      return ControlReply::err(
          "reload-incompatible",
          "new geometry would discard marking state (running n=" +
              std::to_string(got.log2_bits) + " k=" +
              std::to_string(got.vector_count) + " m=" +
              std::to_string(got.hash_count) +
              "; only dt may change across a reload). Filter untouched; "
              "restart to change geometry");
    }

    // Quiesce at a batch boundary and migrate: snapshot -> restore ->
    // swap. The round-trip runs even when only dt (or nothing) changed --
    // it IS the lossless-migration path, and the conformance test pins a
    // no-op reload to byte-identical results.
    process_pending();
    const SimTime at = saw_packet_ ? last_packet_time_ : SimTime::origin();
    BitmapRestoreResult round = restore_bitmap_filter_checked(
        snapshot_bitmap_filter(*bitmap, at), std::nullopt);
    if (!round.restored.has_value()) {
      return ControlReply::err(
          "io", std::string{"snapshot round-trip failed: "} +
                    snapshot_restore_error_name(round.error));
    }
    if (want.rotate_interval != got.rotate_interval) {
      round.restored->filter.set_rotate_interval(want.rotate_interval);
    }
    router_->replace_filter(
        take_restored_filter(std::move(*round.restored)));
    spec_ = std::move(new_spec);
    detail = "filter=" + spec_.kind() +
             " dt=" + format_bps(want.rotate_interval.to_sec()) + "s";
  }

  if (retune_policy) {
    policy_low_ = low;
    policy_high_ = high;
    router_->set_drop_policy(std::make_unique<RedDropPolicy>(low, high));
    if (!detail.empty()) detail += ' ';
    detail += "low=" + format_bps(low) + " high=" + format_bps(high);
  }
  return ControlReply::good("reloaded " + path + ": " + detail);
}

ControlReply LiveDatapath::control_checkpoint() {
  if (checkpointer_ == nullptr) {
    return ControlReply::err(
        "unsupported:checkpoint",
        "checkpointing not armed (launch with --checkpoint-dir)");
  }
  try {
    const std::string path = checkpointer_->write_checkpoint();
    ++live_stats_.checkpoints_written;
    return ControlReply::good("wrote " + path);
  } catch (const std::exception& e) {
    ++live_stats_.checkpoint_errors;
    return ControlReply::err("io", e.what());
  }
}

ControlReply LiveDatapath::control_stats() {
  live_stats_.frames = source_->frames_received();
  live_stats_.frame_bytes = source_->bytes_received();
  live_stats_.malformed = source_->malformed_inputs();
  live_stats_.frames_lost = source_->frames_lost();
  const SimTime at = saw_packet_ ? last_packet_time_ : SimTime::origin();
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\"source\":\"%s\",\"frames\":%llu,\"frame_bytes\":%llu,"
      "\"packets\":%llu,\"forwarded\":%llu,\"dropped\":%llu,"
      "\"ignored\":%llu,\"decode_errors\":%llu,\"malformed\":%llu,"
      "\"batches\":%llu,\"ticks\":%llu,\"frames_lost\":%llu,"
      "\"capture_failures\":%llu,\"capture_reattaches\":%llu,"
      "\"capture_gap_usec\":%llu,\"capture_attached\":%s,"
      "\"metrics_export_errors\":%llu,\"checkpoints_written\":%llu,"
      "\"uplink_bps\":%g}",
      source_->name().c_str(),
      static_cast<unsigned long long>(live_stats_.frames),
      static_cast<unsigned long long>(live_stats_.frame_bytes),
      static_cast<unsigned long long>(live_stats_.packets),
      static_cast<unsigned long long>(live_stats_.forwarded),
      static_cast<unsigned long long>(live_stats_.dropped),
      static_cast<unsigned long long>(live_stats_.ignored),
      static_cast<unsigned long long>(live_stats_.decode_errors),
      static_cast<unsigned long long>(live_stats_.malformed),
      static_cast<unsigned long long>(live_stats_.batches),
      static_cast<unsigned long long>(live_stats_.ticks),
      static_cast<unsigned long long>(live_stats_.frames_lost),
      static_cast<unsigned long long>(live_stats_.capture_failures),
      static_cast<unsigned long long>(live_stats_.capture_reattaches),
      static_cast<unsigned long long>(live_stats_.capture_gap_usec),
      capture_attached_ ? "true" : "false",
      static_cast<unsigned long long>(live_stats_.metrics_export_errors),
      static_cast<unsigned long long>(live_stats_.checkpoints_written),
      router_->uplink_bits_per_sec(at));
  return ControlReply::good(buf);
}

ControlReply LiveDatapath::control_stats_tenants() {
  // Capability-gated like `set dt`/`snapshot`: the declared backend
  // capability decides, so the answer matches the registry's contract
  // even if the running filter type were to change.
  if (spec_.backend == nullptr || !spec_.backend->has(kCapTenancy)) {
    return ControlReply::err(
        "capability:tenancy",
        "filter '" + std::string{spec_.backend != nullptr
                                     ? spec_.backend->name
                                     : "?"} +
            "' has no tenant table (" + names_with_cap(kCapTenancy) + ")");
  }
  const auto* hier =
      dynamic_cast<const HierarchicalFilter*>(&router_->filter());
  if (hier == nullptr) {
    return ControlReply::err("capability:tenancy",
                             "filter has no tenant table");
  }
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "{\"tenants\":%zu,\"fine_live\":%zu,\"fine_instantiations\":%llu,"
      "\"fine_evictions\":%llu,\"front_absorbed\":%llu,"
      "\"digest_admits\":%llu,\"digest_epoch\":%llu}",
      hier->tenant_count(), hier->live_fine_filters(),
      static_cast<unsigned long long>(hier->fine_instantiations()),
      static_cast<unsigned long long>(hier->fine_evictions()),
      static_cast<unsigned long long>(hier->front_absorbed()),
      static_cast<unsigned long long>(hier->digest_admits()),
      static_cast<unsigned long long>(
          hier->digests_enabled() ? hier->digest_epoch() : 0));
  return ControlReply::good(buf);
}

void LiveDatapath::control_quit() { drain_and_stop(); }

}  // namespace upbound::live
