#include "net/live/live_datapath.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "filter/bitmap_filter.h"
#include "filter/drop_policy.h"
#include "filter/snapshot.h"
#include "tenant/hierarchical_filter.h"

namespace upbound::live {

namespace {

std::string format_bps(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

std::string names_with_cap(FilterCapability cap) {
  std::string out;
  for (const BackendDescriptor& backend :
       FilterRegistry::instance().descriptors()) {
    if (!backend.has(cap)) continue;
    if (!out.empty()) out += '|';
    out += backend.name;
  }
  return out;
}

std::unique_ptr<DropPolicy> policy_from(const LiveConfig& config) {
  if (config.policy_red) {
    return std::make_unique<RedDropPolicy>(config.policy_low,
                                           config.policy_high);
  }
  return std::make_unique<ConstantDropPolicy>(config.policy_pd);
}

}  // namespace

MetricsSnapshot strip_batch_shape(const MetricsSnapshot& snapshot) {
  MetricsSnapshot out = snapshot;
  std::erase_if(out.histograms, [](const HistogramSample& h) {
    return h.name == "batch.packets" || h.name == "run.packets";
  });
  return out;
}

std::string conformance_report(const ReplayResult& result,
                               SimTime end_time) {
  return metrics_to_json(strip_batch_shape(result.metrics.deterministic()),
                         "final", end_time);
}

LiveDatapath::LiveDatapath(LiveConfig config, FilterSpec spec,
                           std::unique_ptr<CaptureSource> source,
                           EventLoop& loop)
    : config_(std::move(config)),
      spec_(std::move(spec)),
      source_(std::move(source)),
      loop_(loop),
      result_(config_.router.series_bucket),
      policy_low_(config_.policy_low),
      policy_high_(config_.policy_high),
      next_metrics_emit_(SimTime::infinite()) {
  if (config_.clock == nullptr) {
    throw std::invalid_argument("LiveDatapath: clock required");
  }
  if (source_ == nullptr) {
    throw std::invalid_argument("LiveDatapath: capture source required");
  }
  if (config_.batch_max == 0) {
    throw std::invalid_argument("LiveDatapath: batch_max must be > 0");
  }
  router_ = std::make_unique<EdgeRouter>(
      config_.router, make_state_filter(spec_), policy_from(config_));

  pending_.resize(config_.batch_max);
  decisions_.resize(config_.batch_max);
  sink_ = [this](std::span<const std::uint8_t> frame, SimTime ts) {
    ingest_frame(frame, ts);
  };

  if (!config_.metrics_out.empty() && !config_.metrics_prometheus) {
    metrics_writer_ =
        std::make_unique<MetricsJsonlWriter>(config_.metrics_out);
  }

  start_time_ = config_.clock->now();
  loop_.add_fd(source_->fd(), [this]() { on_capture_readable(); });
  tick_fd_ = loop_.add_timer(
      config_.tick, [this](std::uint64_t n) { on_tick(n); });
}

LiveDatapath::~LiveDatapath() {
  // The loop may outlive the datapath; its registrations capture `this`.
  loop_.remove_fd(tick_fd_);
  loop_.remove_fd(source_->fd());
}

void LiveDatapath::enable_control(const std::string& path) {
  control_ = std::make_unique<ControlServer>(loop_, path, this);
}

void LiveDatapath::ingest_frame(std::span<const std::uint8_t> frame,
                                SimTime ts) {
  if (!decode_frame_into(frame, ts, decode_scratch_)) {
    ++live_stats_.decode_errors;
    return;
  }
  // Copy-assignment into the ring slot reuses the slot's payload
  // capacity: the steady-state frame path performs no allocations.
  pending_[pending_count_++] = decode_scratch_.packet;
}

void LiveDatapath::on_capture_readable() {
  for (;;) {
    if (pending_count_ == config_.batch_max) process_pending();
    const std::size_t room = config_.batch_max - pending_count_;
    if (source_->drain(room, sink_) < room) break;  // source would block
  }
  process_pending();
  check_stop_conditions();
}

void LiveDatapath::process_pending() {
  if (pending_count_ == 0) return;
  const PacketBatch batch{pending_.data(), pending_count_};
  const std::span<RouterDecision> decisions{decisions_.data(),
                                            pending_count_};
  router_->process_batch(batch, decisions);
  account_replay_batch(result_, config_.router.network, batch,
                       std::span<const RouterDecision>{decisions_.data(),
                                                       pending_count_});
  for (std::size_t i = 0; i < pending_count_; ++i) {
    switch (decisions[i]) {
      case RouterDecision::kPassedOutbound:
      case RouterDecision::kPassedInbound:
        ++live_stats_.forwarded;
        break;
      case RouterDecision::kDroppedByPolicy:
      case RouterDecision::kDroppedBlocked:
        ++live_stats_.dropped;
        break;
      case RouterDecision::kIgnored:
        ++live_stats_.ignored;
        break;
    }
    if (verdict_sink_) verdict_sink_(pending_[i], decisions[i]);
  }
  live_stats_.packets += pending_count_;
  ++live_stats_.batches;
  live_stats_.frames = source_->frames_received();
  live_stats_.frame_bytes = source_->bytes_received();
  live_stats_.malformed = source_->malformed_inputs();

  const SimTime batch_last = pending_[pending_count_ - 1].timestamp;
  if (!saw_packet_) {
    saw_packet_ = true;
    last_packet_time_ = pending_[0].timestamp;
    if (!config_.metrics_interval.is_zero() && metrics_writer_ != nullptr) {
      // Interval snapshots fire on sim-time boundaries measured from the
      // first packet -- the exact offline replay semantics, so a live
      // interval JSONL stream matches an offline one line for line.
      next_metrics_emit_ = pending_[0].timestamp + config_.metrics_interval;
    }
  }
  if (batch_last > last_packet_time_) last_packet_time_ = batch_last;
  pending_count_ = 0;
  maybe_emit_interval_metrics();
}

void LiveDatapath::maybe_emit_interval_metrics() {
  while (last_packet_time_ >= next_metrics_emit_) {
    const MetricsSnapshot snap =
        config_.metrics_deterministic
            ? router_->metrics_snapshot().deterministic()
            : router_->metrics_snapshot();
    metrics_writer_->write(snap, "interval", next_metrics_emit_);
    next_metrics_emit_ = next_metrics_emit_ + config_.metrics_interval;
  }
}

void LiveDatapath::on_tick(std::uint64_t expirations) {
  live_stats_.ticks += expirations;
  // One advance regardless of how many periods coalesced: advance_clock
  // is idempotent for a given `now`, and the filter's advance_time loops
  // over every dt boundary it crossed -- exactly one rotation per
  // boundary, never one per expiration.
  router_->advance_clock(config_.clock->now());
  check_stop_conditions();
}

void LiveDatapath::check_stop_conditions() {
  if (loop_.stopped() || finalized_) return;
  if (!config_.run_duration.is_zero() &&
      config_.clock->now() - start_time_ >= config_.run_duration) {
    drain_and_stop();
    return;
  }
  if (config_.max_packets != 0 &&
      live_stats_.packets >= config_.max_packets) {
    drain_and_stop();
  }
}

void LiveDatapath::drain_and_stop() {
  finalize();
  loop_.stop();
}

void LiveDatapath::finalize() {
  if (finalized_) return;
  finalized_ = true;
  // Shutdown drains: every frame the kernel already handed us is decoded
  // and processed before the final report (the conservation property the
  // harness asserts).
  for (;;) {
    if (pending_count_ == config_.batch_max) process_pending();
    const std::size_t room = config_.batch_max - pending_count_;
    if (source_->drain(room, sink_) < room) break;
  }
  process_pending();

  result_.stats = router_->stats();
  result_.metrics = router_->metrics_snapshot();
  live_stats_.frames = source_->frames_received();
  live_stats_.frame_bytes = source_->bytes_received();
  live_stats_.malformed = source_->malformed_inputs();

  if (!config_.metrics_out.empty()) {
    const SimTime end =
        saw_packet_ ? last_packet_time_ : SimTime::origin();
    const MetricsSnapshot exported = config_.metrics_deterministic
                                         ? result_.metrics.deterministic()
                                         : result_.metrics;
    if (config_.metrics_prometheus) {
      std::FILE* f = std::fopen(config_.metrics_out.c_str(), "wb");
      if (f == nullptr) {
        metrics_export_failed_ = true;
        std::fprintf(stderr,
                     "live: cannot open metrics output '%s': %s\n",
                     config_.metrics_out.c_str(), std::strerror(errno));
      } else {
        const std::string text = metrics_to_prometheus(exported);
        const bool wrote =
            std::fwrite(text.data(), 1, text.size(), f) == text.size();
        const bool closed = std::fclose(f) == 0;
        if (!wrote || !closed) {
          metrics_export_failed_ = true;
          std::fprintf(stderr,
                       "live: failed writing metrics output '%s'\n",
                       config_.metrics_out.c_str());
        }
      }
    } else {
      metrics_writer_->write(exported, "final", end);
    }
  }
}

ControlReply LiveDatapath::control_set_threshold(bool is_low, double bps) {
  const double low = is_low ? bps : policy_low_;
  const double high = is_low ? policy_high_ : bps;
  if (!(low < high)) {
    return ControlReply::err(
        "bad-argument", "thresholds must satisfy low < high (low=" +
                            format_bps(low) + ", high=" + format_bps(high) +
                            ")");
  }
  policy_low_ = low;
  policy_high_ = high;
  router_->set_drop_policy(std::make_unique<RedDropPolicy>(low, high));
  return ControlReply::good("low=" + format_bps(low) +
                            " high=" + format_bps(high));
}

ControlReply LiveDatapath::control_set_rotate_interval(Duration dt) {
  if (spec_.backend == nullptr ||
      !spec_.backend->has(kCapRotateInterval)) {
    return ControlReply::err(
        "capability:rotate",
        "backend '" + spec_.kind() +
            "' has no runtime-adjustable rotation interval (supported: " +
            names_with_cap(kCapRotateInterval) + ")");
  }
  try {
    if (!router_->filter().set_rotate_interval(dt)) {
      return ControlReply::err(
          "capability:rotate",
          "backend '" + spec_.kind() + "' rejected the retune");
    }
  } catch (const std::invalid_argument& e) {
    return ControlReply::err("bad-argument", e.what());
  }
  return ControlReply::good("dt=" + format_bps(dt.to_sec()) + "s");
}

ControlReply LiveDatapath::control_set_unhealthy_stance(UnhealthyStance s) {
  if (!router_->set_unhealthy_stance(s)) {
    return ControlReply::err(
        "unsupported:health",
        "health monitor not armed (launch with --on-unhealthy on a "
        "UPBOUND_FAULTS=ON build)");
  }
  return ControlReply::good(
      s == UnhealthyStance::kFailOpen ? "on-unhealthy=fail-open"
                                      : "on-unhealthy=fail-closed");
}

ControlReply LiveDatapath::control_snapshot(const std::string& path) {
  if (spec_.backend == nullptr || !spec_.backend->has(kCapSnapshot)) {
    return ControlReply::err(
        "capability:snapshot",
        "backend '" + spec_.kind() +
            "' has no snapshot format (supported: " +
            names_with_cap(kCapSnapshot) + ")");
  }
  auto* bitmap = dynamic_cast<BitmapFilter*>(&router_->filter());
  if (bitmap == nullptr) {
    return ControlReply::err(
        "capability:snapshot",
        "backend '" + spec_.kind() + "' is not snapshot-serializable");
  }
  const SimTime at = saw_packet_ ? last_packet_time_ : SimTime::origin();
  try {
    const std::vector<std::uint8_t> bytes =
        snapshot_bitmap_filter(*bitmap, at);
    save_snapshot_file(path, bytes);
    return ControlReply::good("wrote " + path + " (" +
                              std::to_string(bytes.size()) + " bytes)");
  } catch (const std::exception& e) {
    return ControlReply::err("io", e.what());
  }
}

ControlReply LiveDatapath::control_stats() {
  live_stats_.frames = source_->frames_received();
  live_stats_.frame_bytes = source_->bytes_received();
  live_stats_.malformed = source_->malformed_inputs();
  const SimTime at = saw_packet_ ? last_packet_time_ : SimTime::origin();
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"source\":\"%s\",\"frames\":%llu,\"frame_bytes\":%llu,"
      "\"packets\":%llu,\"forwarded\":%llu,\"dropped\":%llu,"
      "\"ignored\":%llu,\"decode_errors\":%llu,\"malformed\":%llu,"
      "\"batches\":%llu,\"ticks\":%llu,\"uplink_bps\":%g}",
      source_->name().c_str(),
      static_cast<unsigned long long>(live_stats_.frames),
      static_cast<unsigned long long>(live_stats_.frame_bytes),
      static_cast<unsigned long long>(live_stats_.packets),
      static_cast<unsigned long long>(live_stats_.forwarded),
      static_cast<unsigned long long>(live_stats_.dropped),
      static_cast<unsigned long long>(live_stats_.ignored),
      static_cast<unsigned long long>(live_stats_.decode_errors),
      static_cast<unsigned long long>(live_stats_.malformed),
      static_cast<unsigned long long>(live_stats_.batches),
      static_cast<unsigned long long>(live_stats_.ticks),
      router_->uplink_bits_per_sec(at));
  return ControlReply::good(buf);
}

ControlReply LiveDatapath::control_stats_tenants() {
  // Capability-gated like `set dt`/`snapshot`: the declared backend
  // capability decides, so the answer matches the registry's contract
  // even if the running filter type were to change.
  if (spec_.backend == nullptr || !spec_.backend->has(kCapTenancy)) {
    return ControlReply::err(
        "capability:tenancy",
        "filter '" + std::string{spec_.backend != nullptr
                                     ? spec_.backend->name
                                     : "?"} +
            "' has no tenant table (" + names_with_cap(kCapTenancy) + ")");
  }
  const auto* hier =
      dynamic_cast<const HierarchicalFilter*>(&router_->filter());
  if (hier == nullptr) {
    return ControlReply::err("capability:tenancy",
                             "filter has no tenant table");
  }
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "{\"tenants\":%zu,\"fine_live\":%zu,\"fine_instantiations\":%llu,"
      "\"fine_evictions\":%llu,\"front_absorbed\":%llu,"
      "\"digest_admits\":%llu,\"digest_epoch\":%llu}",
      hier->tenant_count(), hier->live_fine_filters(),
      static_cast<unsigned long long>(hier->fine_instantiations()),
      static_cast<unsigned long long>(hier->fine_evictions()),
      static_cast<unsigned long long>(hier->front_absorbed()),
      static_cast<unsigned long long>(hier->digest_admits()),
      static_cast<unsigned long long>(
          hier->digests_enabled() ? hier->digest_epoch() : 0));
  return ControlReply::good(buf);
}

void LiveDatapath::control_quit() { drain_and_stop(); }

}  // namespace upbound::live
