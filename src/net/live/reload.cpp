#include "net/live/reload.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <stdexcept>

namespace upbound::live {

namespace {

[[noreturn]] void bad_line(const std::string& path, std::size_t lineno,
                           const std::string& why) {
  throw std::invalid_argument(path + ":" + std::to_string(lineno) + ": " +
                              why);
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' ||
                   s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

double parse_watermark(const std::string& path, std::size_t lineno,
                       const std::string& key, const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const double bps = std::strtod(value.c_str(), &end);
  if (errno != 0 || end != value.c_str() + value.size() || !(bps > 0.0)) {
    bad_line(path, lineno,
             key + " must be a positive bits/sec number, got '" + value +
                 "'");
  }
  return bps;
}

}  // namespace

ReloadConfig parse_reload_config(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("cannot read reload config '" + path +
                             "': " + std::strerror(errno));
  }
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    throw std::runtime_error("cannot read reload config '" + path + "'");
  }

  ReloadConfig config;
  bool any_filter_args = false;
  std::size_t first_arg_line = 0;
  std::set<std::string> seen;
  std::size_t lineno = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string raw = text.substr(
        pos, nl == std::string::npos ? std::string::npos : nl - pos);
    pos = nl == std::string::npos ? text.size() + 1 : nl + 1;
    ++lineno;

    std::string line = raw;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t sp = line.find_first_of(" \t");
    const std::string key =
        sp == std::string::npos ? line : trim(line.substr(0, sp));
    const std::string value =
        sp == std::string::npos ? "" : trim(line.substr(sp));
    if (!seen.insert(key).second) {
      bad_line(path, lineno, "duplicate key '" + key + "'");
    }

    if (key == "filter") {
      if (value.empty()) bad_line(path, lineno, "filter needs a backend");
      config.has_filter = true;
      config.filter_kind = value;
    } else if (key == "low") {
      config.policy_low = parse_watermark(path, lineno, key, value);
    } else if (key == "high") {
      config.policy_high = parse_watermark(path, lineno, key, value);
    } else if (value.empty()) {
      config.filter_args.set_flag(key);
      if (!any_filter_args) first_arg_line = lineno;
      any_filter_args = true;
    } else {
      config.filter_args.set(key, value);
      if (!any_filter_args) first_arg_line = lineno;
      any_filter_args = true;
    }
  }
  if (any_filter_args && !config.has_filter) {
    // Geometry keys without a backend would be dropped on the floor; a
    // typo'd "filter" line must not silently reload nothing.
    bad_line(path, first_arg_line,
             "filter arguments given without a 'filter <backend>' line");
  }
  if (!config.has_filter && !config.policy_low.has_value() &&
      !config.policy_high.has_value()) {
    throw std::invalid_argument(
        path + ": reload config changes nothing (no filter/low/high)");
  }
  return config;
}

}  // namespace upbound::live
