// AF_PACKET capture with a TPACKET_V3 mmap ring: the deployment backend.
// The kernel writes blocks of frames straight into shared memory; drain()
// walks user-owned blocks without a syscall per frame and hands each
// block back once consumed. Requires CAP_NET_RAW (construction throws
// std::system_error with EPERM unprivileged -- the tap backend is the
// unprivileged path).
//
// Frames are stamped from the datapath clock, one read per drain: the
// router needs a single monotone timeline shared with the tick timer,
// and kernel capture timestamps live in a different epoch.
#pragma once

#include <cstdint>
#include <string>

#include "net/live/capture.h"
#include "util/clock.h"

namespace upbound::live {

class AfPacketSource final : public CaptureSource {
 public:
  struct Config {
    std::string interface;  // e.g. "eth0"; must be non-empty
    Clock* clock = nullptr;  // required
    /// Ring geometry: block_count blocks of block_size bytes. Defaults
    /// give a 16 MB ring -- ~32 ms of buffering at 4 Gbit/s.
    std::uint32_t block_size = 1u << 20;
    std::uint32_t block_count = 16;
    std::uint32_t frame_size = 2048;
    /// Kernel retires a partially filled block after this timeout, so
    /// trickle traffic is not held hostage by block granularity.
    std::uint32_t block_timeout_ms = 10;
  };

  explicit AfPacketSource(const Config& config);
  ~AfPacketSource() override;
  AfPacketSource(const AfPacketSource&) = delete;
  AfPacketSource& operator=(const AfPacketSource&) = delete;

  int fd() const override { return fd_; }
  std::size_t drain(std::size_t max_frames, const FrameSink& sink) override;
  std::string name() const override { return "af-packet:" + config_.interface; }
  std::uint64_t frames_received() const override { return frames_; }
  std::uint64_t bytes_received() const override { return bytes_; }

  int error() const override { return error_; }
  /// Rebuilds socket + ring on the same interface (the interface must
  /// exist again, e.g. after a NIC bounce). Frames the kernel dropped or
  /// that sat unconsumed in the dead ring are unrecoverable; kernel drops
  /// are folded into frames_lost().
  int reattach() override;
  /// Kernel ring drops (PACKET_STATISTICS), accumulated across drains
  /// and reattach cycles.
  std::uint64_t frames_lost() const override { return lost_; }
  void inject_failure() override;

 private:
  /// Creates the socket, configures the TPACKET_V3 ring, mmaps it, binds
  /// the interface. Commits fd_/ring_ only on success.
  void setup();
  /// Unmaps the ring and closes the fd; resets the block cursor.
  void teardown();
  /// Drains the kernel's PACKET_STATISTICS drop counter into lost_
  /// (the getsockopt read resets it).
  void collect_kernel_drops();

  Config config_;
  int fd_ = -1;
  int error_ = 0;
  std::uint8_t* ring_ = nullptr;
  std::size_t ring_bytes_ = 0;

  // Resumable cursor: mid-block position survives a drain() that hit
  // max_frames, so a small batch limit never skips frames.
  std::uint32_t block_index_ = 0;
  std::uint32_t frames_left_in_block_ = 0;
  const std::uint8_t* next_frame_ = nullptr;

  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t lost_ = 0;
};

}  // namespace upbound::live
