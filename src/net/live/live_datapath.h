// The live datapath: a capture source, the unmodified EdgeRouter staged
// pipeline, and the runtime control surface, all driven by one epoll
// event loop. Frames drain in batches, decode into a reused PacketRecord
// ring (allocation-free steady state), and flow through the exact same
// process_batch/account_replay_batch seam offline replay uses -- which is
// what makes live-vs-offline conformance a byte-identity check rather
// than a tolerance test.
//
// Time has two sources: packet timestamps drive the router exactly as in
// replay, and a periodic tick advances the router clock from the
// pluggable Clock between packets (rotations fire, metered traffic ages
// out). The conformance harness pins a VirtualClock to the replayed
// timeline so ticks are no-ops and the live run is observably identical
// to offline replay.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "fault/fault_injector.h"
#include "filter/filter_registry.h"
#include "net/headers.h"
#include "net/live/capture.h"
#include "net/live/checkpointer.h"
#include "net/live/control.h"
#include "net/live/event_loop.h"
#include "sim/replay.h"
#include "util/backoff.h"
#include "util/clock.h"
#include "util/metrics_export.h"

namespace upbound::live {

struct LiveConfig {
  EdgeRouterConfig router;

  /// Eq. 1 policy: RED between low/high, or a constant P_d.
  bool policy_red = true;
  double policy_low = 50e6;
  double policy_high = 100e6;
  double policy_pd = 1.0;

  /// Largest batch handed to the router (mirrors replay's 256).
  std::size_t batch_max = 256;
  /// Tick timer period (rotation/metrics cadence between packets).
  Duration tick = Duration::msec(100.0);
  /// Time source for ticks and on-receive stamping. Required.
  Clock* clock = nullptr;

  /// Stop conditions; zero disables each. run_duration is measured on
  /// `clock` from construction.
  Duration run_duration{};
  std::uint64_t max_packets = 0;

  /// Telemetry export (mirrors the offline --metrics-* flags).
  std::string metrics_out;
  Duration metrics_interval{};  // zero = final snapshot only
  bool metrics_deterministic = false;
  bool metrics_prometheus = false;

  /// Capture-source supervision: when the source's fd dies (ENETDOWN,
  /// ring death, EPOLLERR) the datapath detaches it and retries
  /// reattach() under bounded exponential backoff instead of exiting.
  Duration capture_retry_initial = Duration::msec(10);
  Duration capture_retry_max = Duration::sec(2.0);
  /// Consecutive failed reattach attempts before the daemon gives up and
  /// drains; 0 = retry forever.
  std::uint64_t capture_retry_limit = 0;

  /// Periodic crash-consistent checkpointing (empty dir = off; requires
  /// a kCapSnapshot backend).
  std::string checkpoint_dir;
  Duration checkpoint_interval = Duration::sec(5.0);
  std::size_t checkpoint_keep = 4;

  /// Daemon-plane fault injection (capture.kill / capture.stall /
  /// checkpoint.corrupt); owned by the caller, may be null.
  FaultInjector* faults = nullptr;
};

struct LiveStats {
  std::uint64_t frames = 0;        // frames delivered by the source
  std::uint64_t frame_bytes = 0;   // their payload bytes
  std::uint64_t decode_errors = 0; // frames that failed Ethernet/IP decode
  std::uint64_t malformed = 0;     // source-level runts (tap envelope)
  std::uint64_t packets = 0;       // decoded packets processed
  std::uint64_t batches = 0;       // router batches
  std::uint64_t forwarded = 0;     // pass verdicts
  std::uint64_t dropped = 0;       // drop verdicts
  std::uint64_t ignored = 0;       // local/transit verdicts
  std::uint64_t ticks = 0;         // tick-timer expirations observed

  // Robustness-layer accounting.
  std::uint64_t capture_failures = 0;    // fatal source errors observed
  std::uint64_t capture_reattach_attempts = 0;
  std::uint64_t capture_reattaches = 0;  // fd successfully re-registered
  std::uint64_t frames_lost = 0;         // source-reported input loss
  std::uint64_t capture_gap_usec = 0;    // cumulative detached wall time
  std::uint64_t metrics_export_errors = 0;  // failed interval exports
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoint_errors = 0;   // failed checkpoint writes
};

/// Strips the batch-shape-dependent histograms (batch.packets,
/// run.packets) from a snapshot. They are deterministic but depend on
/// how arrivals coalesce into batches, which is the one thing a live run
/// legitimately does differently from offline replay; everything else in
/// the deterministic subset must match byte-for-byte.
MetricsSnapshot strip_batch_shape(const MetricsSnapshot& snapshot);

/// The canonical conformance report: deterministic subset, batch-shape
/// stripped, serialized with the stable JSON encoder. Two runs that
/// processed the same packets identically produce identical strings.
std::string conformance_report(const ReplayResult& result, SimTime end_time);

class LiveDatapath final : public ControlApi {
 public:
  /// Registers the capture fd and the tick timer with `loop`; the loop
  /// must outlive the datapath.
  LiveDatapath(LiveConfig config, FilterSpec spec,
               std::unique_ptr<CaptureSource> source, EventLoop& loop);
  ~LiveDatapath() override;

  /// Arms the control socket at `path`. `idle_timeout` is forwarded to
  /// the ControlServer's mid-line idle sweep.
  void enable_control(const std::string& path,
                      Duration idle_timeout = Duration::sec(30.0));

  /// Restores the newest valid checkpoint generation from `dir` into the
  /// running router: filter state, drop-policy watermarks, and rotation
  /// cadence. Generations that fail to decode, CRC-check, restore, or
  /// whose geometry disagrees with the configured filter spec are skipped
  /// with typed reasons (result.skipped); the restore succeeds iff any
  /// generation survives. `now` enables the T_e staleness check --
  /// in-process restarts on a shared timeline pass the current sim time,
  /// cross-process restarts pass nullopt (monotonic epochs are not
  /// comparable between runs). Call before traffic flows.
  CheckpointRestore restore_checkpoint_dir(
      const std::string& dir, std::optional<SimTime> now = std::nullopt);

  /// SIGHUP entry point: applies the reload file like the control
  /// socket's `reload` verb and returns the same typed reply.
  ControlReply reload_from_file(const std::string& path) {
    return control_reload(path);
  }

  /// Per-verdict hook (e.g. writing forwarded packets to a pcap).
  void set_verdict_sink(
      std::function<void(const PacketRecord&, RouterDecision)> sink) {
    verdict_sink_ = std::move(sink);
  }

  /// Drains everything still buffered in the source, processes it, and
  /// stops the loop. Signal handlers and `quit` route here: shutdown
  /// loses no accepted frame (the conservation check in the harness).
  void drain_and_stop();

  /// Drains + snapshots final stats/metrics into result(); writes the
  /// final metrics export. Idempotent; called by drain_and_stop.
  void finalize();

  const ReplayResult& result() const { return result_; }
  const LiveStats& stats() const { return live_stats_; }
  /// False when the final metrics export could not be written (also
  /// warned on stderr); lets callers avoid reporting a file that does
  /// not exist.
  bool metrics_export_ok() const { return !metrics_export_failed_; }
  EdgeRouter& router() { return *router_; }
  const FilterSpec& spec() const { return spec_; }
  CaptureSource& source() { return *source_; }
  const ControlServer* control() const { return control_.get(); }
  SimTime last_packet_time() const { return last_packet_time_; }
  /// False while the capture fd is detached (failure -> backoff window).
  bool capture_attached() const { return capture_attached_; }
  const Checkpointer* checkpointer() const { return checkpointer_.get(); }

  // ControlApi:
  ControlReply control_set_threshold(bool is_low, double bps) override;
  ControlReply control_set_rotate_interval(Duration dt) override;
  ControlReply control_set_unhealthy_stance(UnhealthyStance s) override;
  ControlReply control_snapshot(const std::string& path) override;
  ControlReply control_reload(const std::string& path) override;
  ControlReply control_checkpoint() override;
  ControlReply control_stats() override;
  ControlReply control_stats_tenants() override;
  void control_quit() override;

 private:
  void on_capture_readable();
  void on_tick(std::uint64_t expirations);
  /// Decodes one frame into the reused batch ring.
  void ingest_frame(std::span<const std::uint8_t> frame, SimTime ts);
  /// Runs the pending batch through the router + replay accounting.
  void process_pending();
  void maybe_emit_interval_metrics();
  void check_stop_conditions();

  // Capture supervision.
  /// Detaches the dead capture fd, flips the router's health stance into
  /// the outage, and schedules the first backoff reattach attempt.
  void handle_capture_failure();
  void try_reattach();
  void schedule_reattach();
  /// Re-registers `capture_fd_` with the loop and clears the outage.
  void attach_capture();
  /// Fires armed daemon-plane faults (capture.kill / capture.stall)
  /// against the source's delivered-frame count.
  void run_capture_faults();
  /// Deterministic outage: detach for `window`, then re-register the
  /// same fd (no socket death involved).
  void stall_capture(Duration window);

  // Checkpointing.
  /// StateProvider body: quiesces and snapshots the bitmap filter.
  std::vector<std::uint8_t> checkpoint_state(CheckpointMeta& meta);
  /// Timer body: one checkpoint, errors counted + warned, never fatal.
  void write_checkpoint_now();
  /// Appends checkpoint.staleness_usec / checkpoint.generations gauges
  /// when checkpointing is armed (off = snapshot untouched, preserving
  /// conformance byte-identity).
  void append_robustness_gauges(MetricsSnapshot& snap, SimTime now) const;

  LiveConfig config_;
  FilterSpec spec_;
  std::unique_ptr<CaptureSource> source_;
  EventLoop& loop_;
  std::unique_ptr<EdgeRouter> router_;
  ReplayResult result_;
  LiveStats live_stats_;
  std::unique_ptr<ControlServer> control_;
  std::function<void(const PacketRecord&, RouterDecision)> verdict_sink_;

  // Reused batch ring: pending_[0..pending_count_) are decoded packets
  // awaiting the router. Payload vectors keep their capacity across
  // reuse, so the steady-state frame path performs no allocations.
  std::vector<PacketRecord> pending_;
  std::size_t pending_count_ = 0;
  DecodedFrame decode_scratch_;
  std::vector<RouterDecision> decisions_;
  FrameSink sink_;

  double policy_low_ = 0;
  double policy_high_ = 0;

  SimTime start_time_;
  SimTime last_packet_time_;
  bool saw_packet_ = false;
  bool metrics_export_failed_ = false;

  std::unique_ptr<MetricsJsonlWriter> metrics_writer_;
  SimTime next_metrics_emit_;
  int tick_fd_ = -1;
  bool finalized_ = false;

  // Capture supervision state.
  int capture_fd_ = -1;
  bool capture_attached_ = false;
  SimTime capture_down_since_;
  RetryDelay capture_retry_;
  std::uint64_t consecutive_reattach_failures_ = 0;
  /// Pending backoff / stall one-shot timer fd (-1 = none); removed in
  /// the destructor so no callback outlives the datapath.
  int pending_oneshot_fd_ = -1;

  std::unique_ptr<Checkpointer> checkpointer_;
  int checkpoint_fd_ = -1;
};

}  // namespace upbound::live
