#include "net/five_tuple.h"

#include <cstdio>
#include <tuple>

#include "util/hash.h"

namespace upbound {

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kTcp: return "TCP";
    case Protocol::kUdp: return "UDP";
  }
  return "?";
}

FiveTuple FiveTuple::canonical() const {
  const auto src = std::make_tuple(src_addr.value(), src_port);
  const auto dst = std::make_tuple(dst_addr.value(), dst_port);
  return src <= dst ? *this : inverse();
}

std::string FiveTuple::to_string() const {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%s %s:%u -> %s:%u", protocol_name(protocol),
                src_addr.to_string().c_str(), src_port,
                dst_addr.to_string().c_str(), dst_port);
  return buf;
}

void encode_tuple_key(const FiveTuple& t,
                      std::span<std::uint8_t, kTupleKeySize> out) {
  out[0] = static_cast<std::uint8_t>(t.protocol);
  const std::uint32_t s = t.src_addr.value();
  const std::uint32_t d = t.dst_addr.value();
  out[1] = static_cast<std::uint8_t>(s >> 24);
  out[2] = static_cast<std::uint8_t>(s >> 16);
  out[3] = static_cast<std::uint8_t>(s >> 8);
  out[4] = static_cast<std::uint8_t>(s);
  out[5] = static_cast<std::uint8_t>(t.src_port >> 8);
  out[6] = static_cast<std::uint8_t>(t.src_port);
  out[7] = static_cast<std::uint8_t>(d >> 24);
  out[8] = static_cast<std::uint8_t>(d >> 16);
  out[9] = static_cast<std::uint8_t>(d >> 8);
  out[10] = static_cast<std::uint8_t>(d);
  out[11] = static_cast<std::uint8_t>(t.dst_port >> 8);
  out[12] = static_cast<std::uint8_t>(t.dst_port);
}

std::uint64_t tuple_hash(const FiveTuple& t, std::uint64_t seed) {
  std::uint8_t key[kTupleKeySize];
  encode_tuple_key(t, std::span<std::uint8_t, kTupleKeySize>{key});
  return murmur3_x64_128(std::span<const std::uint8_t>{key, sizeof(key)}, seed)
      .lo;
}

}  // namespace upbound
