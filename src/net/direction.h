// Inbound/outbound classification relative to a client network (paper
// Fig. 1): a packet whose source lies inside the network's prefixes is
// outbound; one whose destination lies inside is inbound.
#pragma once

#include <string>
#include <vector>

#include "net/five_tuple.h"
#include "net/ip.h"
#include "net/packet.h"

namespace upbound {

enum class Direction {
  kOutbound,  // sent from the client network toward the Internet
  kInbound,   // received by the client network
  kLocal,     // both endpoints internal (never crosses the filter)
  kTransit,   // neither endpoint internal (should not reach an edge filter)
};

const char* direction_name(Direction d);

/// The set of prefixes that make up one client network.
class ClientNetwork {
 public:
  ClientNetwork() = default;
  explicit ClientNetwork(std::vector<Cidr> prefixes);

  void add_prefix(Cidr prefix) { prefixes_.push_back(prefix); }

  bool is_internal(Ipv4Addr addr) const;

  Direction classify(const FiveTuple& tuple) const;
  Direction classify(const PacketRecord& pkt) const {
    return classify(pkt.tuple);
  }

  const std::vector<Cidr>& prefixes() const { return prefixes_; }

  std::string to_string() const;

 private:
  std::vector<Cidr> prefixes_;
};

}  // namespace upbound
