// Wire-format codecs for Ethernet II / IPv4 / TCP / UDP frames, plus the
// Internet checksum. These give the pcap reader/writer real, verifiable
// frames -- traces written by this library parse under tcpdump/wireshark,
// and real captures replay through the pipeline.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.h"

namespace upbound {

/// RFC 1071 Internet checksum over `data` (16-bit one's-complement sum).
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// Encodes `pkt` as a complete Ethernet frame. Payload bytes beyond the
/// captured prefix are zero-filled up to payload_size so IP total lengths
/// stay truthful. MAC addresses are synthesized from the IP addresses.
std::vector<std::uint8_t> encode_frame(const PacketRecord& pkt);

/// Outcome of decoding one captured frame.
struct DecodedFrame {
  PacketRecord packet;
  bool ip_checksum_ok = false;
  bool l4_checksum_ok = false;
};

/// Decodes an Ethernet frame captured with `orig_len` original bytes (the
/// capture may be truncated; payload_size is recovered from the IP header).
/// Returns nullopt for non-IPv4 or non-TCP/UDP frames and malformed headers.
std::optional<DecodedFrame> decode_frame(std::span<const std::uint8_t> frame,
                                         SimTime timestamp);

/// decode_frame into a caller-owned DecodedFrame, reusing its packet's
/// payload capacity -- the live datapath's steady state decodes every
/// frame without allocating. Every field of `out` is (re)assigned; on
/// false `out` is unspecified. Same acceptance as decode_frame.
bool decode_frame_into(std::span<const std::uint8_t> frame, SimTime timestamp,
                       DecodedFrame& out);

}  // namespace upbound
