// Application protocol labels shared by the workload generator (ground
// truth) and the traffic analyzer (classification output). The set mirrors
// paper Table 2's rows.
#pragma once

#include <array>
#include <string>

namespace upbound {

enum class AppProtocol {
  kHttp,        // HTTP / HTTP-proxy
  kFtp,         // FTP control + data
  kDns,         // DNS over UDP
  kBitTorrent,
  kEdonkey,
  kGnutella,
  kOther,       // identified, non-P2P, not individually tracked (SMTP, ...)
  kUnknown,     // unidentified (encrypted / proprietary P2P in the paper)
};

inline constexpr std::array kAllAppProtocols = {
    AppProtocol::kHttp,     AppProtocol::kFtp,     AppProtocol::kDns,
    AppProtocol::kBitTorrent, AppProtocol::kEdonkey, AppProtocol::kGnutella,
    AppProtocol::kOther,    AppProtocol::kUnknown,
};

const char* app_protocol_name(AppProtocol app);

/// True for the three P2P protocols (paper's "P2P" port class).
constexpr bool is_p2p(AppProtocol app) {
  return app == AppProtocol::kBitTorrent || app == AppProtocol::kEdonkey ||
         app == AppProtocol::kGnutella;
}

}  // namespace upbound
