#include "tenant/hierarchical_filter.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "filter/filter_registry.h"
#include "sim/tenant_scenarios.h"

namespace upbound {
namespace {

TenantScenarioConfig small_scenario() {
  TenantScenarioConfig config;
  config.tenants = 5;
  config.duration = Duration::sec(30.0);
  config.seed = 11;
  config.exchanges_per_sec = 3.0;
  config.unsolicited_prob = 0.3;
  config.flash_tenant_multiple = 1.0;
  return config;
}

MapFilterArgs fine_args(const std::string& backend) {
  MapFilterArgs margs;
  margs.set("bits", "12");
  margs.set("k", "4");
  margs.set("m", "3");
  margs.set("dt", "2.0");
  if (backend == "spi") {
    margs.set("timeout", "240");
  } else if (backend == "naive") {
    margs.set("timeout", "8.0");  // the bitmap design's k*dt expiry
  }
  return margs;
}

/// Replays a tenant scenario through the hierarchical wrap of `backend`
/// and a flat one-filter-per-tenant oracle of the same spec, asserting
/// verdict equality on every inbound packet.
void run_differential(const std::string& backend_name) {
  const TenantScenarioTrace trace =
      generate_tenant_scenario(TenantScenarioKind::kFlashCrowd,
                               small_scenario());
  const FilterRegistry& registry = FilterRegistry::instance();
  const BackendDescriptor& backend = registry.at(backend_name);

  const FilterSpec fine = backend.parse(fine_args(backend_name));
  MapFilterArgs hier_args = fine_args(backend_name);
  hier_args.set("fine", backend_name);
  hier_args.set("tenant-cap", "100000");  // exactness needs no evictions
  const FilterSpec hier_spec = registry.at("hierarchical").parse(hier_args);
  const std::unique_ptr<StateFilter> hier = make_state_filter(hier_spec);

  const TenantTable table{TenantTableConfig{TenantMode::kPerSubscriber}};
  std::map<TenantId, std::unique_ptr<StateFilter>> oracle;
  const auto oracle_for = [&](TenantId tenant) -> StateFilter& {
    auto& slot = oracle[tenant];
    if (slot == nullptr) slot = make_state_filter(fine);
    return *slot;
  };

  std::size_t inbound_checked = 0;
  for (std::size_t i = 0; i < trace.packets.size(); ++i) {
    const PacketRecord& pkt = trace.packets[i];
    const Direction dir = trace.network.classify(pkt);
    if (dir == Direction::kOutbound) {
      hier->advance_time(pkt.timestamp);
      hier->record_outbound(pkt);
      StateFilter& fine_filter = oracle_for(table.tenant_of_outbound(pkt.tuple));
      fine_filter.advance_time(pkt.timestamp);
      fine_filter.record_outbound(pkt);
      continue;
    }
    ASSERT_EQ(dir, Direction::kInbound);
    hier->advance_time(pkt.timestamp);
    const bool hier_admits = hier->admits_inbound(pkt);
    StateFilter& fine_filter = oracle_for(table.tenant_of_inbound(pkt.tuple));
    fine_filter.advance_time(pkt.timestamp);
    const bool oracle_admits = fine_filter.admits_inbound(pkt);
    ASSERT_EQ(hier_admits, oracle_admits)
        << "backend " << backend_name << " diverged from the flat oracle "
        << "at packet " << i << " (tenant "
        << table.label(table.tenant_of_inbound(pkt.tuple)) << ")";
    ++inbound_checked;
  }
  EXPECT_GT(inbound_checked, 100u) << "scenario produced too few inbounds";
}

TEST(HierarchicalDifferential, MatchesFlatOracleForEveryFineBackend) {
  for (const BackendDescriptor& backend :
       FilterRegistry::instance().descriptors()) {
    if (backend.name == "hierarchical") continue;  // cannot nest
    SCOPED_TRACE(backend.name);
    run_differential(backend.name);
  }
}

HierarchicalFilterConfig config_for(const std::string& fine_backend,
                                    std::size_t cap) {
  MapFilterArgs margs = fine_args(fine_backend);
  margs.set("fine", fine_backend);
  margs.set("tenant-cap", std::to_string(cap));
  const FilterSpec spec =
      FilterRegistry::instance().at("hierarchical").parse(margs);
  return spec.config_as<HierarchicalFilterConfig>();
}

PacketRecord udp(const FiveTuple& tuple, double t_sec,
                 std::uint32_t payload = 100) {
  PacketRecord pkt;
  pkt.timestamp = SimTime::from_sec(t_sec);
  pkt.tuple = tuple;
  pkt.payload_size = payload;
  return pkt;
}

FiveTuple client_conn(std::uint8_t host, std::uint16_t sport) {
  return FiveTuple{Protocol::kUdp, Ipv4Addr{10, 40, 0, host}, sport,
                   Ipv4Addr{198, 18, 0, 1}, 6881};
}

TEST(HierarchicalFilter, LruCapEvictsLeastRecentTenant) {
  HierarchicalFilter hier{config_for("bitmap", 2)};
  for (std::uint8_t host = 2; host < 8; ++host) {
    hier.advance_time(SimTime::from_sec(host * 0.1));
    hier.record_outbound(udp(client_conn(host, 4000), host * 0.1));
  }
  EXPECT_EQ(hier.tenant_count(), 6u);
  EXPECT_LE(hier.live_fine_filters(), 2u);
  EXPECT_EQ(hier.fine_instantiations(), 6u);
  EXPECT_EQ(hier.fine_evictions(), 4u);

  // The most recent tenants keep their state; an evicted tenant lost its
  // marks (the counted false-negative source).
  hier.advance_time(SimTime::from_sec(1.0));
  EXPECT_TRUE(hier.admits_inbound(udp(client_conn(7, 4000).inverse(), 1.0)));
  EXPECT_FALSE(hier.admits_inbound(udp(client_conn(2, 4000).inverse(), 1.0)));
}

TEST(HierarchicalFilter, FrontAbsorbsUnsolicitedWithoutInstantiating) {
  HierarchicalFilter hier{config_for("bitmap", 64)};
  ASSERT_TRUE(hier.front_short_circuit());
  for (std::uint8_t host = 2; host < 12; ++host) {
    hier.advance_time(SimTime::from_sec(host * 0.01));
    EXPECT_FALSE(
        hier.admits_inbound(udp(client_conn(host, 5000).inverse(),
                                host * 0.01)));
  }
  // All ten probes died on the shared front tier: no fine filter was ever
  // built for tenants that only ever receive unsolicited traffic.
  EXPECT_EQ(hier.live_fine_filters(), 0u);
  EXPECT_EQ(hier.fine_instantiations(), 0u);
  EXPECT_EQ(hier.front_absorbed(), 10u);
}

TEST(HierarchicalFilter, ImpureFineTierDisablesTheShortCircuit) {
  HierarchicalFilter hier{config_for("spi", 64)};
  EXPECT_FALSE(hier.front_short_circuit());
  // Verdicts still work; the fine tier alone decides.
  hier.advance_time(SimTime::from_sec(0.0));
  hier.record_outbound(udp(client_conn(2, 4000), 0.0));
  hier.advance_time(SimTime::from_sec(0.1));
  EXPECT_TRUE(hier.admits_inbound(udp(client_conn(2, 4000).inverse(), 0.1)));
}

TEST(HierarchicalFilter, DigestRoamsStateBetweenRouters) {
  const HierarchicalFilterConfig config = config_for("bitmap", 64);
  ASSERT_TRUE(config.digest.has_value());
  HierarchicalFilter router_a{config};
  HierarchicalFilter router_b{config};

  const FiveTuple conn = client_conn(2, 4100);
  router_a.advance_time(SimTime::from_sec(0.0));
  router_a.record_outbound(udp(conn, 0.0));
  router_b.advance_time(SimTime::from_sec(0.1));

  // Without the exchange, router B denies the roamed client's response.
  EXPECT_FALSE(router_b.admits_inbound(udp(conn.inverse(), 0.1)));

  const TenantTable table{config.table};
  const TenantId tenant = table.tenant_of_outbound(conn);
  const std::optional<StateDigest> digest = router_a.local_digest(tenant);
  ASSERT_TRUE(digest.has_value());
  ASSERT_EQ(router_b.apply_digest(*digest), DigestError::kNone);

  router_b.advance_time(SimTime::from_sec(0.2));
  EXPECT_TRUE(router_b.admits_inbound(udp(conn.inverse(), 0.2)));
  EXPECT_EQ(router_b.digest_admits(), 1u);
}

TEST(HierarchicalFilter, CombinedDigestsConvergeByteIdentically) {
  const HierarchicalFilterConfig config = config_for("bitmap", 64);
  HierarchicalFilter router_a{config};
  HierarchicalFilter router_b{config};
  router_a.advance_time(SimTime::from_sec(0.0));
  router_b.advance_time(SimTime::from_sec(0.0));
  router_a.record_outbound(udp(client_conn(2, 4000), 0.0));
  router_b.record_outbound(udp(client_conn(2, 4001), 0.0));

  const TenantTable table{config.table};
  const TenantId tenant = table.tenant_of(Ipv4Addr{10, 40, 0, 2});
  ASSERT_EQ(router_a.apply_digest(*router_b.local_digest(tenant)),
            DigestError::kNone);
  ASSERT_EQ(router_b.apply_digest(*router_a.local_digest(tenant)),
            DigestError::kNone);

  const std::optional<StateDigest> from_a = router_a.combined_digest(tenant);
  const std::optional<StateDigest> from_b = router_b.combined_digest(tenant);
  ASSERT_TRUE(from_a.has_value());
  ASSERT_TRUE(from_b.has_value());
  EXPECT_EQ(from_a->serialize(), from_b->serialize());
}

TEST(HierarchicalFilter, StaleDigestEpochIsRejected) {
  const HierarchicalFilterConfig config = config_for("bitmap", 64);
  HierarchicalFilter router{config};
  // Advance well past several digest epochs, then offer an epoch-0 digest.
  router.advance_time(SimTime::from_sec(10.0 * config.fine_window.to_sec()));
  StateDigest ancient{TenantTable{config.table}.tenant_of(
                          Ipv4Addr{10, 40, 0, 2}),
                      0, *config.digest};
  EXPECT_EQ(router.apply_digest(ancient), DigestError::kEpochMismatch);
}

TEST(HierarchicalFilter, RegistryDescriptorDeclaresTenancy) {
  const BackendDescriptor& backend =
      FilterRegistry::instance().at("hierarchical");
  EXPECT_TRUE(backend.has(kCapTenancy));
  EXPECT_TRUE(backend.has(kCapOccupancy));
  // Exactly one backend carries the tenancy capability.
  int tenancy_backends = 0;
  for (const BackendDescriptor& d :
       FilterRegistry::instance().descriptors()) {
    if (d.has(kCapTenancy)) ++tenancy_backends;
  }
  EXPECT_EQ(tenancy_backends, 1);
}

}  // namespace
}  // namespace upbound
