// End-to-end calibration checks: the generated campus trace must reproduce
// the aggregates the paper reports for its capture (Section 3.3, Table 2).
#include "trace/campus.h"

#include <gtest/gtest.h>

#include <map>

namespace upbound {
namespace {

CampusTraceConfig small_config() {
  CampusTraceConfig config;
  config.duration = Duration::sec(30.0);
  config.connections_per_sec = 80.0;
  config.bandwidth_bps = 10e6;
  config.seed = 20260706;
  return config;
}

class CampusTraceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new GeneratedTrace(generate_campus_trace(small_config()));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }

  static GeneratedTrace* trace_;
};

GeneratedTrace* CampusTraceTest::trace_ = nullptr;

TEST_F(CampusTraceTest, TraceIsTimeSorted) {
  EXPECT_TRUE(is_time_sorted(trace_->packets));
}

TEST_F(CampusTraceTest, ConnectionCountNearTarget) {
  const double target = 30.0 * 80.0;
  EXPECT_NEAR(static_cast<double>(trace_->connection_count), target,
              target * 0.25);
}

TEST_F(CampusTraceTest, EveryPacketCrossesTheEdge) {
  for (const auto& pkt : trace_->packets) {
    const Direction dir = trace_->network.classify(pkt);
    ASSERT_TRUE(dir == Direction::kOutbound || dir == Direction::kInbound)
        << pkt.to_string();
  }
}

TEST_F(CampusTraceTest, GroundTruthCoversEveryConnection) {
  for (const auto& pkt : trace_->packets) {
    ASSERT_TRUE(trace_->truth.contains(pkt.tuple.canonical()))
        << pkt.to_string();
  }
  EXPECT_EQ(trace_->truth.size(), trace_->connection_count);
}

TEST_F(CampusTraceTest, ConnectionMixTracksTable2) {
  std::map<AppProtocol, std::size_t> counts;
  for (const auto& [tuple, app] : trace_->truth) ++counts[app];
  const double total = static_cast<double>(trace_->truth.size());

  const auto fraction = [&](AppProtocol app) {
    return static_cast<double>(counts[app]) / total;
  };
  // Bands are generous: small trace, stochastic session sizes.
  EXPECT_NEAR(fraction(AppProtocol::kBitTorrent), 0.479, 0.08);
  EXPECT_NEAR(fraction(AppProtocol::kEdonkey), 0.220, 0.06);
  EXPECT_NEAR(fraction(AppProtocol::kGnutella), 0.0756, 0.04);
  EXPECT_NEAR(fraction(AppProtocol::kUnknown), 0.1755, 0.06);
  EXPECT_NEAR(fraction(AppProtocol::kHttp), 0.0217, 0.02);
}

TEST_F(CampusTraceTest, ByteMixTracksTable2Utilization) {
  std::map<AppProtocol, std::uint64_t> bytes;
  std::uint64_t total = 0;
  for (const auto& pkt : trace_->packets) {
    const auto it = trace_->truth.find(pkt.tuple.canonical());
    ASSERT_NE(it, trace_->truth.end());
    bytes[it->second] += pkt.wire_size();
    total += pkt.wire_size();
  }
  const auto fraction = [&](AppProtocol app) {
    return static_cast<double>(bytes[app]) / static_cast<double>(total);
  };
  EXPECT_NEAR(fraction(AppProtocol::kBitTorrent), 0.18, 0.08);
  EXPECT_NEAR(fraction(AppProtocol::kEdonkey), 0.21, 0.09);
  EXPECT_NEAR(fraction(AppProtocol::kGnutella), 0.16, 0.08);
  EXPECT_NEAR(fraction(AppProtocol::kUnknown), 0.35, 0.12);
  EXPECT_NEAR(fraction(AppProtocol::kHttp), 0.05, 0.04);
}

TEST_F(CampusTraceTest, UdpConnectionShareNearPaper) {
  // Paper: 70.1% of connections UDP. Our mixture lands near 68%.
  std::size_t udp = 0;
  for (const auto& [tuple, app] : trace_->truth) {
    if (tuple.protocol == Protocol::kUdp) ++udp;
  }
  const double share =
      static_cast<double>(udp) / static_cast<double>(trace_->truth.size());
  EXPECT_NEAR(share, 0.69, 0.06);
}

TEST_F(CampusTraceTest, TcpCarriesAlmostAllBytes) {
  // Paper: 99.5% of bytes on TCP.
  std::uint64_t tcp = 0, total = 0;
  for (const auto& pkt : trace_->packets) {
    total += pkt.wire_size();
    if (pkt.is_tcp()) tcp += pkt.wire_size();
  }
  EXPECT_GT(static_cast<double>(tcp) / static_cast<double>(total), 0.985);
}

TEST_F(CampusTraceTest, UploadDominatesLikePaper) {
  // Paper: 89.8% upload. Accept a band around it.
  const double up = static_cast<double>(trace_->outbound_bytes);
  const double down = static_cast<double>(trace_->inbound_bytes);
  const double share = up / (up + down);
  EXPECT_GT(share, 0.80);
  EXPECT_LT(share, 0.97);
}

TEST_F(CampusTraceTest, MostOutboundBytesRideInboundConnections) {
  // Paper: 80% of outbound traffic is sent along with inbound connections.
  // A connection counts as inbound-initiated when its first packet at the
  // edge flows inbound.
  std::unordered_map<FiveTuple, Direction, CanonicalTupleHash,
                     CanonicalTupleEq>
      first_dir;
  std::uint64_t outbound_on_inbound_conns = 0, outbound_total = 0;
  for (const auto& pkt : trace_->packets) {
    const Direction dir = trace_->network.classify(pkt);
    first_dir.try_emplace(pkt.tuple, dir);
    if (dir == Direction::kOutbound) {
      outbound_total += pkt.wire_size();
      if (first_dir[pkt.tuple] == Direction::kInbound) {
        outbound_on_inbound_conns += pkt.wire_size();
      }
    }
  }
  const double share = static_cast<double>(outbound_on_inbound_conns) /
                       static_cast<double>(outbound_total);
  EXPECT_GT(share, 0.65);
  EXPECT_LT(share, 0.99);
}

TEST_F(CampusTraceTest, OfferedLoadNearConfiguredBandwidth) {
  // Bytes were sized for 10 Mbps over 30 s; connections may drain past the
  // nominal duration, so compare total bytes, not instantaneous rate.
  const double expected_bytes = 10e6 * 30.0 / 8.0;
  const double actual_bytes = static_cast<double>(trace_->outbound_bytes +
                                                  trace_->inbound_bytes);
  EXPECT_NEAR(actual_bytes, expected_bytes, expected_bytes * 0.45);
}

TEST_F(CampusTraceTest, DeterministicForSeed) {
  const GeneratedTrace again = generate_campus_trace(small_config());
  ASSERT_EQ(again.packets.size(), trace_->packets.size());
  for (std::size_t i = 0; i < again.packets.size(); i += 997) {
    EXPECT_EQ(again.packets[i].tuple, trace_->packets[i].tuple);
    EXPECT_EQ(again.packets[i].timestamp, trace_->packets[i].timestamp);
  }
}

TEST_F(CampusTraceTest, DifferentSeedDiffers) {
  CampusTraceConfig config = small_config();
  config.seed = 777;
  config.duration = Duration::sec(5.0);
  config.connections_per_sec = 40.0;
  config.bandwidth_bps = 2e6;
  const GeneratedTrace other = generate_campus_trace(config);
  EXPECT_NE(other.packets.size(), trace_->packets.size());
}

TEST(CampusTrace, InvalidConfigThrows) {
  CampusTraceConfig config;
  config.duration = Duration::sec(0.0);
  EXPECT_THROW(generate_campus_trace(config), std::invalid_argument);
  config = CampusTraceConfig{};
  config.connections_per_sec = 0.0;
  EXPECT_THROW(generate_campus_trace(config), std::invalid_argument);
  config = CampusTraceConfig{};
  config.bandwidth_bps = -1.0;
  EXPECT_THROW(generate_campus_trace(config), std::invalid_argument);
}

TEST(CampusTrace, MixSumsToOne) {
  for (const auto& mix : {paper_table2_mix(), enterprise_mix()}) {
    double conn_sum = 0.0, byte_sum = 0.0;
    for (const auto& entry : mix) {
      conn_sum += entry.conn_fraction;
      byte_sum += entry.byte_fraction;
    }
    EXPECT_NEAR(conn_sum, 1.0, 1e-9);
    EXPECT_NEAR(byte_sum, 1.0, 1e-9);
  }
}

TEST(CampusTrace, EnterpriseMixIsClientServerDominated) {
  CampusTraceConfig config;
  config.duration = Duration::sec(10.0);
  config.connections_per_sec = 50.0;
  config.bandwidth_bps = 4e6;
  config.seed = 5;
  config.mix = enterprise_mix();
  const GeneratedTrace trace = generate_campus_trace(config);

  std::uint64_t p2p_bytes = 0, total_bytes = 0;
  for (const auto& pkt : trace.packets) {
    const AppProtocol app = trace.truth.at(pkt.tuple.canonical());
    total_bytes += pkt.wire_size();
    if (is_p2p(app) || app == AppProtocol::kUnknown) {
      p2p_bytes += pkt.wire_size();
    }
  }
  EXPECT_LT(static_cast<double>(p2p_bytes) / static_cast<double>(total_bytes),
            0.15);
  // Enterprise traffic is download-heavy: upload well under half.
  const double up =
      static_cast<double>(trace.outbound_bytes) /
      static_cast<double>(trace.outbound_bytes + trace.inbound_bytes);
  EXPECT_LT(up, 0.5);
}

}  // namespace
}  // namespace upbound
