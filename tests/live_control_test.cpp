// Control-socket protocol matrix: command round-trips, typed capability
// errors on both the capable and incapable backends, and a malformed-
// input fuzz pass (split reads, oversized lines, embedded NULs,
// mid-command disconnects, random garbage) that must never crash or
// wedge the loop. Run under ASan in CI (live-smoke) and TSan (the
// concurrent-reconfiguration case).
#include "live_harness.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <random>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "fault/fault_injector.h"  // kFaultsCompiled
#include "filter/filter_registry.h"
#include "filter/params.h"

namespace upbound::live::testing {
namespace {

FilterSpec spec_named(const std::string& name) {
  MapFilterArgs args;
  args.set("bits", "14");
  args.set("dt", "5");
  return FilterRegistry::instance().at(name).parse(args);
}

std::string temp_path(const std::string& tag) {
  return ::testing::TempDir() + "upbound_" + tag + "_" +
         std::to_string(::getpid());
}

/// A datapath + control server on an ephemeral tap, polled manually.
struct ControlFixture {
  VirtualClock clock;
  EventLoop loop;
  std::unique_ptr<LiveDatapath> datapath;
  std::string socket_path;

  explicit ControlFixture(const std::string& filter_kind,
                          bool arm_health = false,
                          Duration idle_timeout = Duration::sec(30.0)) {
    UdpTapSource::Config tap_config;
    tap_config.port = 0;
    auto source = std::make_unique<UdpTapSource>(tap_config);
    LiveConfig config;
    config.clock = &clock;
    config.policy_low = 3e6;
    config.policy_high = 6e6;
    if (arm_health && kFaultsCompiled) {
      config.router.health.stance = UnhealthyStance::kFailOpen;
    }
    datapath = std::make_unique<LiveDatapath>(
        config, spec_named(filter_kind), std::move(source), loop);
    socket_path = temp_path("ctl_" + filter_kind);
    datapath->enable_control(socket_path, idle_timeout);
  }

  ~ControlFixture() { ::unlink(socket_path.c_str()); }

  /// Blocking client connection to the control socket.
  int connect() {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size());
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    // The server accepts on the next poll.
    loop.poll_once(1);
    return fd;
  }

  /// Writes raw bytes, polls the loop, reads one reply line.
  std::string roundtrip(int fd, const std::string& bytes) {
    send_raw(fd, bytes);
    return read_reply(fd);
  }

  void send_raw(int fd, const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t put =
          ::write(fd, bytes.data() + off, bytes.size() - off);
      ASSERT_GT(put, 0);
      off += static_cast<std::size_t>(put);
      loop.poll_once(0);
    }
    loop.poll_once(1);
  }

  std::string read_reply(int fd) {
    std::string reply;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    for (;;) {
      char c = 0;
      const ssize_t got = ::read(fd, &c, 1);
      if (got == 1) {
        if (c == '\n') return reply;
        reply.push_back(c);
        continue;
      }
      if (got == 0) return reply;  // server closed
      if (errno != EAGAIN && errno != EWOULDBLOCK) return reply;
      loop.poll_once(1);
      if (std::chrono::steady_clock::now() > deadline) {
        ADD_FAILURE() << "no reply within deadline; got: " << reply;
        return reply;
      }
    }
  }
};

TEST(ControlProtocol, RoundTripsOnCapableBackend) {
  ControlFixture fx{"bitmap"};
  const int fd = fx.connect();

  EXPECT_EQ(fx.roundtrip(fd, "set low 4e6\n"), "OK low=4e+06 high=6e+06");
  EXPECT_EQ(fx.roundtrip(fd, "set high 9e6\n"), "OK low=4e+06 high=9e+06");
  EXPECT_EQ(fx.roundtrip(fd, "set dt 2.5\n"), "OK dt=2.5s");

  const std::string snap = temp_path("snap") + ".bin";
  const std::string reply = fx.roundtrip(fd, "snapshot " + snap + "\n");
  EXPECT_EQ(reply.rfind("OK wrote " + snap, 0), 0u) << reply;
  std::FILE* f = std::fopen(snap.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  ::unlink(snap.c_str());

  const std::string stats = fx.roundtrip(fd, "stats\n");
  EXPECT_EQ(stats.rfind("OK {", 0), 0u) << stats;
  EXPECT_NE(stats.find("\"source\":\"udp-tap\""), std::string::npos);
  ::close(fd);
}

TEST(ControlProtocol, DtShrinkUnderTrafficKeepsRecentStateAlive) {
  // Regression: shrinking dt over the control socket used to re-anchor
  // the rotation schedule behind the filter's clock, so the very next
  // packet fired a burst of catch-up rotations that wiped state marked
  // moments earlier. The schedule now clamps the first new boundary
  // strictly past the last observed clock value.
  ControlFixture fx{"bitmap"};
  const int fd = fx.connect();

  StateFilter& filter = fx.datapath->router().filter();
  PacketRecord out;
  out.timestamp = SimTime::from_sec(4.0);  // inside the first 5s window
  out.tuple = FiveTuple{Protocol::kUdp, Ipv4Addr{10, 0, 0, 9}, 6000,
                        Ipv4Addr{1, 2, 3, 4}, 6881};
  filter.advance_time(out.timestamp);
  filter.record_outbound(out);

  EXPECT_EQ(fx.roundtrip(fd, "set dt 1\n"), "OK dt=1s");

  // Traffic resumes just after the retune: no rotation burst, and the
  // connection marked at t=4.0 is still admitted.
  PacketRecord probe;
  probe.timestamp = SimTime::from_sec(4.2);
  probe.tuple = out.tuple.inverse();
  filter.advance_time(probe.timestamp);
  EXPECT_EQ(filter.expiry_generations(), 0u);
  EXPECT_TRUE(filter.admits_inbound(probe));

  // The new 1s cadence takes over at the first boundary past t=4.
  filter.advance_time(SimTime::from_sec(5.0));
  EXPECT_EQ(filter.expiry_generations(), 1u);
  filter.advance_time(SimTime::from_sec(6.0));
  EXPECT_EQ(filter.expiry_generations(), 2u);
  ::close(fd);
}

TEST(ControlProtocol, TypedCapabilityErrorsOnIncapableBackend) {
  // naive has neither kCapRotateInterval nor kCapSnapshot: both commands
  // parse fine and fail with their typed capability code.
  ControlFixture fx{"naive"};
  const int fd = fx.connect();

  const std::string dt_reply = fx.roundtrip(fd, "set dt 2\n");
  EXPECT_EQ(dt_reply.rfind("ERR capability:rotate", 0), 0u) << dt_reply;
  const std::string snap_reply =
      fx.roundtrip(fd, "snapshot " + temp_path("nope") + "\n");
  EXPECT_EQ(snap_reply.rfind("ERR capability:snapshot", 0), 0u)
      << snap_reply;
  ::close(fd);
}

TEST(ControlProtocol, StatsTenantsGatedOnTenancyCapability) {
  {
    // A flat backend has no tenant table: typed capability error.
    ControlFixture fx{"bitmap"};
    const int fd = fx.connect();
    const std::string reply = fx.roundtrip(fd, "stats tenants\n");
    EXPECT_EQ(reply.rfind("ERR capability:tenancy", 0), 0u) << reply;
    ::close(fd);
  }
  {
    // The hierarchical tenant filter answers with the JSON summary.
    ControlFixture fx{"hierarchical"};
    const int fd = fx.connect();
    const std::string reply = fx.roundtrip(fd, "stats tenants\n");
    EXPECT_EQ(reply.rfind("OK {", 0), 0u) << reply;
    EXPECT_NE(reply.find("\"tenants\":"), std::string::npos) << reply;
    EXPECT_NE(reply.find("\"fine_live\":"), std::string::npos) << reply;
    const std::string extra = fx.roundtrip(fd, "stats tenants extra\n");
    EXPECT_EQ(extra.rfind("ERR bad-argument", 0), 0u) << extra;
    ::close(fd);
  }
}

TEST(ControlProtocol, UnhealthyStanceGating) {
  {
    ControlFixture fx{"bitmap", /*arm_health=*/false};
    const int fd = fx.connect();
    const std::string reply =
        fx.roundtrip(fd, "set on-unhealthy fail-closed\n");
    EXPECT_EQ(reply.rfind("ERR unsupported:health", 0), 0u) << reply;
    ::close(fd);
  }
  if (kFaultsCompiled) {
    ControlFixture fx{"bitmap", /*arm_health=*/true};
    const int fd = fx.connect();
    EXPECT_EQ(fx.roundtrip(fd, "set on-unhealthy fail-closed\n"),
              "OK on-unhealthy=fail-closed");
    EXPECT_EQ(fx.roundtrip(fd, "set on-unhealthy fail-open\n"),
              "OK on-unhealthy=fail-open");
    ::close(fd);
  }
}

TEST(ControlProtocol, BadArgumentsAndUnknownCommands) {
  ControlFixture fx{"bitmap"};
  const int fd = fx.connect();
  const std::pair<const char*, const char*> cases[] = {
      {"\n", "ERR unknown-command"},
      {"frobnicate\n", "ERR unknown-command"},
      {"set\n", "ERR bad-argument"},
      {"set low\n", "ERR bad-argument"},
      {"set low zero\n", "ERR bad-argument"},
      {"set low -5\n", "ERR bad-argument"},
      {"set low 1e6x\n", "ERR bad-argument"},
      {"set dt 0\n", "ERR bad-argument"},
      {"set high 1e6\n", "ERR bad-argument"},  // would invert low < high
      {"set wobble 3\n", "ERR unknown-command"},
      {"quit now\n", "ERR bad-argument"},
      {"snapshot\n", "ERR bad-argument"},
      {"stats extra\n", "ERR bad-argument"},
  };
  for (const auto& [line, prefix] : cases) {
    const std::string reply = fx.roundtrip(fd, line);
    EXPECT_EQ(reply.rfind(prefix, 0), 0u)
        << "line " << line << " -> " << reply;
  }
  ::close(fd);
}

TEST(ControlProtocol, SplitReadsReassemble) {
  ControlFixture fx{"bitmap"};
  const int fd = fx.connect();
  // One byte per write: the server must buffer across reads.
  const std::string cmd = "set low 4.5e6\n";
  for (const char c : cmd) fx.send_raw(fd, std::string(1, c));
  EXPECT_EQ(fx.read_reply(fd), "OK low=4.5e+06 high=6e+06");
  ::close(fd);
}

TEST(ControlProtocol, OversizedLineRejectedThenRecovers) {
  ControlFixture fx{"bitmap"};
  const int fd = fx.connect();
  // 8 KB with no newline: rejected mid-line with line-too-long...
  fx.send_raw(fd, std::string(8192, 'x'));
  EXPECT_EQ(fx.read_reply(fd).rfind("ERR line-too-long", 0), 0u);
  // ...the tail plus its eventual newline is skipped, and the very next
  // command parses normally.
  fx.send_raw(fd, std::string(100, 'y') + "\n");
  EXPECT_EQ(fx.roundtrip(fd, "stats\n").rfind("OK {", 0), 0u);
  ::close(fd);
}

TEST(ControlProtocol, EmbeddedNulsAreTypedErrorsNotCrashes) {
  ControlFixture fx{"bitmap"};
  const int fd = fx.connect();
  using std::string_literals::operator""s;
  EXPECT_EQ(fx.roundtrip(fd, "set low 4\0e6\n"s).rfind("ERR", 0), 0u);
  EXPECT_EQ(fx.roundtrip(fd, "snap\0shot /tmp/x\n"s).rfind("ERR", 0), 0u);
  EXPECT_EQ(fx.roundtrip(fd, "snapshot /tmp/\0evil\n"s).rfind("ERR", 0),
            0u);
  // Still alive.
  EXPECT_EQ(fx.roundtrip(fd, "stats\n").rfind("OK {", 0), 0u);
  ::close(fd);
}

TEST(ControlProtocol, MidCommandDisconnectAndReconnect) {
  ControlFixture fx{"bitmap"};
  int fd = fx.connect();
  fx.send_raw(fd, "set low 99");  // no newline
  ::close(fd);                    // die mid-command
  fx.loop.poll_once(1);           // server reaps the connection

  fd = fx.connect();
  EXPECT_EQ(fx.roundtrip(fd, "set low 4e6\n"), "OK low=4e+06 high=6e+06");
  ::close(fd);
}

TEST(ControlProtocol, DisconnectBeforeReplyDoesNotKillTheDaemon) {
  // Client sends a command and vanishes before the server writes the
  // reply: the write must fail with EPIPE (MSG_NOSIGNAL), not raise a
  // process-terminating SIGPIPE.
  ControlFixture fx{"bitmap"};
  const int fd = fx.connect();
  const char cmd[] = "stats\n";
  ASSERT_EQ(::write(fd, cmd, sizeof(cmd) - 1),
            static_cast<ssize_t>(sizeof(cmd) - 1));
  ::close(fd);         // gone before the server even reads the command
  fx.loop.poll_once(1);  // server reads, executes, reply write hits EPIPE

  const int fd2 = fx.connect();
  EXPECT_EQ(fx.roundtrip(fd2, "stats\n").rfind("OK {", 0), 0u);
  ::close(fd2);
}

TEST(ControlProtocol, DisconnectDuringOversizedLineStaysSafe) {
  // The line-too-long reply goes to a peer that already closed, so
  // send_reply tears the connection down mid-handle_data; the server
  // must not touch the freed Connection afterwards (ASan regression).
  ControlFixture fx{"bitmap"};
  const int fd = fx.connect();
  const std::string flood(8192, 'x');  // 2x the server's line bound
  ASSERT_EQ(::write(fd, flood.data(), flood.size()),
            static_cast<ssize_t>(flood.size()));
  ::close(fd);
  fx.loop.poll_once(1);

  const int fd2 = fx.connect();
  EXPECT_EQ(fx.roundtrip(fd2, "stats\n").rfind("OK {", 0), 0u);
  ::close(fd2);
}

TEST(ControlProtocol, SeededGarbageNeverWedgesTheLoop) {
  ControlFixture fx{"bitmap"};
  std::mt19937 rng{1234};
  for (int round = 0; round < 20; ++round) {
    const int fd = fx.connect();
    std::string junk;
    const std::size_t len = 1 + rng() % 600;
    for (std::size_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(rng() % 256));
    }
    fx.send_raw(fd, junk);
    if (rng() % 2 == 0) fx.send_raw(fd, "\n");
    ::close(fd);
    fx.loop.poll_once(1);
  }
  // After 20 rounds of abuse a fresh client still gets clean service.
  const int fd = fx.connect();
  EXPECT_EQ(fx.roundtrip(fd, "stats\n").rfind("OK {", 0), 0u);
  ::close(fd);
  EXPECT_FALSE(fx.loop.stopped());
}

TEST(ControlProtocol, QuitRepliesThenStops) {
  ControlFixture fx{"bitmap"};
  const int fd = fx.connect();
  EXPECT_EQ(fx.roundtrip(fd, "quit\n"), "OK bye");
  EXPECT_TRUE(fx.loop.stopped());
  ::close(fd);
}

TEST(ControlProtocol, ExecuteMatrixAgainstFakeApi) {
  // Parser-level matrix against a fake: proves the typed codes come from
  // the protocol layer itself, independent of a real datapath.
  struct FakeApi final : ControlApi {
    ControlReply control_set_threshold(bool, double) override {
      return ControlReply::good("threshold");
    }
    ControlReply control_set_rotate_interval(Duration) override {
      return ControlReply::good("rotate");
    }
    ControlReply control_set_unhealthy_stance(UnhealthyStance) override {
      return ControlReply::good("stance");
    }
    ControlReply control_snapshot(const std::string&) override {
      return ControlReply::good("snapshot");
    }
    ControlReply control_stats() override {
      return ControlReply::good("stats");
    }
    void control_quit() override { quits++; }
    int quits = 0;
  };
  FakeApi api;
  EventLoop loop;
  ControlServer server{loop, temp_path("fake"), &api};

  bool quit = false;
  EXPECT_TRUE(server.execute("set low 1e6", &quit).ok);
  EXPECT_TRUE(server.execute("set dt 1", &quit).ok);
  EXPECT_TRUE(server.execute("set on-unhealthy fail-open", &quit).ok);
  EXPECT_TRUE(server.execute("snapshot /tmp/x", &quit).ok);
  EXPECT_TRUE(server.execute("stats", &quit).ok);
  // The fake never overrides control_stats_tenants: the ControlApi
  // default answers with the typed tenancy-capability error.
  const ControlReply tenants = server.execute("stats tenants", &quit);
  EXPECT_FALSE(tenants.ok);
  EXPECT_EQ(tenants.code, "capability:tenancy");
  // Same for the daemon-lifecycle verbs: a fake without a reloadable or
  // checkpointing datapath answers with the typed unsupported codes.
  const ControlReply reload = server.execute("reload /tmp/x.conf", &quit);
  EXPECT_FALSE(reload.ok);
  EXPECT_EQ(reload.code, "unsupported:reload");
  const ControlReply checkpoint = server.execute("checkpoint", &quit);
  EXPECT_FALSE(checkpoint.ok);
  EXPECT_EQ(checkpoint.code, "unsupported:checkpoint");
  // Argument-shape errors come from the protocol layer before the API.
  EXPECT_EQ(server.execute("reload", &quit).code, "bad-argument");
  EXPECT_EQ(server.execute("reload a b", &quit).code, "bad-argument");
  EXPECT_EQ(server.execute("checkpoint now", &quit).code, "bad-argument");
  EXPECT_FALSE(quit);
  const ControlReply bye = server.execute("quit", &quit);
  EXPECT_TRUE(bye.ok);
  EXPECT_EQ(bye.detail, "bye");
  EXPECT_TRUE(quit);
  // execute() itself must NOT quit -- the server calls control_quit only
  // after the reply is on the wire.
  EXPECT_EQ(api.quits, 0);
  EXPECT_EQ(server.commands_processed(), 12u);
}

TEST(ControlProtocol, ConcurrentReconfigurationUnderTraffic) {
  // TSan case: the loop thread owns the router; a control client retunes
  // thresholds while a sender pushes traffic. All mutation happens on
  // the loop thread by design -- this test exists so TSan can prove it.
  VirtualClock clock;
  EventLoop loop;
  UdpTapSource::Config tap_config;
  tap_config.port = 0;
  auto source = std::make_unique<UdpTapSource>(tap_config);
  const std::uint16_t port = source->local_port();

  const GeneratedTrace& generated = conformance_trace();
  LiveConfig config;
  config.router.network = generated.network;
  config.clock = &clock;
  LiveDatapath datapath{config, spec_named("bitmap"), std::move(source),
                        loop};
  const std::string ctl = temp_path("tsan");
  datapath.enable_control(ctl);

  std::thread loop_thread{[&loop] { loop.run(); }};

  std::thread sender_thread{[&] {
    UdpTapSender sender{port};
    for (std::size_t p = 0; p < 2000 && p < generated.packets.size();
         ++p) {
      sender.send_packet(generated.packets[p]);
    }
  }};

  std::thread client_thread{[&] {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, ctl.c_str(), ctl.size());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      return;
    }
    char buf[256];
    for (int i = 0; i < 50; ++i) {
      const std::string cmd =
          "set low " + std::to_string(1e6 + i * 1e5) + "\n";
      if (::write(fd, cmd.data(), cmd.size()) < 0) break;
      const ssize_t got = ::read(fd, buf, sizeof(buf));
      if (got <= 0) break;
    }
    const char quit[] = "quit\n";
    (void)!::write(fd, quit, sizeof(quit) - 1);
    (void)::read(fd, buf, sizeof(buf));
    ::close(fd);
  }};

  sender_thread.join();
  client_thread.join();
  loop_thread.join();  // quit stops the loop
  EXPECT_TRUE(loop.stopped());
  ::unlink(ctl.c_str());
}

TEST(ControlProtocol, DaemonVerbsOverTheSocket) {
  ControlFixture fx{"bitmap"};
  const int fd = fx.connect();

  // Argument-shape errors come back before any API dispatch.
  EXPECT_EQ(fx.roundtrip(fd, "reload\n"),
            "ERR bad-argument usage: reload <path>");
  EXPECT_EQ(fx.roundtrip(fd, "reload a b\n"),
            "ERR bad-argument usage: reload <path>");
  EXPECT_EQ(fx.roundtrip(fd, "checkpoint now\n"),
            "ERR bad-argument checkpoint takes no arguments");

  // This fixture never armed a checkpoint dir: typed unsupported code.
  const std::string ck = fx.roundtrip(fd, "checkpoint\n");
  EXPECT_EQ(ck.rfind("ERR unsupported:checkpoint", 0), 0u) << ck;

  // A missing config file is a typed io error, not a dropped connection.
  const std::string missing =
      fx.roundtrip(fd, "reload " + temp_path("no_such_config") + "\n");
  EXPECT_EQ(missing.rfind("ERR io", 0), 0u) << missing;

  // A well-formed retune config applies atomically over the socket.
  const std::string conf = temp_path("reload_conf") + ".conf";
  std::FILE* f = std::fopen(conf.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("low 4e6\nhigh 9e6\n", f);
  std::fclose(f);
  EXPECT_EQ(fx.roundtrip(fd, "reload " + conf + "\n"),
            "OK reloaded " + conf + ": low=4e+06 high=9e+06");

  // A geometry change over the socket is refused with the typed code
  // and the running filter stays untouched.
  std::FILE* g = std::fopen(conf.c_str(), "wb");
  ASSERT_NE(g, nullptr);
  std::fputs("filter bitmap\nbits 10\ndt 5\n", g);
  std::fclose(g);
  const std::string incompat = fx.roundtrip(fd, "reload " + conf + "\n");
  EXPECT_EQ(incompat.rfind("ERR reload-incompatible", 0), 0u) << incompat;
  ::unlink(conf.c_str());
  ::close(fd);
}

TEST(ControlProtocol, MidLineIdlersAreReapedWithTypedTimeout) {
  ControlFixture fx{"bitmap", /*arm_health=*/false,
                    /*idle_timeout=*/Duration::msec(50)};
  const int fd = fx.connect();
  fx.send_raw(fd, "sta");  // mid-line: command started, newline never sent

  // The wall-clock sweep fires while we pump the loop: the stuck client
  // gets one typed reply line and then the server closes its end.
  std::string reply;
  bool closed = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!closed) {
    ASSERT_TRUE(std::chrono::steady_clock::now() < deadline) << reply;
    fx.loop.poll_once(5);
    char buf[128];
    const ssize_t got = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (got > 0) {
      reply.append(buf, static_cast<std::size_t>(got));
    } else if (got == 0) {
      closed = true;
    }
  }
  EXPECT_EQ(reply.rfind("ERR timeout", 0), 0u) << reply;
  EXPECT_NE(reply.find("mid-command idle"), std::string::npos) << reply;
  EXPECT_EQ(fx.datapath->control()->connections_reaped(), 1u);
  ::close(fd);

  // The daemon is still serving: a fresh client round-trips normally.
  const int fd2 = fx.connect();
  const std::string stats = fx.roundtrip(fd2, "stats\n");
  EXPECT_EQ(stats.rfind("OK {", 0), 0u) << stats;
  ::close(fd2);
}

TEST(ControlProtocol, IdleBetweenCommandsIsNeverReaped) {
  ControlFixture fx{"bitmap", /*arm_health=*/false,
                    /*idle_timeout=*/Duration::msec(50)};
  const int fd = fx.connect();
  EXPECT_EQ(fx.roundtrip(fd, "set low 4e6\n"), "OK low=4e+06 high=6e+06");

  // Sit quiet with NO partial line buffered for several sweep periods:
  // a connection idle between commands holds no server memory hostage
  // and must be left alone.
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(250);
  while (std::chrono::steady_clock::now() < until) fx.loop.poll_once(5);

  EXPECT_EQ(fx.datapath->control()->connections_reaped(), 0u);
  EXPECT_EQ(fx.roundtrip(fd, "set high 9e6\n"), "OK low=4e+06 high=9e+06");
  ::close(fd);
}

}  // namespace
}  // namespace upbound::live::testing
