// Live-vs-offline conformance: the same trace pushed through real UDP
// sockets + epoll + the live datapath must produce a byte-identical
// result to offline replay -- same stats, same per-stage counters, same
// time series, same deterministic metrics report -- for every registered
// filter backend. This is the tentpole guarantee of the live datapath:
// going live changes the transport, not the semantics.
#include "live_harness.h"

#include <gtest/gtest.h>

#include "filter/filter_registry.h"
#include "filter/params.h"

namespace upbound::live::testing {
namespace {

FilterSpec spec_for(const BackendDescriptor& backend) {
  MapFilterArgs args;
  // Small geometry keeps each backend's run fast; unknown keys are
  // simply unread by backends that do not take them.
  args.set("bits", "16");
  args.set("dt", "5");
  return backend.parse(args);
}

TEST(LiveConformance, RequiredBackendsAreRegistered) {
  const FilterRegistry& registry = FilterRegistry::instance();
  EXPECT_NE(registry.find("bitmap"), nullptr);
  EXPECT_NE(registry.find("spi"), nullptr);
  EXPECT_NE(registry.find("naive"), nullptr);
}

TEST(LiveConformance, EveryBackendMatchesOfflineReplay) {
  const GeneratedTrace& generated = conformance_trace();
  ASSERT_FALSE(generated.packets.empty());
  LiveRunOptions options;

  for (const BackendDescriptor& backend :
       FilterRegistry::instance().descriptors()) {
    SCOPED_TRACE("backend: " + backend.name);
    const FilterSpec spec = spec_for(backend);

    const LiveRunOutput offline =
        run_offline(generated.packets, generated.network, spec, options);
    const LiveRunOutput live =
        run_live_tap(generated.packets, generated.network, spec, options);

    // Conservation first: every datagram sent arrived, decoded, and was
    // processed. Without this the equality below could pass vacuously on
    // a lossy run whose drops happened to cancel out.
    EXPECT_EQ(live.datagrams_sent, generated.packets.size());
    EXPECT_EQ(live.stats.frames, live.datagrams_sent);
    EXPECT_EQ(live.stats.decode_errors, 0u);
    EXPECT_EQ(live.stats.malformed, 0u);
    EXPECT_EQ(live.stats.packets, generated.packets.size());

    // Byte-identity: stats (including per-stage counters) and all four
    // offered/passed series...
    EXPECT_TRUE(live.result == offline.result);
    EXPECT_EQ(live.router_stats, offline.router_stats);
    // ...and the serialized deterministic metrics report.
    EXPECT_EQ(live.report, offline.report);
    EXPECT_FALSE(live.report.empty());
  }
}

TEST(LiveConformance, ConstantPolicyPathMatchesToo) {
  // The RED path exercises the policy RNG; the constant-P_d path must
  // conform as well (it is the paper's always-drop baseline).
  const GeneratedTrace& generated = conformance_trace();
  LiveRunOptions options;
  options.policy_red = false;
  options.policy_pd = 0.5;

  const FilterSpec spec =
      spec_for(FilterRegistry::instance().at("bitmap"));
  const LiveRunOutput offline =
      run_offline(generated.packets, generated.network, spec, options);
  const LiveRunOutput live =
      run_live_tap(generated.packets, generated.network, spec, options);

  EXPECT_TRUE(live.result == offline.result);
  EXPECT_EQ(live.report, offline.report);
}

TEST(LiveConformance, BatchShapeInvariance) {
  // A tiny batch_max produces many more (smaller) router batches; the
  // conformance report must not care. This is what strip_batch_shape
  // guarantees -- and why the live datapath may legally coalesce
  // arrivals differently than replay's fixed 256.
  const GeneratedTrace& generated = conformance_trace();
  const FilterSpec spec =
      spec_for(FilterRegistry::instance().at("bitmap"));

  LiveRunOptions options;
  const LiveRunOutput reference =
      run_live_tap(generated.packets, generated.network, spec, options);

  LiveRunOptions small;
  small.batch_max = 17;
  const LiveRunOutput odd =
      run_live_tap(generated.packets, generated.network, spec, small);

  EXPECT_GT(odd.stats.batches, reference.stats.batches);
  EXPECT_TRUE(odd.result == reference.result);
  EXPECT_EQ(odd.report, reference.report);
}

}  // namespace
}  // namespace upbound::live::testing
