#include <gtest/gtest.h>

#include "analyzer/conn_table.h"

namespace upbound {
namespace {

FiveTuple tuple() {
  return FiveTuple{Protocol::kTcp, Ipv4Addr{140, 112, 30, 9}, 40000,
                   Ipv4Addr{8, 8, 8, 8}, 80};
}

PacketRecord pkt(const FiveTuple& t, double t_sec, TcpFlags flags = {},
                 std::uint32_t payload = 0) {
  PacketRecord p;
  p.timestamp = SimTime::from_sec(t_sec);
  p.tuple = t;
  p.flags = flags;
  p.payload_size = payload;
  return p;
}

TEST(StreamBuf, AppendsUpToCap) {
  StreamBuf buf{8};
  const std::uint8_t a[] = {1, 2, 3, 4, 5};
  EXPECT_EQ(buf.append(a), 5u);
  EXPECT_EQ(buf.append(a), 3u);  // only 3 bytes of room left
  EXPECT_TRUE(buf.at_capacity());
  EXPECT_EQ(buf.size(), 8u);
  EXPECT_EQ(buf.bytes()[5], 1);
}

TEST(StreamBuf, DiscardReleasesMemory) {
  StreamBuf buf;
  const std::uint8_t a[64] = {};
  buf.append(a);
  buf.discard();
  EXPECT_EQ(buf.size(), 0u);
}

TEST(ConnTable, CreatesRecordOnFirstPacket) {
  ConnTable table;
  const auto& rec =
      table.update(pkt(tuple(), 1.0, {.syn = true}), Direction::kOutbound);
  EXPECT_EQ(rec.tuple, tuple());
  EXPECT_TRUE(rec.saw_syn);
  EXPECT_EQ(rec.first_direction, Direction::kOutbound);
  EXPECT_EQ(rec.first_packet_time, SimTime::from_sec(1.0));
  EXPECT_EQ(table.size(), 1u);
}

TEST(ConnTable, BothDirectionsShareOneRecord) {
  ConnTable table;
  table.update(pkt(tuple(), 1.0, {.syn = true}), Direction::kOutbound);
  table.update(pkt(tuple().inverse(), 1.1, {.syn = true, .ack = true}),
               Direction::kInbound);
  EXPECT_EQ(table.size(), 1u);
  const ConnectionRecord* rec = table.find(tuple());
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->packets_from_initiator, 1u);
  EXPECT_EQ(rec->packets_to_initiator, 1u);
  EXPECT_EQ(table.find(tuple().inverse()), rec);
}

TEST(ConnTable, ByteCountersUseWireSize) {
  ConnTable table;
  table.update(pkt(tuple(), 1.0, {.ack = true}, 100), Direction::kOutbound);
  const ConnectionRecord* rec = table.find(tuple());
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->bytes_from_initiator, 100u + 54u);  // payload + headers
}

TEST(ConnTable, CloseTimeFromFin) {
  ConnTable table;
  table.update(pkt(tuple(), 1.0, {.syn = true}), Direction::kOutbound);
  table.update(pkt(tuple(), 5.0, {.ack = true, .fin = true}),
               Direction::kOutbound);
  // Later packets do not move the close time.
  table.update(pkt(tuple().inverse(), 6.0, {.ack = true, .fin = true}),
               Direction::kInbound);
  const ConnectionRecord* rec = table.find(tuple());
  ASSERT_TRUE(rec->closed);
  EXPECT_EQ(rec->close_time, SimTime::from_sec(5.0));
  EXPECT_EQ(rec->lifetime(), Duration::sec(4.0));
}

TEST(ConnTable, RstAlsoCloses) {
  ConnTable table;
  table.update(pkt(tuple(), 1.0, {.syn = true}), Direction::kOutbound);
  table.update(pkt(tuple(), 2.5, {.rst = true}), Direction::kOutbound);
  const ConnectionRecord* rec = table.find(tuple());
  ASSERT_TRUE(rec->closed);
  EXPECT_EQ(rec->lifetime(), Duration::sec(1.5));
}

TEST(ConnTable, MidStreamCaptureHasNoSyn) {
  ConnTable table;
  table.update(pkt(tuple(), 1.0, {.ack = true}, 500), Direction::kOutbound);
  EXPECT_FALSE(table.find(tuple())->saw_syn);
}

TEST(ConnTable, LastPacketTimeTracksLatest) {
  ConnTable table;
  table.update(pkt(tuple(), 1.0, {.syn = true}), Direction::kOutbound);
  table.update(pkt(tuple(), 9.0, {.ack = true}), Direction::kOutbound);
  EXPECT_EQ(table.find(tuple())->last_packet_time, SimTime::from_sec(9.0));
}

TEST(ConnTable, ForEachVisitsAllRecords) {
  ConnTable table;
  for (std::uint16_t p = 1; p <= 10; ++p) {
    FiveTuple t = tuple();
    t.src_port = p;
    table.update(pkt(t, 1.0, {.syn = true}), Direction::kOutbound);
  }
  int visited = 0;
  table.for_each([&](const ConnectionRecord&) { ++visited; });
  EXPECT_EQ(visited, 10);
}

TEST(ConnectionRecord, ToStringMentionsAppAndMethod) {
  ConnTable table;
  auto& rec = table.update(pkt(tuple(), 1.0, {.syn = true}),
                           Direction::kOutbound);
  rec.app = AppProtocol::kBitTorrent;
  rec.method = ClassifyMethod::kPattern;
  const std::string s = rec.to_string();
  EXPECT_NE(s.find("bittorrent"), std::string::npos);
  EXPECT_NE(s.find("pattern"), std::string::npos);
}

TEST(ClassifyMethodName, AllNamed) {
  EXPECT_STREQ(classify_method_name(ClassifyMethod::kNone), "none");
  EXPECT_STREQ(classify_method_name(ClassifyMethod::kPattern), "pattern");
  EXPECT_STREQ(classify_method_name(ClassifyMethod::kPort), "port");
  EXPECT_STREQ(classify_method_name(ClassifyMethod::kEndpointMemo),
               "endpoint-memo");
  EXPECT_STREQ(classify_method_name(ClassifyMethod::kFtpData), "ftp-data");
}

}  // namespace
}  // namespace upbound
