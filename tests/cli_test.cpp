#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "cli/commands.h"
#include "net/pcap.h"

namespace upbound::cli {
namespace {

Args parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"upbound"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return Args::parse(static_cast<int>(argv.size()), argv.data());
}

// ---------------- Args ----------------

TEST(CliArgs, CommandAndOptions) {
  const Args args = parse({"filter", "--pcap", "x.pcap", "--low", "3e6"});
  EXPECT_EQ(args.command(), "filter");
  EXPECT_EQ(args.get_string("pcap", ""), "x.pcap");
  EXPECT_DOUBLE_EQ(args.get_double("low", 0.0), 3e6);
}

TEST(CliArgs, EqualsSyntax) {
  const Args args = parse({"generate", "--out=trace.pcap", "--seed=9"});
  EXPECT_EQ(args.get_string("out", ""), "trace.pcap");
  EXPECT_EQ(args.get_u64("seed", 0), 9u);
}

TEST(CliArgs, BareFlagIsBoolean) {
  const Args args = parse({"filter", "--blocklist", "--pcap", "x"});
  EXPECT_TRUE(args.get_flag("blocklist"));
  EXPECT_FALSE(args.get_flag("hole-punching"));
}

TEST(CliArgs, DefaultsWhenAbsent) {
  const Args args = parse({"advise"});
  EXPECT_EQ(args.get_int("bits", 20), 20);
  EXPECT_DOUBLE_EQ(args.get_double("dt", 5.0), 5.0);
  EXPECT_EQ(args.get_string("filter", "bitmap"), "bitmap");
}

TEST(CliArgs, EmptyCommand) {
  const Args args = parse({});
  EXPECT_TRUE(args.empty());
}

TEST(CliArgs, RequireThrowsWhenMissing) {
  const Args args = parse({"generate"});
  EXPECT_THROW(args.require_string("out"), ArgError);
}

TEST(CliArgs, BadNumbersThrow) {
  EXPECT_THROW(parse({"x", "--n", "abc"}).get_int("n", 0), ArgError);
  EXPECT_THROW(parse({"x", "--f", "1.2.3"}).get_double("f", 0), ArgError);
  EXPECT_THROW(parse({"x", "--n", "-4"}).get_u64("n", 0), ArgError);
}

TEST(CliArgs, StrayPositionalThrows) {
  EXPECT_THROW(parse({"filter", "stray"}), ArgError);
}

TEST(CliArgs, UnconsumedDetection) {
  const Args args = parse({"x", "--used", "1", "--typo", "2"});
  EXPECT_EQ(args.get_int("used", 0), 1);
  const auto leftovers = args.unconsumed();
  ASSERT_EQ(leftovers.size(), 1u);
  EXPECT_EQ(leftovers[0], "typo");
}

// ---------------- Commands (end-to-end through run()) ----------------

class CliCommandTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("upbound_cli_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  int run_cli(std::initializer_list<const char*> tokens) {
    std::vector<const char*> argv{"upbound"};
    argv.insert(argv.end(), tokens.begin(), tokens.end());
    return run(static_cast<int>(argv.size()), argv.data());
  }

  std::filesystem::path dir_;
};

TEST_F(CliCommandTest, GenerateAnalyzeFilterPipeline) {
  const std::string trace = (dir_ / "trace.pcap").string();
  const std::string filtered = (dir_ / "filtered.pcap").string();

  ASSERT_EQ(run_cli({"generate", "--out", trace.c_str(), "--duration", "5",
                     "--rate", "30", "--bandwidth", "2e6", "--seed", "5"}),
            0);
  ASSERT_TRUE(std::filesystem::exists(trace));

  EXPECT_EQ(run_cli({"analyze", "--pcap", trace.c_str()}), 0);

  ASSERT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--filter", "bitmap",
                     "--pd", "1.0", "--out", filtered.c_str()}),
            0);
  ASSERT_TRUE(std::filesystem::exists(filtered));

  // The filtered pcap holds strictly fewer packets than the original.
  PcapReader original{trace};
  PcapReader survivor{filtered};
  const std::size_t original_count = original.read_all().size();
  const std::size_t survivor_count = survivor.read_all().size();
  EXPECT_GT(original_count, 0u);
  EXPECT_LT(survivor_count, original_count);
  EXPECT_GT(survivor_count, original_count / 2);
}

TEST_F(CliCommandTest, FilterVariants) {
  const std::string trace = (dir_ / "trace.pcap").string();
  ASSERT_EQ(run_cli({"generate", "--out", trace.c_str(), "--duration", "3",
                     "--rate", "20", "--bandwidth", "1e6"}),
            0);
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--filter", "spi"}),
            0);
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--filter", "naive",
                     "--timeout", "10"}),
            0);
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--filter", "bitmap",
                     "--bits", "16", "--k", "3", "--dt", "2", "--m", "2",
                     "--hole-punching", "--low", "1e6", "--high", "2e6",
                     "--blocklist"}),
            0);
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--filter", "aging",
                     "--bits", "16", "--k", "5"}),
            0);
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--filter",
                     "bitmap-mt", "--bits", "16"}),
            0);
}

TEST_F(CliCommandTest, AdviseRuns) {
  EXPECT_EQ(run_cli({"advise", "--connections", "50000", "--bits", "20"}), 0);
}

TEST_F(CliCommandTest, PcapngFormatEndToEnd) {
  const std::string trace = (dir_ / "trace.pcapng").string();
  ASSERT_EQ(run_cli({"generate", "--out", trace.c_str(), "--format",
                     "pcapng", "--duration", "3", "--rate", "20",
                     "--bandwidth", "1e6"}),
            0);
  // Format auto-detected by magic, not extension.
  EXPECT_EQ(run_cli({"analyze", "--pcap", trace.c_str()}), 0);
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str()}), 0);
  EXPECT_EQ(run_cli({"generate", "--out", trace.c_str(), "--format",
                     "hdf5"}),
            2);
}

TEST_F(CliCommandTest, CompareRuns) {
  const std::string trace = (dir_ / "trace.pcap").string();
  ASSERT_EQ(run_cli({"generate", "--out", trace.c_str(), "--duration", "4",
                     "--rate", "25", "--bandwidth", "1e6"}),
            0);
  EXPECT_EQ(run_cli({"compare", "--pcap", trace.c_str(), "--bits", "16"}),
            0);
}

TEST_F(CliCommandTest, SaveAndLoadFilterState) {
  const std::string trace = (dir_ / "trace.pcap").string();
  const std::string state = (dir_ / "bitmap.state").string();
  ASSERT_EQ(run_cli({"generate", "--out", trace.c_str(), "--duration", "3",
                     "--rate", "20", "--bandwidth", "1e6"}),
            0);
  ASSERT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--save-state",
                     state.c_str()}),
            0);
  ASSERT_TRUE(std::filesystem::exists(state));
  // Resume from the snapshot.
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--load-state",
                     state.c_str()}),
            0);
  // Malformed snapshot rejected.
  {
    std::FILE* f = std::fopen(state.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("garbage", f);
    std::fclose(f);
  }
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--load-state",
                     state.c_str()}),
            2);
  // --save-state with a non-bitmap filter is an error.
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--filter", "spi",
                     "--save-state", state.c_str()}),
            2);
}

TEST_F(CliCommandTest, HelpAndErrors) {
  EXPECT_EQ(run_cli({"help"}), 0);
  EXPECT_EQ(run_cli({}), 2);
  EXPECT_EQ(run_cli({"frobnicate"}), 2);
  EXPECT_EQ(run_cli({"generate"}), 2);  // missing --out
  EXPECT_EQ(run_cli({"analyze", "--pcap", "/does/not/exist.pcap"}), 1);
  EXPECT_EQ(run_cli({"filter", "--pcap", "x", "--filter", "quantum"}), 2);
  EXPECT_EQ(run_cli({"advise", "--bogus-option", "3"}), 2);
}

TEST_F(CliCommandTest, BadNetworkRejected) {
  EXPECT_EQ(run_cli({"analyze", "--pcap", "x", "--network", "not-a-cidr"}),
            2);
}

TEST_F(CliCommandTest, SeedFlagAcceptedAcrossCommands) {
  const std::string trace = (dir_ / "trace.pcap").string();
  ASSERT_EQ(run_cli({"generate", "--out", trace.c_str(), "--duration", "3",
                     "--rate", "20", "--bandwidth", "1e6", "--seed", "11"}),
            0);
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--seed", "11"}), 0);
  EXPECT_EQ(run_cli({"compare", "--pcap", trace.c_str(), "--bits", "16",
                     "--seed", "11"}),
            0);
}

TEST(CliDefaults, DefaultFilterPrefersTheBlockedBitmap) {
  // No special capability requested: the cache-resident layout wins.
  EXPECT_EQ(resolve_default_filter(false, false), "bitmap-blocked");
  // Snapshot or shared-view runs need the classic bitmap.
  EXPECT_EQ(resolve_default_filter(true, false), "bitmap");
  EXPECT_EQ(resolve_default_filter(false, true), "bitmap");
  EXPECT_EQ(resolve_default_filter(true, true), "bitmap");
}

TEST_F(CliCommandTest, TenancyFlagsRunEndToEnd) {
  const std::string trace = (dir_ / "trace.pcap").string();
  ASSERT_EQ(run_cli({"generate", "--out", trace.c_str(), "--duration", "3",
                     "--rate", "20", "--bandwidth", "1e6", "--seed", "4"}),
            0);
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--tenants", "8"}),
            0);
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--tenants", "8",
                     "--tenant-mode", "prefix24", "--tenant-cap", "4"}),
            0);
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--filter",
                     "hierarchical", "--fine", "bitmap-blocked"}),
            0);
  EXPECT_EQ(run_cli({"compare", "--pcap", trace.c_str(), "--bits", "14",
                     "--tenants", "4"}),
            0);
}

TEST_F(CliCommandTest, TenantScenarioGeneratesAReplayableCapture) {
  const std::string trace = (dir_ / "swarm.pcap").string();
  ASSERT_EQ(run_cli({"generate", "--out", trace.c_str(), "--tenant-scenario",
                     "swarm-join", "--tenants", "6", "--duration", "5",
                     "--seed", "3"}),
            0);
  // The scenario's subscriber pool lives in 10.40.0.0/16.
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--network",
                     "10.40.0.0/16", "--tenants", "6"}),
            0);
  EXPECT_EQ(run_cli({"generate", "--out", trace.c_str(), "--tenant-scenario",
                     "tsunami"}),
            2);
}

TEST_F(CliCommandTest, TenancyFlagGuards) {
  const std::string trace = (dir_ / "trace.pcap").string();
  ASSERT_EQ(run_cli({"generate", "--out", trace.c_str(), "--duration", "2",
                     "--rate", "10", "--bandwidth", "1e6"}),
            0);
  const std::string state = (dir_ / "state.bin").string();
  // Mode/cap without --tenants.
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--tenant-mode",
                     "prefix24"}),
            2);
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--tenant-cap",
                     "4"}),
            2);
  // Unknown mode.
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--tenants", "4",
                     "--tenant-mode", "household"}),
            2);
  // Tenancy has no snapshot format and is shard-local by design.
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--tenants", "4",
                     "--save-state", state.c_str()}),
            2);
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--tenants", "4",
                     "--threads", "2", "--shard-mode", "shared"}),
            2);
}

TEST_F(CliCommandTest, AttackRunsAndReportIsByteStable) {
  const std::string out_a = (dir_ / "report_a.jsonl").string();
  const std::string out_b = (dir_ / "report_b.jsonl").string();
  ASSERT_EQ(run_cli({"attack", "--scenario", "forgery,rotation", "--seed",
                     "42", "--duration", "12", "--rate", "20", "--bandwidth",
                     "1e6", "--bits", "12", "--dt", "1", "--out",
                     out_a.c_str()}),
            0);
  ASSERT_EQ(run_cli({"attack", "--scenario", "forgery,rotation", "--seed",
                     "42", "--duration", "12", "--rate", "20", "--bandwidth",
                     "1e6", "--bits", "12", "--dt", "1", "--threads", "3",
                     "--out", out_b.c_str()}),
            0);
  std::ifstream a{out_a}, b{out_b};
  const std::string bytes_a{std::istreambuf_iterator<char>{a}, {}};
  const std::string bytes_b{std::istreambuf_iterator<char>{b}, {}};
  EXPECT_FALSE(bytes_a.empty());
  // Same seed, different thread count: byte-identical reports.
  EXPECT_EQ(bytes_a, bytes_b);
}

TEST_F(CliCommandTest, ZooBackendsRunEndToEnd) {
  const std::string trace = (dir_ / "trace.pcap").string();
  ASSERT_EQ(run_cli({"generate", "--out", trace.c_str(), "--duration", "3",
                     "--rate", "20", "--bandwidth", "1e6"}),
            0);
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--filter",
                     "retouched", "--bits", "14", "--retouch-fraction",
                     "0.05", "--retouch-seed", "7"}),
            0);
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--filter",
                     "counting", "--bits", "14", "--k", "3", "--dt", "2"}),
            0);
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--filter",
                     "counting", "--no-close-delete"}),
            0);
  // Bad retouch fraction surfaces as a usage error, not a crash.
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--filter",
                     "retouched", "--retouch-fraction", "0.7"}),
            2);
}

TEST_F(CliCommandTest, SnapshotFlagsRequireASnapshotCapableBackend) {
  const std::string trace = (dir_ / "trace.pcap").string();
  const std::string state = (dir_ / "state.bin").string();
  ASSERT_EQ(run_cli({"generate", "--out", trace.c_str(), "--duration", "3",
                     "--rate", "20", "--bandwidth", "1e6"}),
            0);
  // The counting and retouched backends advertise no snapshot support;
  // both save and load must fail fast with a usage error (before any
  // replay work happens), for both flags.
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--filter",
                     "counting", "--save-state", state.c_str()}),
            2);
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--filter",
                     "retouched", "--save-state", state.c_str()}),
            2);
  EXPECT_FALSE(std::filesystem::exists(state));
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--filter",
                     "counting", "--load-state", state.c_str()}),
            2);
}

TEST_F(CliCommandTest, TuneRequiresAnOccupancyBackendAndSingleThread) {
  const std::string trace = (dir_ / "trace.pcap").string();
  ASSERT_EQ(run_cli({"generate", "--out", trace.c_str(), "--duration", "3",
                     "--rate", "20", "--bandwidth", "1e6"}),
            0);
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--tune"}), 0);
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--filter",
                     "counting", "--tune", "--tune-target", "0.02"}),
            0);
  // No occupancy signal on spi; recommend-only tuning cannot run.
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--filter", "spi",
                     "--tune"}),
            2);
  // The tuner samples one live filter; the sharded engine has many.
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--tune",
                     "--threads", "2"}),
            2);
  // --tune-target without --tune and out-of-range targets are rejected.
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--tune-target",
                     "0.02"}),
            2);
  EXPECT_EQ(run_cli({"filter", "--pcap", trace.c_str(), "--tune",
                     "--tune-target", "1.5"}),
            2);
}

TEST_F(CliCommandTest, AttackRejectsBadArguments) {
  EXPECT_EQ(run_cli({"attack", "--scenario", "ddos"}), 2);
  EXPECT_EQ(run_cli({"attack", "--filters", "bitmap,chrome"}), 2);
  EXPECT_EQ(run_cli({"attack", "--intensity", "0"}), 2);
  EXPECT_EQ(run_cli({"attack", "--shards", "0"}), 2);
}

}  // namespace
}  // namespace upbound::cli
