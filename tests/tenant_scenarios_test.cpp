#include "sim/tenant_scenarios.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

namespace upbound {
namespace {

TenantScenarioConfig base_config() {
  TenantScenarioConfig config;
  config.tenants = 8;
  config.duration = Duration::sec(40.0);
  config.seed = 7;
  return config;
}

TEST(TenantScenarios, NamesRoundTrip) {
  for (const TenantScenarioKind kind : all_tenant_scenarios()) {
    TenantScenarioKind parsed;
    ASSERT_TRUE(parse_tenant_scenario(tenant_scenario_name(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  TenantScenarioKind parsed;
  EXPECT_TRUE(parse_tenant_scenario("flash", &parsed));
  EXPECT_EQ(parsed, TenantScenarioKind::kFlashCrowd);
  EXPECT_FALSE(parse_tenant_scenario("tsunami", &parsed));
}

TEST(TenantScenarios, SameSeedReproducesByteForByte) {
  for (const TenantScenarioKind kind : all_tenant_scenarios()) {
    SCOPED_TRACE(tenant_scenario_name(kind));
    const TenantScenarioTrace a = generate_tenant_scenario(kind, base_config());
    const TenantScenarioTrace b = generate_tenant_scenario(kind, base_config());
    ASSERT_EQ(a.packets.size(), b.packets.size());
    for (std::size_t i = 0; i < a.packets.size(); ++i) {
      ASSERT_EQ(a.packets[i].timestamp, b.packets[i].timestamp);
      ASSERT_EQ(a.packets[i].tuple, b.packets[i].tuple);
      ASSERT_EQ(a.packets[i].payload_size, b.packets[i].payload_size);
    }
    EXPECT_EQ(a.truth, b.truth);

    TenantScenarioConfig other = base_config();
    other.seed = 8;
    const TenantScenarioTrace c = generate_tenant_scenario(kind, other);
    EXPECT_NE(a.packets.size(), c.packets.size());
  }
}

TEST(TenantScenarios, PacketsAreTimeSortedAndInsideTheDuration) {
  for (const TenantScenarioKind kind : all_tenant_scenarios()) {
    SCOPED_TRACE(tenant_scenario_name(kind));
    const TenantScenarioTrace trace =
        generate_tenant_scenario(kind, base_config());
    ASSERT_FALSE(trace.packets.empty());
    EXPECT_TRUE(std::is_sorted(
        trace.packets.begin(), trace.packets.end(),
        [](const PacketRecord& x, const PacketRecord& y) {
          return x.timestamp < y.timestamp;
        }));
    // Exchanges start inside the duration; only the response/probe tail
    // (two response delays) may trail past it.
    EXPECT_LE(trace.packets.back().timestamp.sec(),
              base_config().duration.to_sec() + 1.0);
  }
}

TEST(TenantScenarios, GroundTruthMatchesTheTraceExactly) {
  for (const TenantScenarioKind kind : all_tenant_scenarios()) {
    SCOPED_TRACE(tenant_scenario_name(kind));
    const TenantScenarioTrace trace =
        generate_tenant_scenario(kind, base_config());
    const TenantTable table{TenantTableConfig{base_config().mode}};

    std::map<TenantId, TenantGroundTruth> recount;
    for (const PacketRecord& pkt : trace.packets) {
      const Direction dir = trace.network.classify(pkt);
      if (dir == Direction::kOutbound) {
        TenantGroundTruth& t = recount[table.tenant_of_outbound(pkt.tuple)];
        t.outbound_packets += 1;
        t.outbound_bytes += pkt.wire_size();
      } else {
        ASSERT_EQ(dir, Direction::kInbound);
        TenantGroundTruth& t = recount[table.tenant_of_inbound(pkt.tuple)];
        t.inbound_packets += 1;
        t.inbound_bytes += pkt.wire_size();
      }
    }

    ASSERT_EQ(recount.size(), trace.truth.size());
    for (const auto& [tenant, truth] : trace.truth) {
      const auto it = recount.find(tenant);
      ASSERT_NE(it, recount.end()) << table.label(tenant);
      EXPECT_EQ(it->second.outbound_packets, truth.outbound_packets)
          << table.label(tenant);
      EXPECT_EQ(it->second.outbound_bytes, truth.outbound_bytes)
          << table.label(tenant);
      EXPECT_EQ(it->second.inbound_packets, truth.inbound_packets)
          << table.label(tenant);
      EXPECT_EQ(it->second.inbound_bytes, truth.inbound_bytes)
          << table.label(tenant);
      EXPECT_LE(truth.unsolicited_inbound, truth.inbound_packets);
    }
  }
}

TEST(TenantScenarios, FlashCrowdAddsTenantsOnlyInsideTheWindow) {
  TenantScenarioConfig config = base_config();
  config.flash_tenant_multiple = 2.0;
  const TenantScenarioTrace trace =
      generate_tenant_scenario(TenantScenarioKind::kFlashCrowd, config);

  // More tenants than the steady-state population appear overall...
  EXPECT_GT(trace.truth.size(), config.tenants);

  // ...and every tenant beyond the steady base first transmits inside
  // the configured burst window.
  const TenantTable table{TenantTableConfig{config.mode}};
  std::map<TenantId, double> first_outbound;
  for (const PacketRecord& pkt : trace.packets) {
    if (trace.network.classify(pkt) != Direction::kOutbound) continue;
    const TenantId tenant = table.tenant_of_outbound(pkt.tuple);
    if (first_outbound.count(tenant) == 0) {
      first_outbound[tenant] = pkt.timestamp.sec();
    }
  }
  const double start =
      config.flash_start_frac * config.duration.to_sec();
  const double end = config.flash_end_frac * config.duration.to_sec();
  std::size_t burst_arrivals = 0;
  for (const auto& [tenant, t0] : first_outbound) {
    if (t0 >= start) {
      EXPECT_LE(t0, end) << table.label(tenant);
      ++burst_arrivals;
    }
  }
  EXPECT_GE(burst_arrivals, config.tenants);  // multiple 2.0 doubles it
}

TEST(TenantScenarios, SwarmJoinRampsOneTenantAndOnlyOne) {
  TenantScenarioConfig config = base_config();
  config.swarm_final_multiple = 24.0;
  const TenantScenarioTrace trace =
      generate_tenant_scenario(TenantScenarioKind::kSwarmJoin, config);

  // Exactly one tenant dominates upload volume by a wide margin.
  std::uint64_t top = 0;
  std::uint64_t second = 0;
  for (const auto& [tenant, truth] : trace.truth) {
    if (truth.outbound_bytes > top) {
      second = top;
      top = truth.outbound_bytes;
    } else if (truth.outbound_bytes > second) {
      second = truth.outbound_bytes;
    }
  }
  ASSERT_GT(second, 0u);
  EXPECT_GT(top, 4 * second);
}

TEST(TenantScenarios, DiurnalSwellPeaksMidTrace) {
  TenantScenarioConfig config = base_config();
  config.swell_ratio = 8.0;
  const TenantScenarioTrace trace =
      generate_tenant_scenario(TenantScenarioKind::kDiurnalSwell, config);

  const double third = config.duration.to_sec() / 3.0;
  std::size_t early = 0;
  std::size_t mid = 0;
  for (const PacketRecord& pkt : trace.packets) {
    const double t = pkt.timestamp.sec();
    if (t < third) {
      ++early;
    } else if (t < 2.0 * third) {
      ++mid;
    }
  }
  EXPECT_GT(mid, 2 * early);
}

}  // namespace
}  // namespace upbound
