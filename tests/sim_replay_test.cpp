// Replay-level integration: the Fig. 8 drop-rate parity between SPI and
// bitmap filters, and the Fig. 9 upload bounding, on a calibrated trace.
#include "filter/filter_registry.h"
#include "sim/replay.h"

#include <gtest/gtest.h>

#include "filter/bitmap_filter.h"
#include "filter/naive_filter.h"
#include "filter/spi_filter.h"
#include "trace/campus.h"

namespace upbound {
namespace {

const GeneratedTrace& shared_trace() {
  static const GeneratedTrace trace = [] {
    CampusTraceConfig config;
    config.duration = Duration::sec(40.0);
    config.connections_per_sec = 60.0;
    config.bandwidth_bps = 12e6;
    config.seed = 3;
    return generate_campus_trace(config);
  }();
  return trace;
}

std::unique_ptr<EdgeRouter> router_with(std::unique_ptr<StateFilter> filter,
                                        std::unique_ptr<DropPolicy> policy,
                                        bool blocklist = false) {
  EdgeRouterConfig config;
  config.network = shared_trace().network;
  config.track_blocked_connections = blocklist;
  return std::make_unique<EdgeRouter>(std::move(config), std::move(filter),
                                      std::move(policy));
}

BitmapFilterConfig paper_bitmap() {
  BitmapFilterConfig config;   // {4 x 2^20}, dt = 5 s, Te = 20 s, m = 3
  return config;
}

TEST(SimReplay, Fig8DropRateParitySpiVsBitmap) {
  const GeneratedTrace& trace = shared_trace();

  auto spi = router_with(make_state_filter(spi_filter_spec(SpiFilterConfig{})),
                         std::make_unique<ConstantDropPolicy>(1.0));
  auto bitmap = router_with(make_state_filter(bitmap_filter_spec(paper_bitmap())),
                            std::make_unique<ConstantDropPolicy>(1.0));

  const ReplayResult spi_result =
      replay_trace(trace.packets, *spi, trace.network);
  const ReplayResult bitmap_result =
      replay_trace(trace.packets, *bitmap, trace.network);

  const double spi_rate = spi_result.stats.inbound_drop_rate();
  const double bitmap_rate = bitmap_result.stats.inbound_drop_rate();

  // Both filters drop only a small share of inbound packets (unsolicited
  // inbound requests) and agree closely -- the Fig. 8 slope-1 result. The
  // SPI filter sees connection closes so it drops at least as much.
  EXPECT_GT(spi_rate, 0.0);
  EXPECT_GT(bitmap_rate, 0.0);
  EXPECT_LT(spi_rate, 0.30);
  EXPECT_LT(bitmap_rate, 0.30);
  EXPECT_NEAR(spi_rate, bitmap_rate, 0.03);
  EXPECT_GE(spi_rate, bitmap_rate - 0.005);
}

TEST(SimReplay, NaiveAndBitmapNearlyIdentical) {
  // The bitmap filter approximates the naive exact-timer filter with the
  // same Te; their decisions should almost coincide (false positives are
  // rare at this load).
  const GeneratedTrace& trace = shared_trace();

  NaiveFilterConfig naive_config;
  naive_config.state_timeout = paper_bitmap().expiry_timer();
  auto naive = router_with(make_state_filter(naive_filter_spec(naive_config)),
                           std::make_unique<ConstantDropPolicy>(1.0));
  auto bitmap = router_with(make_state_filter(bitmap_filter_spec(paper_bitmap())),
                            std::make_unique<ConstantDropPolicy>(1.0));

  const ReplayResult naive_result =
      replay_trace(trace.packets, *naive, trace.network);
  const ReplayResult bitmap_result =
      replay_trace(trace.packets, *bitmap, trace.network);

  EXPECT_NEAR(naive_result.stats.inbound_drop_rate(),
              bitmap_result.stats.inbound_drop_rate(), 0.01);
}

TEST(SimReplay, Fig9UploadBoundedByRedPolicy) {
  const GeneratedTrace& trace = shared_trace();

  // Thresholds well under the offered uplink load so the limiter must act:
  // offered ~10 Mbps upload; bound it to H = 6 Mbps.
  const double kLow = 3e6;
  const double kHigh = 6e6;
  auto limited = router_with(make_state_filter(bitmap_filter_spec(paper_bitmap())),
                             std::make_unique<RedDropPolicy>(kLow, kHigh),
                             /*blocklist=*/true);
  const ReplayResult result =
      replay_trace(trace.packets, *limited, trace.network);

  const ReplayResult original = offered_load(trace.packets, trace.network);

  const double offered_up = original.offered_outbound.total();
  const double carried_up = result.passed_outbound.total();
  EXPECT_GT(offered_up, 0.0);
  // The limiter must remove a substantial share of upload...
  EXPECT_LT(carried_up, offered_up * 0.85);
  // ...without touching solicited traffic excessively: downlink survives
  // far better than uplink is cut.
  const double offered_down = original.offered_inbound.total();
  const double carried_down = result.passed_inbound.total();
  EXPECT_GT(carried_down, offered_down * 0.4);

  // Post-filter uplink rate should hover near/below H for the busy middle
  // of the trace: no sustained excursions far above the bound.
  const auto rates = result.passed_outbound.rates();
  std::size_t above = 0, busy = 0;
  for (std::size_t i = 5; i + 5 < rates.size(); ++i) {
    ++busy;
    if (rates[i] * 8.0 > kHigh * 2.0) ++above;
  }
  ASSERT_GT(busy, 0u);
  EXPECT_LT(static_cast<double>(above) / static_cast<double>(busy), 0.15);
}

TEST(SimReplay, UnlimitedRouterCarriesEverything) {
  const GeneratedTrace& trace = shared_trace();
  auto open_router =
      router_with(make_state_filter(bitmap_filter_spec(paper_bitmap())),
                  std::make_unique<ConstantDropPolicy>(0.0));
  const ReplayResult result =
      replay_trace(trace.packets, *open_router, trace.network);
  EXPECT_EQ(result.stats.inbound_dropped_packets, 0u);
  EXPECT_DOUBLE_EQ(result.passed_outbound.total(),
                   result.offered_outbound.total());
  EXPECT_DOUBLE_EQ(result.passed_inbound.total(),
                   result.offered_inbound.total());
}

TEST(SimReplay, OfferedLoadMatchesTraceTotals) {
  const GeneratedTrace& trace = shared_trace();
  const ReplayResult original = offered_load(trace.packets, trace.network);
  EXPECT_DOUBLE_EQ(original.offered_outbound.total(),
                   static_cast<double>(trace.outbound_bytes));
  EXPECT_DOUBLE_EQ(original.offered_inbound.total(),
                   static_cast<double>(trace.inbound_bytes));
}

TEST(SimReplay, BlocklistAmplifiesSuppression) {
  const GeneratedTrace& trace = shared_trace();
  auto with_blocklist =
      router_with(make_state_filter(bitmap_filter_spec(paper_bitmap())),
                  std::make_unique<ConstantDropPolicy>(1.0),
                  /*blocklist=*/true);
  auto without_blocklist =
      router_with(make_state_filter(bitmap_filter_spec(paper_bitmap())),
                  std::make_unique<ConstantDropPolicy>(1.0),
                  /*blocklist=*/false);
  const ReplayResult with_result =
      replay_trace(trace.packets, *with_blocklist, trace.network);
  const ReplayResult without_result =
      replay_trace(trace.packets, *without_blocklist, trace.network);

  // Per-connection suppression removes the upload bytes that blocked
  // inbound requests would have triggered.
  EXPECT_GT(with_result.stats.suppressed_outbound_bytes, 0u);
  EXPECT_LT(with_result.passed_outbound.total(),
            without_result.passed_outbound.total());
}

}  // namespace
}  // namespace upbound
