// Cross-module integration: generated trace -> pcap on disk -> read back
// -> analyzer / filter. The on-disk round trip must not change any
// decision the in-memory pipeline makes.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "analyzer/analyzer.h"
#include "filter/bitmap_filter.h"
#include "filter/filter_registry.h"
#include "net/pcap.h"
#include "sim/replay.h"
#include "trace/campus.h"

namespace upbound {
namespace {

class PcapPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CampusTraceConfig config;
    config.duration = Duration::sec(10.0);
    config.connections_per_sec = 40.0;
    config.bandwidth_bps = 4e6;
    config.seed = 17;
    trace_ = new GeneratedTrace(generate_campus_trace(config));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }

  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("upbound_pipeline_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name()) +
              ".pcap"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  Trace round_trip() {
    {
      PcapWriter writer{path_};
      writer.write_all(trace_->packets);
    }
    PcapReader reader{path_};
    return reader.read_all();
  }

  static GeneratedTrace* trace_;
  std::string path_;
};

GeneratedTrace* PcapPipelineTest::trace_ = nullptr;

TEST_F(PcapPipelineTest, RoundTripPreservesEveryPacket) {
  const Trace replayed = round_trip();
  ASSERT_EQ(replayed.size(), trace_->packets.size());
  for (std::size_t i = 0; i < replayed.size(); i += 101) {
    EXPECT_EQ(replayed[i].tuple, trace_->packets[i].tuple);
    EXPECT_EQ(replayed[i].timestamp, trace_->packets[i].timestamp);
    EXPECT_EQ(replayed[i].flags, trace_->packets[i].flags);
    EXPECT_EQ(replayed[i].payload_size, trace_->packets[i].payload_size);
    EXPECT_EQ(replayed[i].payload, trace_->packets[i].payload);
    EXPECT_TRUE(replayed[i].checksum_valid);
  }
}

TEST_F(PcapPipelineTest, ClassificationIdenticalAcrossDisk) {
  const Trace replayed = round_trip();

  TrafficAnalyzer direct{trace_->network};
  for (const PacketRecord& pkt : trace_->packets) direct.process(pkt);
  const AnalyzerReport direct_report = direct.finish();

  TrafficAnalyzer from_disk{trace_->network};
  for (const PacketRecord& pkt : replayed) from_disk.process(pkt);
  const AnalyzerReport disk_report = from_disk.finish();

  ASSERT_EQ(direct_report.total_connections, disk_report.total_connections);
  for (const AppProtocol app : kAllAppProtocols) {
    EXPECT_EQ(direct_report.share_of(app).connections,
              disk_report.share_of(app).connections)
        << app_protocol_name(app);
  }
}

TEST_F(PcapPipelineTest, FilterDecisionsIdenticalAcrossDisk) {
  const Trace replayed = round_trip();
  const auto run = [&](const Trace& packets) {
    EdgeRouterConfig config;
    config.network = trace_->network;
    EdgeRouter router{config,
                      make_state_filter(bitmap_filter_spec(BitmapFilterConfig{})),
                      std::make_unique<ConstantDropPolicy>(1.0)};
    std::string decisions;
    for (const PacketRecord& pkt : packets) {
      decisions += static_cast<char>('0' + static_cast<int>(
                                               router.process(pkt)));
    }
    return decisions;
  };
  EXPECT_EQ(run(trace_->packets), run(replayed));
}

TEST_F(PcapPipelineTest, CorruptedPayloadSkippedByClassifier) {
  {
    PcapWriter writer{path_};
    writer.write_all(trace_->packets);
  }
  // Flip one byte inside the payload area of every 10th record, walking
  // the pcap structure so record framing stays intact. The classifier
  // must ignore corrupted packets rather than classify from damaged
  // bytes.
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 24, SEEK_SET);  // skip the global header
    std::size_t index = 0;
    for (;;) {
      std::uint8_t rec[16];
      if (std::fread(rec, 1, sizeof(rec), f) != sizeof(rec)) break;
      const std::uint32_t incl_len =
          rec[8] | (rec[9] << 8) | (static_cast<std::uint32_t>(rec[10]) << 16) |
          (static_cast<std::uint32_t>(rec[11]) << 24);
      const long data_start = std::ftell(f);
      if (index % 10 == 0 && incl_len > 60) {
        std::fseek(f, data_start + 58, SEEK_SET);  // inside the L4 segment
        const int c = std::fgetc(f);
        std::fseek(f, data_start + 58, SEEK_SET);
        std::fputc(c ^ 0x5a, f);
        std::fflush(f);
      }
      std::fseek(f, data_start + static_cast<long>(incl_len), SEEK_SET);
      ++index;
    }
    std::fclose(f);
  }
  PcapReader reader{path_};
  std::size_t corrupted = 0;
  std::size_t total = 0;
  TrafficAnalyzer analyzer{trace_->network};
  while (auto pkt = reader.next()) {
    if (!pkt->checksum_valid) ++corrupted;
    ++total;
    analyzer.process(*pkt);
  }
  EXPECT_GT(corrupted, 0u);
  EXPECT_GT(total, trace_->packets.size() / 2);  // most frames survive
  // No crash, and the analyzer still produces a coherent report.
  const AnalyzerReport report = analyzer.finish();
  EXPECT_GT(report.total_connections, 0u);
}

TEST_F(PcapPipelineTest, SnaplenCaptureStillClassifies) {
  // A tight snaplen (headers + 96 payload bytes) is what the paper's
  // header traces look like; classification relies on captured prefixes.
  {
    PcapWriter writer{path_, /*snaplen=*/14 + 20 + 20 + 96};
    writer.write_all(trace_->packets);
  }
  PcapReader reader{path_};
  TrafficAnalyzer analyzer{trace_->network};
  while (auto pkt = reader.next()) analyzer.process(*pkt);
  const AnalyzerReport report = analyzer.finish();
  // P2P still identified from the short prefixes.
  EXPECT_GT(report.share_of(AppProtocol::kBitTorrent).connections, 0u);
  EXPECT_GT(report.share_of(AppProtocol::kEdonkey).connections, 0u);
}

}  // namespace
}  // namespace upbound
