#include "filter/filter_registry.h"
#include "sim/filter_bank.h"

#include <gtest/gtest.h>

#include "filter/bitmap_filter.h"
#include "trace/campus.h"

namespace upbound {
namespace {

ClientNetwork net_of(const char* cidr) {
  return ClientNetwork{{*Cidr::parse(cidr)}};
}

PacketRecord pkt(Ipv4Addr src, Ipv4Addr dst, double t_sec = 0.0,
                 std::uint32_t payload = 100) {
  PacketRecord p;
  p.timestamp = SimTime::from_sec(t_sec);
  p.tuple = FiveTuple{Protocol::kTcp, src, 1000, dst, 2000};
  p.payload_size = payload;
  return p;
}

FilterBank two_site_bank() {
  FilterBank bank;
  bank.add_bitmap_site("site-a", net_of("10.1.0.0/24"),
                       BitmapFilterConfig{}, 1e3, 2e3);
  bank.add_bitmap_site("site-b", net_of("10.2.0.0/24"),
                       BitmapFilterConfig{}, 1e9, 2e9);
  return bank;
}

const Ipv4Addr kHostA{10, 1, 0, 5};
const Ipv4Addr kHostB{10, 2, 0, 5};
const Ipv4Addr kExternal{61, 2, 3, 4};

TEST(FilterBank, SiteLookup) {
  const FilterBank bank = two_site_bank();
  EXPECT_EQ(bank.site_of(kHostA), 0u);
  EXPECT_EQ(bank.site_of(kHostB), 1u);
  EXPECT_EQ(bank.site_of(kExternal), FilterBank::kNoSite);
  EXPECT_EQ(bank.site_count(), 2u);
  EXPECT_EQ(bank.site_name(0), "site-a");
}

TEST(FilterBank, RoutesToOwningSite) {
  FilterBank bank = two_site_bank();
  // Outbound from site A passes and is accounted on site A's router.
  EXPECT_EQ(bank.process(pkt(kHostA, kExternal)),
            RouterDecision::kPassedOutbound);
  EXPECT_EQ(bank.site_router(0).stats().outbound_packets, 1u);
  EXPECT_EQ(bank.site_router(1).stats().outbound_packets, 0u);
}

TEST(FilterBank, PerSitePolicyIndependent) {
  FilterBank bank = two_site_bank();
  // Saturate site A's tiny RED thresholds with one outbound packet.
  bank.process(pkt(kHostA, kExternal, 0.0, 5000));
  // Unsolicited inbound to site A: dropped (past its H threshold).
  EXPECT_EQ(bank.process(pkt(kExternal, kHostA, 0.1)),
            RouterDecision::kDroppedByPolicy);
  // Same situation at site B, whose thresholds are enormous: passes.
  bank.process(pkt(kHostB, kExternal, 0.0, 5000));
  EXPECT_EQ(bank.process(pkt(kExternal, kHostB, 0.1)),
            RouterDecision::kPassedInbound);
}

TEST(FilterBank, UnguardedTransitIgnored) {
  FilterBank bank = two_site_bank();
  EXPECT_EQ(bank.process(pkt(kExternal, Ipv4Addr{8, 8, 8, 8})),
            RouterDecision::kIgnored);
  EXPECT_EQ(bank.unguarded_packets(), 1u);
}

TEST(FilterBank, InterSiteTrafficHandledByFirstOwner) {
  FilterBank bank = two_site_bank();
  // A->B is outbound for site A (source owner wins).
  EXPECT_EQ(bank.process(pkt(kHostA, kHostB)),
            RouterDecision::kPassedOutbound);
  EXPECT_EQ(bank.site_router(0).stats().outbound_packets, 1u);
}

TEST(FilterBank, StateScalesWithSitesNotFlows) {
  FilterBank bank = two_site_bank();
  const std::size_t before = bank.total_filter_state_bytes();
  EXPECT_EQ(before, 2u * 512 * 1024);
  // Hammer with thousands of flows: constant.
  for (std::uint32_t i = 0; i < 5000; ++i) {
    bank.process(pkt(Ipv4Addr{0x0a010000u + (i % 200)},
                     Ipv4Addr{0x3d000000u + i}, i * 0.001));
  }
  EXPECT_EQ(bank.total_filter_state_bytes(), before);
}

TEST(FilterBank, NullRouterRejected) {
  FilterBank bank;
  EXPECT_THROW(bank.add_site("x", net_of("10.0.0.0/8"), nullptr),
               std::invalid_argument);
}

TEST(FilterBank, EndToEndTwoTraces) {
  // Replay two sites' traces interleaved through one bank; per-site stats
  // must match running each site's router alone.
  CampusTraceConfig config_a;
  config_a.duration = Duration::sec(8.0);
  config_a.connections_per_sec = 30.0;
  config_a.bandwidth_bps = 2e6;
  config_a.seed = 1;
  config_a.network.client_prefix = *Cidr::parse("10.1.0.0/24");
  const GeneratedTrace trace_a = generate_campus_trace(config_a);

  CampusTraceConfig config_b = config_a;
  config_b.seed = 2;
  config_b.network.client_prefix = *Cidr::parse("10.2.0.0/24");
  const GeneratedTrace trace_b = generate_campus_trace(config_b);

  // Interleave by timestamp.
  Trace merged;
  merged.reserve(trace_a.packets.size() + trace_b.packets.size());
  std::merge(trace_a.packets.begin(), trace_a.packets.end(),
             trace_b.packets.begin(), trace_b.packets.end(),
             std::back_inserter(merged),
             [](const PacketRecord& x, const PacketRecord& y) {
               return x.timestamp < y.timestamp;
             });

  FilterBank bank = two_site_bank();
  for (const PacketRecord& p : merged) bank.process(p);

  EdgeRouterConfig solo_config;
  solo_config.network = trace_a.network;
  EdgeRouter solo{solo_config,
                  make_state_filter(bitmap_filter_spec(BitmapFilterConfig{})),
                  std::make_unique<RedDropPolicy>(1e3, 2e3)};
  for (const PacketRecord& p : trace_a.packets) solo.process(p);

  EXPECT_EQ(bank.site_router(0).stats().outbound_packets,
            solo.stats().outbound_packets);
  EXPECT_EQ(bank.site_router(0).stats().inbound_dropped_packets,
            solo.stats().inbound_dropped_packets);
}

}  // namespace
}  // namespace upbound
