// The backend zoo: properties of the new registry-driven backends.
//
//  - A registry-enumerated no-false-negative property test: every backend
//    advertising kCapNoFalseNegative must admit inbound traffic for any
//    connection marked within its own guaranteed_window(). New backends
//    are enrolled automatically by registering.
//  - RetouchedBitmapFilter: the Donnet et al. trade -- admissions are a
//    strict subset of the plain bitmap's, fraction 0 is bit-identical to
//    the bitmap, and the per-epoch mask is deterministic with the
//    expected density.
//  - CountingFilter: per-tuple deletion on TCP close, deletion isolation,
//    generational expiry, occupancy, and the fault-plane cell hook.
//  - AdaptiveTuner: rotation-boundary folding, EWMA smoothing, and the
//    Eq. 5/6 recommendation math against the closed forms in params.h.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "filter/adaptive_tuner.h"
#include "filter/bitmap_filter.h"
#include "filter/counting_filter.h"
#include "filter/filter_registry.h"
#include "filter/params.h"
#include "filter/retouched_bitmap.h"
#include "util/rng.h"

namespace upbound {
namespace {

FiveTuple random_tuple(Rng& rng) {
  return FiveTuple{rng.next_bool(0.5) ? Protocol::kTcp : Protocol::kUdp,
                   Ipv4Addr{0x8c701e00u | static_cast<std::uint32_t>(
                                              rng.next_below(256))},
                   static_cast<std::uint16_t>(rng.next_range(1024, 65535)),
                   Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())},
                   static_cast<std::uint16_t>(rng.next_range(1, 65535))};
}

/// Data packet with no TCP flags: never triggers close-side deletion and
/// never closes an SPI flow, so it is safe for every backend.
PacketRecord packet(const FiveTuple& t, double t_sec) {
  PacketRecord pkt;
  pkt.timestamp = SimTime::from_sec(t_sec);
  pkt.tuple = t;
  pkt.payload_size = 100;
  return pkt;
}

// ---------------- Registry-enumerated no-FN property --------------------

std::vector<std::string> no_false_negative_backends() {
  std::vector<std::string> out;
  for (const BackendDescriptor& backend :
       FilterRegistry::instance().descriptors()) {
    if (backend.has(kCapNoFalseNegative)) out.push_back(backend.name);
  }
  return out;
}

class NoFalseNegativeWindow : public ::testing::TestWithParam<std::string> {};

TEST_P(NoFalseNegativeWindow, MarkedConnectionsAdmitWithinGuaranteedWindow) {
  const BackendDescriptor& backend =
      FilterRegistry::instance().at(GetParam());
  ASSERT_TRUE(backend.has(kCapNoFalseNegative));

  // Small geometry: collisions are welcome (they can only create false
  // positives, never false negatives). Exact-state backends ignore the
  // geometry keys and use their timeout defaults.
  MapFilterArgs args;
  args.set("bits", "12").set("k", "4").set("m", "3").set("dt", "2");
  const FilterSpec spec = backend.parse(args);
  const Duration window = backend.guaranteed_window(spec);
  ASSERT_GT(window, Duration{});
  const std::unique_ptr<StateFilter> filter = make_state_filter(spec);

  struct Flow {
    FiveTuple tuple;
    SimTime last_mark;
    bool marked = false;
  };
  Rng rng{20260809};
  std::vector<Flow> flows;
  for (int i = 0; i < 64; ++i) {
    flows.push_back(Flow{random_tuple(rng), SimTime::origin(), false});
  }

  int must_admit_probes = 0;
  double t = 0.0;
  while (t < 30.0) {
    t += rng.exponential(0.01);
    const SimTime now = SimTime::from_sec(t);
    filter->advance_time(now);
    Flow& flow = flows[rng.next_below(flows.size())];
    if (rng.next_bool(0.6)) {
      filter->record_outbound(packet(flow.tuple, t));
      flow.last_mark = now;
      flow.marked = true;
    } else {
      const bool admits =
          filter->admits_inbound(packet(flow.tuple.inverse(), t));
      if (flow.marked && now - flow.last_mark < window) {
        ++must_admit_probes;
        ASSERT_TRUE(admits)
            << backend.name << ": false negative at t=" << t
            << " (marked " << (now - flow.last_mark).to_sec()
            << "s ago, window " << window.to_sec() << "s)";
      }
    }
  }
  EXPECT_GT(must_admit_probes, 500);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, NoFalseNegativeWindow,
    ::testing::ValuesIn(no_false_negative_backends()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;  // gtest names reject '-'
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------- Retouched bitmap --------------------------------------

RetouchedBitmapConfig small_retouched(double fraction) {
  RetouchedBitmapConfig config;
  config.bitmap.log2_bits = 10;  // small: plenty of FP collisions to kill
  config.bitmap.vector_count = 4;
  config.bitmap.hash_count = 3;
  config.bitmap.rotate_interval = Duration::sec(5.0);
  config.retouch_fraction = fraction;
  return config;
}

TEST(RetouchedBitmap, FractionZeroIsBitIdenticalToPlainBitmap) {
  const RetouchedBitmapConfig config = small_retouched(0.0);
  RetouchedBitmapFilter retouched{config};
  BitmapFilter plain{config.bitmap};

  Rng rng{991};
  std::vector<FiveTuple> pool;
  for (int i = 0; i < 200; ++i) pool.push_back(random_tuple(rng));
  double t = 0.0;
  while (t < 40.0) {
    t += rng.exponential(0.02);
    const SimTime now = SimTime::from_sec(t);
    retouched.advance_time(now);
    plain.advance_time(now);
    const FiveTuple& tuple = pool[rng.next_below(pool.size())];
    if (rng.next_bool(0.5)) {
      retouched.record_outbound(packet(tuple, t));
      plain.record_outbound(packet(tuple, t));
    } else {
      const PacketRecord probe = packet(tuple.inverse(), t);
      ASSERT_EQ(retouched.admits_inbound(probe), plain.admits_inbound(probe))
          << "diverged at t=" << t;
    }
  }
}

TEST(RetouchedBitmap, AdmitsSubsetOfPlainBitmapWithRealFalseNegatives) {
  const RetouchedBitmapConfig config = small_retouched(0.25);
  RetouchedBitmapFilter retouched{config};
  BitmapFilter plain{config.bitmap};

  Rng rng{992};
  std::vector<FiveTuple> pool;
  for (int i = 0; i < 300; ++i) pool.push_back(random_tuple(rng));
  int retouched_misses = 0;
  int probes = 0;
  double t = 0.0;
  while (t < 40.0) {
    t += rng.exponential(0.02);
    const SimTime now = SimTime::from_sec(t);
    retouched.advance_time(now);
    plain.advance_time(now);
    const FiveTuple& tuple = pool[rng.next_below(pool.size())];
    if (rng.next_bool(0.5)) {
      retouched.record_outbound(packet(tuple, t));
      plain.record_outbound(packet(tuple, t));
    } else {
      const PacketRecord probe = packet(tuple.inverse(), t);
      const bool masked = retouched.admits_inbound(probe);
      const bool ground = plain.admits_inbound(probe);
      ++probes;
      // The mask only clears bits: retouched admissions are a subset.
      if (masked) {
        ASSERT_TRUE(ground) << "retouching invented a positive";
      }
      retouched_misses += ground && !masked;
    }
  }
  ASSERT_GT(probes, 500);
  // The whole point of the trade: false negatives really occur.
  EXPECT_GT(retouched_misses, 0);
}

TEST(RetouchedBitmap, MissRateOnFreshMarksMatchesTheClosedForm) {
  // A connection marked THIS instant misses only through the mask:
  // P[miss] = 1 - (1-r)^m over random tuples.
  const double r = 0.2;
  const RetouchedBitmapConfig config = small_retouched(r);
  RetouchedBitmapFilter filter{config};
  Rng rng{993};
  int misses = 0;
  const int kProbes = 4000;
  for (int i = 0; i < kProbes; ++i) {
    const FiveTuple tuple = random_tuple(rng);
    filter.record_outbound(packet(tuple, 1.0));
    misses += !filter.admits_inbound(packet(tuple.inverse(), 1.0));
  }
  const double expected =
      1.0 - std::pow(1.0 - r, config.bitmap.hash_count);
  EXPECT_NEAR(static_cast<double>(misses) / kProbes, expected, 0.08);
}

TEST(RetouchedBitmap, MaskIsDeterministicPerEpochAndRedrawnAcrossEpochs) {
  const RetouchedBitmapConfig config = small_retouched(0.1);
  const RetouchedBitmapFilter filter{config};
  const std::size_t bits = config.bitmap.bits();

  std::size_t epoch0 = 0;
  std::size_t epoch1 = 0;
  bool differs = false;
  for (std::size_t bit = 0; bit < bits; ++bit) {
    const bool a = filter.retouched(0, bit);
    EXPECT_EQ(a, filter.retouched(0, bit));  // pure function of (epoch, bit)
    const bool b = filter.retouched(1, bit);
    epoch0 += a;
    epoch1 += b;
    differs = differs || (a != b);
  }
  EXPECT_TRUE(differs) << "epochs must draw fresh retouch sets";
  // Density close to r in both epochs.
  EXPECT_NEAR(static_cast<double>(epoch0) / bits, 0.1, 0.04);
  EXPECT_NEAR(static_cast<double>(epoch1) / bits, 0.1, 0.04);
}

TEST(RetouchedBitmap, ConfigValidation) {
  RetouchedBitmapConfig config;
  config.retouch_fraction = 0.5;  // must be < 0.5
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.retouch_fraction = -0.01;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.retouch_fraction = 0.49;
  EXPECT_NO_THROW(config.validate());
}

// ---------------- Counting filter ----------------------------------------

CountingFilterConfig small_counting() {
  CountingFilterConfig config;
  config.log2_cells = 12;
  config.generation_count = 4;
  config.hash_count = 3;
  config.rotate_interval = Duration::sec(5.0);
  return config;
}

FiveTuple tcp_conn(std::uint16_t sport) {
  return FiveTuple{Protocol::kTcp, Ipv4Addr{140, 112, 30, 5}, sport,
                   Ipv4Addr{8, 8, 4, 4}, 443};
}

TEST(CountingFilter, OutboundFinDeletesExactlyThatConnection) {
  CountingFilter filter{small_counting()};
  const FiveTuple a = tcp_conn(2000);
  const FiveTuple b = tcp_conn(2001);
  filter.record_outbound(packet(a, 1.0));
  filter.record_outbound(packet(b, 1.0));
  ASSERT_TRUE(filter.admits_inbound(packet(a.inverse(), 1.1)));
  ASSERT_TRUE(filter.admits_inbound(packet(b.inverse(), 1.1)));

  PacketRecord fin = packet(a, 1.2);
  fin.flags.fin = true;
  filter.record_outbound(fin);

  EXPECT_FALSE(filter.admits_inbound(packet(a.inverse(), 1.3)))
      << "closed connection must stop admitting inbound traffic";
  EXPECT_TRUE(filter.admits_inbound(packet(b.inverse(), 1.3)))
      << "deletion must not disturb other connections";
  EXPECT_EQ(filter.deletes_applied(), 1u);
}

TEST(CountingFilter, RstDeletesAndReopeningRemarks) {
  CountingFilter filter{small_counting()};
  const FiveTuple conn = tcp_conn(3000);
  filter.record_outbound(packet(conn, 1.0));
  PacketRecord rst = packet(conn, 1.1);
  rst.flags.rst = true;
  filter.record_outbound(rst);
  EXPECT_FALSE(filter.admits_inbound(packet(conn.inverse(), 1.2)));
  // A new outbound packet re-establishes state.
  filter.record_outbound(packet(conn, 1.3));
  EXPECT_TRUE(filter.admits_inbound(packet(conn.inverse(), 1.4)));
}

TEST(CountingFilter, NoCloseDeleteConfigTreatsFinAsData) {
  CountingFilterConfig config = small_counting();
  config.delete_on_close = false;
  CountingFilter filter{config};
  const FiveTuple conn = tcp_conn(4000);
  PacketRecord fin = packet(conn, 1.0);
  fin.flags.fin = true;
  filter.record_outbound(fin);  // inserted, not deleted
  EXPECT_TRUE(filter.admits_inbound(packet(conn.inverse(), 1.1)));
  EXPECT_EQ(filter.deletes_applied(), 0u);
}

TEST(CountingFilter, EraseConnectionIsIdempotentOnAbsentState) {
  CountingFilter filter{small_counting()};
  const FiveTuple conn = tcp_conn(5000);
  filter.erase_connection(conn);  // nothing present: no-op
  EXPECT_EQ(filter.deletes_applied(), 0u);
  filter.record_outbound(packet(conn, 1.0));
  filter.erase_connection(conn);
  EXPECT_EQ(filter.deletes_applied(), 1u);
  EXPECT_FALSE(filter.admits_inbound(packet(conn.inverse(), 1.1)));
  filter.erase_connection(conn);  // already gone
  EXPECT_EQ(filter.deletes_applied(), 1u);
}

TEST(CountingFilter, GenerationalExpiryMatchesTheBitmapSchedule) {
  const CountingFilterConfig config = small_counting();
  CountingFilter filter{config};
  const FiveTuple conn = tcp_conn(6000);
  filter.advance_time(SimTime::from_sec(0.5));
  filter.record_outbound(packet(conn, 0.5));

  // Inside the guaranteed (k-1)*dt window: admitted.
  filter.advance_time(SimTime::from_sec(14.0));
  EXPECT_TRUE(filter.admits_inbound(packet(conn.inverse(), 14.0)));
  // Past T_e = k*dt every generation that saw the mark has rotated out.
  filter.advance_time(SimTime::from_sec(21.0));
  EXPECT_FALSE(filter.admits_inbound(packet(conn.inverse(), 21.0)));
  EXPECT_EQ(filter.rotations(), 4u);
}

TEST(CountingFilter, OccupancyTracksCurrentGenerationFill) {
  CountingFilter filter{small_counting()};
  ASSERT_TRUE(filter.occupancy_fraction().has_value());
  EXPECT_DOUBLE_EQ(*filter.occupancy_fraction(), 0.0);
  Rng rng{77};
  for (int i = 0; i < 200; ++i) {
    filter.record_outbound(packet(random_tuple(rng), 1.0));
  }
  const double filled = *filter.occupancy_fraction();
  EXPECT_GT(filled, 0.0);
  EXPECT_LT(filled, 1.0);
  // Rotating k times clears everything back out.
  filter.advance_time(SimTime::from_sec(100.0));
  EXPECT_DOUBLE_EQ(*filter.occupancy_fraction(), 0.0);
}

TEST(CountingFilter, CorruptCellHookPerturbsAddressedCellOnly) {
  CountingFilter filter{small_counting()};
  // Flat index 5 addresses generation 0 (the current one at start).
  filter.corrupt_cell(5);
  EXPECT_GT(*filter.occupancy_fraction(), 0.0);
  filter.corrupt_cell(5);  // XOR of the low bit: flips back
  EXPECT_DOUBLE_EQ(*filter.occupancy_fraction(), 0.0);
}

TEST(CountingFilter, SaturatedCellsAreNeverDecremented) {
  // Drive one tuple's cells to saturation via distinct colliding inserts
  // is hard to arrange; instead use the documented contract directly:
  // insert-if-absent means repeated inserts of ONE tuple cost one
  // increment, so a single delete fully removes it and a second delete
  // must not underflow other state.
  CountingFilter filter{small_counting()};
  const FiveTuple conn = tcp_conn(7000);
  for (int i = 0; i < 50; ++i) {
    filter.record_outbound(packet(conn, 1.0 + 0.01 * i));
  }
  filter.erase_connection(conn);
  EXPECT_FALSE(filter.admits_inbound(packet(conn.inverse(), 2.0)));
  EXPECT_EQ(filter.deletes_applied(), 1u);
}

// ---------------- Adaptive tuner -----------------------------------------

TunerConfig tuner_config(std::size_t bits = std::size_t{1} << 16,
                         unsigned m = 3) {
  TunerConfig config;
  config.enabled = true;
  config.target_penetration = 0.01;
  config.ewma_alpha = 0.5;
  config.geometry =
      FilterGeometry{bits, m, 4, Duration::sec(5.0)};
  return config;
}

TEST(AdaptiveTuner, StartsAtTheLiveGeometry) {
  const AdaptiveTuner tuner{tuner_config()};
  const TunerRecommendation& rec = tuner.recommendation();
  EXPECT_EQ(rec.recommended_bits, std::size_t{1} << 16);
  EXPECT_EQ(rec.recommended_hash_count, 3u);
  EXPECT_EQ(rec.recommended_rotate_interval, Duration::sec(5.0));
  EXPECT_EQ(rec.generations_observed, 0u);
  EXPECT_EQ(rec.samples, 0u);
}

TEST(AdaptiveTuner, FoldsTheGenerationPeakAtTheRotationBoundary) {
  AdaptiveTuner tuner{tuner_config()};
  tuner.observe(0.1, 0);
  tuner.observe(0.4, 0);  // the generation's peak
  tuner.observe(0.2, 0);
  EXPECT_EQ(tuner.recommendation().generations_observed, 0u)
      << "no fold until the next generation appears";

  tuner.observe(0.05, 1);  // first sample of generation 1 folds gen 0
  const TunerRecommendation& rec = tuner.recommendation();
  EXPECT_EQ(rec.generations_observed, 1u);
  EXPECT_EQ(rec.samples, 4u);
  EXPECT_DOUBLE_EQ(rec.occupancy_peak_ewma, 0.4);  // first fold primes EWMA

  // The recommendation reproduces the closed forms from params.h.
  const double n = static_cast<double>(std::size_t{1} << 16);
  const double c = -(n * std::log1p(-0.4)) / 3.0;
  EXPECT_NEAR(rec.estimated_connections, c, 1e-9);
  EXPECT_DOUBLE_EQ(rec.penetration_estimate,
                   penetration_probability_at_utilization(0.4, 3));
  const auto load = static_cast<std::size_t>(std::ceil(c));
  EXPECT_EQ(rec.recommended_hash_count,
            optimal_hash_count(std::size_t{1} << 16, load));
  std::size_t bits = std::size_t{1} << 3;
  while (bits < (std::size_t{1} << 30) &&
         max_connections_for(0.01, bits) < load) {
    bits <<= 1;
  }
  EXPECT_EQ(rec.recommended_bits, bits);
}

TEST(AdaptiveTuner, EwmaSmoothsPeaksAcrossGenerations) {
  AdaptiveTuner tuner{tuner_config()};
  tuner.observe(0.4, 0);
  tuner.observe(0.0, 1);  // fold gen 0 peak 0.4 -> ewma 0.4
  tuner.observe(0.2, 1);
  tuner.observe(0.0, 2);  // fold gen 1 peak 0.2 -> 0.5*0.2 + 0.5*0.4
  EXPECT_DOUBLE_EQ(tuner.recommendation().occupancy_peak_ewma, 0.3);
  EXPECT_EQ(tuner.recommendation().generations_observed, 2u);
}

TEST(AdaptiveTuner, OverloadShortensTheRotateIntervalBoundedly) {
  // Tiny filter at very high occupancy: estimated load far exceeds the
  // Eq. 6 capacity, so dt is scaled down, floored at dt/4.
  AdaptiveTuner tuner{tuner_config(std::size_t{1} << 8)};
  tuner.observe(0.95, 0);
  tuner.observe(0.95, 1);
  const TunerRecommendation& rec = tuner.recommendation();
  const double c = rec.estimated_connections;
  const auto load = static_cast<std::size_t>(std::ceil(c));
  const std::size_t capacity = max_connections_for(0.01, std::size_t{1} << 8);
  const double scale =
      std::clamp(static_cast<double>(capacity) / static_cast<double>(load),
                 0.25, 1.0);
  EXPECT_EQ(rec.recommended_rotate_interval, Duration::sec(5.0) * scale);
  EXPECT_GE(rec.recommended_rotate_interval, Duration::sec(5.0) * 0.25);
  // And it recommends growing the structure.
  EXPECT_GT(rec.recommended_bits, std::size_t{1} << 8);
}

TEST(AdaptiveTuner, IdleFilterKeepsTheLiveGeometry) {
  AdaptiveTuner tuner{tuner_config()};
  tuner.observe(0.0, 0);
  tuner.observe(0.0, 1);
  const TunerRecommendation& rec = tuner.recommendation();
  EXPECT_EQ(rec.recommended_bits, std::size_t{1} << 16);
  EXPECT_EQ(rec.recommended_hash_count, 3u);
  EXPECT_EQ(rec.recommended_rotate_interval, Duration::sec(5.0));
  EXPECT_DOUBLE_EQ(rec.estimated_connections, 0.0);
}

TEST(AdaptiveTuner, ToStringCarriesTheHeadlineNumbers) {
  AdaptiveTuner tuner{tuner_config()};
  tuner.observe(0.4, 0);
  tuner.observe(0.0, 1);
  const std::string s = tuner.recommendation().to_string();
  EXPECT_NE(s.find("tuner:"), std::string::npos);
  EXPECT_NE(s.find("recommend m="), std::string::npos);
  EXPECT_NE(s.find("samples=2"), std::string::npos);
}

TEST(AdaptiveTuner, ConfigValidation) {
  TunerConfig config = tuner_config();
  config.target_penetration = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = tuner_config();
  config.ewma_alpha = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = tuner_config();
  config.geometry = FilterGeometry{};
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.enabled = false;  // disabled: geometry not required
  EXPECT_NO_THROW(config.validate());
  EXPECT_NO_THROW(tuner_config().validate());
}

}  // namespace
}  // namespace upbound
