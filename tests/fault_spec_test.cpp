// The --fault-spec grammar and the injector's deterministic plumbing:
// parsing round-trips, malformed specs get pointed errors, and the
// feed/lane fault triggers are pure functions of (spec, seed, index).
#include "fault/fault_spec.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "fault/fault_injector.h"

namespace upbound {
namespace {

TEST(FaultSpec, ParsesEveryKind) {
  const FaultSpec spec = FaultSpec::parse(
      "kill-shard:3@500,stall-shard:1@10:250,corrupt:0.25,"
      "clock-step:-2.5@100,clock-skew:1.001,flip-bit:2:12345@7,"
      "ring-overflow:4");
  ASSERT_EQ(spec.events.size(), 7u);

  EXPECT_EQ(spec.events[0].kind, FaultKind::kKillShard);
  EXPECT_EQ(spec.events[0].shard, 3u);
  EXPECT_EQ(spec.events[0].at_packet, 500u);

  EXPECT_EQ(spec.events[1].kind, FaultKind::kStallShard);
  EXPECT_EQ(spec.events[1].shard, 1u);
  EXPECT_EQ(spec.events[1].at_packet, 10u);
  EXPECT_DOUBLE_EQ(spec.events[1].value, 250.0);

  EXPECT_EQ(spec.events[2].kind, FaultKind::kCorruptPacket);
  EXPECT_DOUBLE_EQ(spec.events[2].value, 0.25);

  EXPECT_EQ(spec.events[3].kind, FaultKind::kClockStep);
  EXPECT_DOUBLE_EQ(spec.events[3].value, -2.5);
  EXPECT_EQ(spec.events[3].at_packet, 100u);

  EXPECT_EQ(spec.events[4].kind, FaultKind::kClockSkew);
  EXPECT_DOUBLE_EQ(spec.events[4].value, 1.001);

  EXPECT_EQ(spec.events[5].kind, FaultKind::kFlipBit);
  EXPECT_EQ(spec.events[5].shard, 2u);
  EXPECT_EQ(spec.events[5].aux, 12345u);
  EXPECT_EQ(spec.events[5].at_packet, 7u);

  EXPECT_EQ(spec.events[6].kind, FaultKind::kRingOverflow);
  EXPECT_EQ(spec.events[6].shard, 4u);
}

TEST(FaultSpec, DefaultsApply) {
  const FaultSpec spec = FaultSpec::parse("kill-shard:2,stall-shard:0");
  ASSERT_EQ(spec.events.size(), 2u);
  EXPECT_EQ(spec.events[0].at_packet, 0u);  // dies before the first packet
  EXPECT_EQ(spec.events[1].at_packet, 0u);
  EXPECT_DOUBLE_EQ(spec.events[1].value, 100.0);  // default stall ms
}

TEST(FaultSpec, EmptyAndSparseEntriesTolerated) {
  EXPECT_TRUE(FaultSpec::parse("").empty());
  const FaultSpec spec = FaultSpec::parse(",kill-shard:1,,corrupt:0.5,");
  EXPECT_EQ(spec.events.size(), 2u);
}

TEST(FaultSpec, MalformedSpecsThrow) {
  EXPECT_THROW(FaultSpec::parse("bogus:1"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("kill-shard"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("kill-shard:x"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("kill-shard:1:2"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("corrupt:1.5"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("corrupt:-0.1"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("clock-skew:0"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("clock-skew:-1"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("stall-shard:1@5:-3"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("flip-bit:1"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("kill-shard:1@"), std::invalid_argument);
}

TEST(FaultSpec, ParsesDaemonPlaneKinds) {
  // The live-daemon plane: capture.kill / capture.stall target the
  // capture source by delivered-frame index, checkpoint.corrupt targets
  // one checkpoint generation.
  const FaultSpec spec = FaultSpec::parse(
      "capture.kill@500,capture.stall:250@10,checkpoint.corrupt:3,"
      "capture.kill");
  ASSERT_EQ(spec.events.size(), 4u);

  EXPECT_EQ(spec.events[0].kind, FaultKind::kCaptureKill);
  EXPECT_EQ(spec.events[0].at_packet, 500u);

  EXPECT_EQ(spec.events[1].kind, FaultKind::kCaptureStall);
  EXPECT_DOUBLE_EQ(spec.events[1].value, 250.0);
  EXPECT_EQ(spec.events[1].at_packet, 10u);

  EXPECT_EQ(spec.events[2].kind, FaultKind::kCheckpointCorrupt);
  EXPECT_EQ(spec.events[2].aux, 3u);

  // Bare capture.kill fires before the first frame.
  EXPECT_EQ(spec.events[3].kind, FaultKind::kCaptureKill);
  EXPECT_EQ(spec.events[3].at_packet, 0u);
}

TEST(FaultSpec, MalformedDaemonPlaneSpecsThrow) {
  EXPECT_THROW(FaultSpec::parse("capture.kill:1"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("capture.kill@"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("capture.stall"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("capture.stall:0"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("capture.stall:-5"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("capture.stall:10:20"),
               std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("checkpoint.corrupt"),
               std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("checkpoint.corrupt:x"),
               std::invalid_argument);
}

TEST(FaultSpec, DaemonPlaneToStringRoundTrips) {
  const std::string text =
      "capture.kill@500,capture.stall:250@10,checkpoint.corrupt:3";
  const FaultSpec spec = FaultSpec::parse(text);
  const FaultSpec again = FaultSpec::parse(spec.to_string());
  EXPECT_EQ(spec.events, again.events);
}

TEST(FaultSpec, ToStringRoundTrips) {
  const std::string text =
      "kill-shard:3@500,stall-shard:1@10:250,corrupt:0.25,"
      "clock-step:-2.5@100,clock-skew:1.001,flip-bit:2:12345@7,"
      "ring-overflow:4";
  const FaultSpec spec = FaultSpec::parse(text);
  const FaultSpec again = FaultSpec::parse(spec.to_string());
  EXPECT_EQ(spec.events, again.events);
}

PacketRecord indexed_packet(std::uint32_t n, double t_sec) {
  PacketRecord pkt;
  pkt.timestamp = SimTime::from_sec(t_sec);
  pkt.tuple = FiveTuple{Protocol::kTcp, Ipv4Addr{0x0a000000u + n},
                        static_cast<std::uint16_t>(1024 + n),
                        Ipv4Addr{61, 2, 3, 4}, 80};
  pkt.payload_size = 64;
  return pkt;
}

TEST(FaultInjectorUnit, UnarmedWhenSpecEmpty) {
  FaultInjector injector{FaultSpec{}, 7};
  EXPECT_FALSE(injector.armed());
  FaultInjector armed{FaultSpec::parse("corrupt:0.5"), 7};
  EXPECT_TRUE(armed.armed());
}

TEST(FaultInjectorUnit, ClockStepAppliesFromTriggerIndex) {
  FaultInjector injector{FaultSpec::parse("clock-step:5@2"), 7};
  for (std::uint64_t i = 0; i < 4; ++i) {
    PacketRecord pkt = indexed_packet(0, 10.0);
    injector.apply_feed(i, pkt);
    const double expected = i >= 2 ? 15.0 : 10.0;
    EXPECT_DOUBLE_EQ(pkt.timestamp.sec(), expected) << "index " << i;
  }
  EXPECT_EQ(injector.clock_faulted_packets(), 2u);
}

TEST(FaultInjectorUnit, CorruptionIsSeedDeterministic) {
  // Two injectors with the same (spec, seed) must corrupt exactly the
  // same packet indexes -- the property the cross-thread determinism of
  // faulted replays rests on.
  FaultInjector a{FaultSpec::parse("corrupt:0.3"), 42};
  FaultInjector b{FaultSpec::parse("corrupt:0.3"), 42};
  FaultInjector c{FaultSpec::parse("corrupt:0.3"), 43};
  int differs_from_c = 0;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    PacketRecord pa = indexed_packet(static_cast<std::uint32_t>(i), 1.0);
    PacketRecord pb = pa;
    PacketRecord pc = pa;
    a.apply_feed(i, pa);
    b.apply_feed(i, pb);
    c.apply_feed(i, pc);
    ASSERT_EQ(pa.tuple, pb.tuple) << "index " << i;
    ASSERT_EQ(pa.timestamp, pb.timestamp) << "index " << i;
    ASSERT_EQ(pa.payload_size, pb.payload_size) << "index " << i;
    if (!(pa.tuple == pc.tuple) || pa.payload_size != pc.payload_size) {
      ++differs_from_c;
    }
  }
  EXPECT_EQ(a.packets_corrupted(), b.packets_corrupted());
  EXPECT_GT(a.packets_corrupted(), 300u);  // rate 0.3 over 2000 packets
  EXPECT_GT(differs_from_c, 0);            // a different seed corrupts differently
}

TEST(FaultInjectorUnit, DaemonCaptureTriggersAreOneShot) {
  FaultInjector injector{
      FaultSpec::parse(
          "capture.kill@100,capture.stall:40@200,checkpoint.corrupt:2"),
      7};
  EXPECT_TRUE(injector.armed());

  // kill fires once the delivered-frame count crosses the trigger and
  // never again -- the datapath's reattach must not re-kill itself.
  EXPECT_FALSE(injector.take_capture_kill(99));
  EXPECT_TRUE(injector.take_capture_kill(100));
  EXPECT_FALSE(injector.take_capture_kill(5000));
  EXPECT_EQ(injector.capture_kills_taken(), 1u);

  EXPECT_DOUBLE_EQ(injector.take_capture_stall_ms(150), 0.0);
  EXPECT_DOUBLE_EQ(injector.take_capture_stall_ms(200), 40.0);
  EXPECT_DOUBLE_EQ(injector.take_capture_stall_ms(9000), 0.0);
  EXPECT_EQ(injector.capture_stalls_taken(), 1u);

  // checkpoint.corrupt is a pure predicate on the generation, not a
  // one-shot: every write of the doomed generation is corrupted.
  EXPECT_FALSE(injector.corrupt_checkpoint(1));
  EXPECT_TRUE(injector.corrupt_checkpoint(2));
  EXPECT_TRUE(injector.corrupt_checkpoint(2));
  EXPECT_FALSE(injector.corrupt_checkpoint(3));
}

TEST(FaultInjectorUnit, LaneTriggerSchedule) {
  FaultInjector injector{
      FaultSpec::parse("kill-shard:1@100,flip-bit:1:5@50"), 7};
  injector.bind(4);
  EXPECT_TRUE(injector.lane_faulted(1));
  EXPECT_FALSE(injector.lane_faulted(0));
  EXPECT_EQ(injector.kill_at(1), 100u);
  EXPECT_EQ(injector.kill_at(0), kFaultNever);
  // next_lane_trigger returns the next strictly-later event boundary.
  EXPECT_EQ(injector.next_lane_trigger(1, 0), 50u);
  EXPECT_EQ(injector.next_lane_trigger(1, 50), 100u);
  EXPECT_EQ(injector.next_lane_trigger(1, 100), kFaultNever);
  EXPECT_EQ(injector.next_lane_trigger(0, 0), kFaultNever);
}

}  // namespace
}  // namespace upbound
