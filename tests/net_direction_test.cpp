#include "net/direction.h"

#include <gtest/gtest.h>

#include "net/packet.h"

namespace upbound {
namespace {

ClientNetwork campus() {
  return ClientNetwork{{*Cidr::parse("140.112.30.0/24")}};
}

FiveTuple tuple(Ipv4Addr src, Ipv4Addr dst) {
  return FiveTuple{Protocol::kTcp, src, 1234, dst, 80};
}

TEST(ClientNetwork, OutboundWhenSourceInternal) {
  EXPECT_EQ(campus().classify(
                tuple(Ipv4Addr(140, 112, 30, 7), Ipv4Addr(8, 8, 8, 8))),
            Direction::kOutbound);
}

TEST(ClientNetwork, InboundWhenDestinationInternal) {
  EXPECT_EQ(campus().classify(
                tuple(Ipv4Addr(8, 8, 8, 8), Ipv4Addr(140, 112, 30, 7))),
            Direction::kInbound);
}

TEST(ClientNetwork, LocalWhenBothInternal) {
  EXPECT_EQ(campus().classify(tuple(Ipv4Addr(140, 112, 30, 1),
                                    Ipv4Addr(140, 112, 30, 2))),
            Direction::kLocal);
}

TEST(ClientNetwork, TransitWhenNeitherInternal) {
  EXPECT_EQ(
      campus().classify(tuple(Ipv4Addr(1, 1, 1, 1), Ipv4Addr(8, 8, 8, 8))),
      Direction::kTransit);
}

TEST(ClientNetwork, MultiplePrefixes) {
  ClientNetwork net;
  net.add_prefix(*Cidr::parse("10.0.0.0/8"));
  net.add_prefix(*Cidr::parse("192.168.0.0/16"));
  EXPECT_TRUE(net.is_internal(Ipv4Addr(10, 200, 3, 4)));
  EXPECT_TRUE(net.is_internal(Ipv4Addr(192, 168, 44, 1)));
  EXPECT_FALSE(net.is_internal(Ipv4Addr(172, 16, 0, 1)));
}

TEST(ClientNetwork, EmptyNetworkClassifiesEverythingTransit) {
  const ClientNetwork net;
  EXPECT_EQ(net.classify(tuple(Ipv4Addr(1, 2, 3, 4), Ipv4Addr(5, 6, 7, 8))),
            Direction::kTransit);
}

TEST(ClientNetwork, ClassifyPacketOverload) {
  PacketRecord pkt;
  pkt.tuple = tuple(Ipv4Addr(140, 112, 30, 9), Ipv4Addr(9, 9, 9, 9));
  EXPECT_EQ(campus().classify(pkt), Direction::kOutbound);
}

TEST(ClientNetwork, ToStringListsPrefixes) {
  EXPECT_EQ(campus().to_string(), "{140.112.30.0/24}");
}

TEST(DirectionName, AllValuesNamed) {
  EXPECT_STREQ(direction_name(Direction::kOutbound), "outbound");
  EXPECT_STREQ(direction_name(Direction::kInbound), "inbound");
  EXPECT_STREQ(direction_name(Direction::kLocal), "local");
  EXPECT_STREQ(direction_name(Direction::kTransit), "transit");
}

}  // namespace
}  // namespace upbound
