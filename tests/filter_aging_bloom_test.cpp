#include "filter/aging_bloom.h"

#include <gtest/gtest.h>

#include "filter/naive_filter.h"
#include "util/rng.h"

namespace upbound {
namespace {

AgingBloomConfig small_config() {
  AgingBloomConfig config;
  config.cells = 1u << 16;
  config.hash_count = 3;
  config.epoch = Duration::sec(5.0);
  config.valid_epochs = 4;  // Te = 20 s, matching the default bitmap
  return config;
}

FiveTuple tuple_n(std::uint32_t n) {
  return FiveTuple{Protocol::kTcp, Ipv4Addr{0x0a000000u + n},
                   static_cast<std::uint16_t>(1024 + n % 60000),
                   Ipv4Addr{0x3d000000u + n * 7919u},
                   static_cast<std::uint16_t>(80 + n % 50000)};
}

PacketRecord out_pkt(const FiveTuple& t, double t_sec = 0.0) {
  PacketRecord pkt;
  pkt.timestamp = SimTime::from_sec(t_sec);
  pkt.tuple = t;
  return pkt;
}

PacketRecord in_pkt(const FiveTuple& t, double t_sec = 0.0) {
  PacketRecord pkt = out_pkt(t, t_sec);
  pkt.tuple = t.inverse();
  return pkt;
}

TEST(AgingBloom, FreshFilterAdmitsNothing) {
  AgingBloomFilter filter{small_config()};
  for (std::uint32_t i = 0; i < 50; ++i) {
    EXPECT_FALSE(filter.admits_inbound(in_pkt(tuple_n(i))));
  }
}

TEST(AgingBloom, MarkThenAdmit) {
  AgingBloomFilter filter{small_config()};
  filter.record_outbound(out_pkt(tuple_n(1)));
  EXPECT_TRUE(filter.admits_inbound(in_pkt(tuple_n(1))));
  EXPECT_FALSE(filter.admits_inbound(in_pkt(tuple_n(2))));
}

TEST(AgingBloom, ExpiryWindowMatchesConfig) {
  // Te = 20 s: mark at t=0 admits until just before 20 s.
  AgingBloomFilter filter{small_config()};
  filter.advance_time(SimTime::origin());
  filter.record_outbound(out_pkt(tuple_n(3), 0.0));
  filter.advance_time(SimTime::from_sec(19.9));
  EXPECT_TRUE(filter.admits_inbound(in_pkt(tuple_n(3), 19.9)));
  filter.advance_time(SimTime::from_sec(20.0));
  EXPECT_FALSE(filter.admits_inbound(in_pkt(tuple_n(3), 20.0)));
}

TEST(AgingBloom, RefreshExtendsLifetime) {
  AgingBloomFilter filter{small_config()};
  filter.record_outbound(out_pkt(tuple_n(4), 0.0));
  for (int i = 1; i <= 20; ++i) {
    filter.advance_time(SimTime::from_sec(i * 5.0));
    filter.record_outbound(out_pkt(tuple_n(4), i * 5.0));
    EXPECT_TRUE(filter.admits_inbound(in_pkt(tuple_n(4), i * 5.0)));
  }
}

TEST(AgingBloom, RingWrapDoesNotResurrectOldMarks) {
  // Mark once, then advance far past a full ring revolution (15 epochs)
  // in single steps; the mark must never come back.
  AgingBloomFilter filter{small_config()};
  filter.record_outbound(out_pkt(tuple_n(5), 0.0));
  for (int e = 1; e <= 40; ++e) {
    filter.advance_time(SimTime::from_sec(e * 5.0));
    if (e >= 4) {
      EXPECT_FALSE(filter.admits_inbound(in_pkt(tuple_n(5), e * 5.0)))
          << "resurrected at epoch " << e;
    }
  }
}

TEST(AgingBloom, LargeTimeJumpClearsState) {
  AgingBloomFilter filter{small_config()};
  filter.record_outbound(out_pkt(tuple_n(6), 0.0));
  filter.advance_time(SimTime::from_sec(1000.0));
  EXPECT_FALSE(filter.admits_inbound(in_pkt(tuple_n(6), 1000.0)));
}

TEST(AgingBloom, JumpAliasingCorner) {
  // valid_epochs = 13 (max) with multi-epoch jumps crossing ring ages
  // > 15: the stepped-sweep path must keep semantics exact.
  AgingBloomConfig config = small_config();
  config.valid_epochs = 13;
  config.epoch = Duration::sec(1.0);
  AgingBloomFilter filter{config};
  filter.record_outbound(out_pkt(tuple_n(7), 0.0));
  filter.advance_time(SimTime::from_sec(12.0));  // age 12 < 13: alive
  EXPECT_TRUE(filter.admits_inbound(in_pkt(tuple_n(7), 12.0)));
  filter.advance_time(SimTime::from_sec(24.0));  // far out: gone
  EXPECT_FALSE(filter.admits_inbound(in_pkt(tuple_n(7), 24.0)));
}

TEST(AgingBloom, MatchesBitmapSemanticsAgainstExactTimer) {
  // Same bracketing property the bitmap satisfies: admits everything an
  // exact (valid_epochs-1)*epoch timer admits.
  AgingBloomConfig config = small_config();
  AgingBloomFilter aging{config};
  NaiveFilter naive{{.state_timeout = config.epoch * 3.0}};  // floor timer

  Rng rng{11};
  double t = 0.0;
  std::vector<FiveTuple> pool;
  for (int i = 0; i < 300; ++i) pool.push_back(tuple_n(rng.next_below(1u << 20)));
  for (int step = 0; step < 5000; ++step) {
    t += rng.exponential(0.05);
    const SimTime now = SimTime::from_sec(t);
    aging.advance_time(now);
    naive.advance_time(now);
    const FiveTuple& tuple = pool[rng.next_below(pool.size())];
    if (rng.next_bool(0.5)) {
      aging.record_outbound(out_pkt(tuple, t));
      naive.record_outbound(out_pkt(tuple, t));
    } else if (naive.admits_inbound(in_pkt(tuple, t))) {
      ASSERT_TRUE(aging.admits_inbound(in_pkt(tuple, t)))
          << "false negative at t=" << t;
    }
  }
}

TEST(AgingBloom, StorageIsHalfAByteCell) {
  AgingBloomConfig config;
  config.cells = 1u << 20;
  AgingBloomFilter filter{config};
  EXPECT_EQ(filter.storage_bytes(), (1u << 20) / 2);
  EXPECT_EQ(config.memory_bytes(), (1u << 20) / 2);
}

TEST(AgingBloom, ConfigValidation) {
  AgingBloomConfig config;
  config.cells = 3;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = AgingBloomConfig{};
  config.valid_epochs = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = AgingBloomConfig{};
  config.valid_epochs = 14;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = AgingBloomConfig{};
  config.hash_count = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = AgingBloomConfig{};
  config.epoch = Duration::sec(0.0);
  EXPECT_THROW(config.validate(), std::invalid_argument);
  EXPECT_NO_THROW(AgingBloomConfig{}.validate());
}

TEST(AgingBloom, HolePunchingMode) {
  AgingBloomConfig config = small_config();
  config.key_mode = KeyMode::kHolePunching;
  AgingBloomFilter filter{config};
  const FiveTuple t = tuple_n(9);
  filter.record_outbound(out_pkt(t));
  FiveTuple other_port = t.inverse();
  other_port.src_port = 55555;
  PacketRecord probe;
  probe.tuple = other_port;
  EXPECT_TRUE(filter.admits_inbound(probe));
}

}  // namespace
}  // namespace upbound
