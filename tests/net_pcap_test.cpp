#include "net/pcap.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace upbound {
namespace {

class PcapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("upbound_pcap_test_" +
              std::to_string(::testing::UnitTest::GetInstance()
                                 ->random_seed()) +
              "_" + ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name() +
              ".pcap"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

PacketRecord make_packet(double t_sec, std::uint16_t sport, bool tcp = true) {
  PacketRecord pkt;
  pkt.timestamp = SimTime::from_sec(t_sec);
  pkt.tuple = FiveTuple{tcp ? Protocol::kTcp : Protocol::kUdp,
                        Ipv4Addr{10, 1, 1, 1}, sport, Ipv4Addr{8, 8, 4, 4},
                        443};
  pkt.flags.ack = tcp;
  pkt.payload = {1, 2, 3, 4, 5};
  pkt.payload_size = 5;
  return pkt;
}

TEST_F(PcapTest, WriteReadRoundTrip) {
  Trace trace;
  for (int i = 0; i < 10; ++i) {
    trace.push_back(make_packet(i * 0.5, static_cast<std::uint16_t>(1000 + i),
                                i % 2 == 0));
  }
  {
    PcapWriter writer{path_};
    writer.write_all(trace);
    EXPECT_EQ(writer.packets_written(), 10u);
  }
  PcapReader reader{path_};
  const Trace got = reader.read_all();
  ASSERT_EQ(got.size(), 10u);
  EXPECT_EQ(reader.packets_read(), 10u);
  EXPECT_EQ(reader.frames_skipped(), 0u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].timestamp, trace[i].timestamp);
    EXPECT_EQ(got[i].tuple, trace[i].tuple);
    EXPECT_EQ(got[i].payload, trace[i].payload);
    EXPECT_EQ(got[i].payload_size, trace[i].payload_size);
  }
}

TEST_F(PcapTest, StrippedPayloadRecordsTrueLength) {
  PacketRecord pkt = make_packet(1.0, 2000);
  pkt.payload_size = 1400;  // only 5 bytes captured
  {
    PcapWriter writer{path_};
    writer.write(pkt);
  }
  PcapReader reader{path_};
  const auto got = reader.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload_size, 1400u);
  EXPECT_EQ(got->payload.size(), 5u);
  EXPECT_FALSE(reader.next().has_value());
}

TEST_F(PcapTest, SnaplenTruncatesCapturedBytes) {
  PacketRecord pkt = make_packet(1.0, 2000);
  pkt.payload.assign(100, 0xAA);
  pkt.payload_size = 100;
  {
    PcapWriter writer{path_, /*snaplen=*/14 + 20 + 20 + 10};
    writer.write(pkt);
  }
  PcapReader reader{path_};
  const auto got = reader.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload_size, 100u);
  EXPECT_EQ(got->payload.size(), 10u);
}

TEST_F(PcapTest, EmptyFileYieldsNoPackets) {
  { PcapWriter writer{path_}; }
  PcapReader reader{path_};
  EXPECT_FALSE(reader.next().has_value());
}

TEST_F(PcapTest, MissingFileThrows) {
  EXPECT_THROW(PcapReader{"/nonexistent/nowhere.pcap"}, PcapError);
}

TEST_F(PcapTest, UnwritableFileThrows) {
  EXPECT_THROW(PcapWriter{"/nonexistent/nowhere.pcap"}, PcapError);
}

TEST_F(PcapTest, BadMagicRejected) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char garbage[24] = "not a pcap file at all";
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
  }
  EXPECT_THROW(PcapReader{path_}, PcapError);
}

TEST_F(PcapTest, TruncatedHeaderRejected) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const std::uint8_t partial[4] = {0xd4, 0xc3, 0xb2, 0xa1};
    std::fwrite(partial, 1, sizeof(partial), f);
    std::fclose(f);
  }
  EXPECT_THROW(PcapReader{path_}, PcapError);
}

TEST_F(PcapTest, GlobalHeaderFieldsWellFormed) {
  { PcapWriter writer{path_}; }
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::uint8_t hdr[24];
  ASSERT_EQ(std::fread(hdr, 1, sizeof(hdr), f), sizeof(hdr));
  std::fclose(f);
  // Little-endian microsecond magic.
  EXPECT_EQ(hdr[0], 0xd4);
  EXPECT_EQ(hdr[1], 0xc3);
  EXPECT_EQ(hdr[2], 0xb2);
  EXPECT_EQ(hdr[3], 0xa1);
  EXPECT_EQ(hdr[4], 2);  // version 2.4
  EXPECT_EQ(hdr[6], 4);
  EXPECT_EQ(hdr[20], 1);  // LINKTYPE_ETHERNET
}

TEST_F(PcapTest, LargeTimestampsPreserved) {
  PacketRecord pkt = make_packet(0, 1);
  pkt.timestamp = SimTime::from_usec(7'654'321'123'456LL);  // ~88 days
  {
    PcapWriter writer{path_};
    writer.write(pkt);
  }
  PcapReader reader{path_};
  const auto got = reader.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->timestamp, pkt.timestamp);
}

}  // namespace
}  // namespace upbound
