// Shard-kill failover: a dead lane's stream is re-merged into the
// survivors by the documented re-merge rule, and the whole thing is a
// pure function of (trace, spec, seed, shards) -- byte-identical at any
// worker thread count, with no packet gained or lost.
#include <gtest/gtest.h>

#include "fault/fault_injector.h"
#include "filter/bitmap_filter.h"
#include "filter/drop_policy.h"
#include "filter/filter_registry.h"
#include "sim/parallel_replay.h"
#include "trace/campus.h"

namespace upbound {
namespace {

const GeneratedTrace& shared_trace() {
  static const GeneratedTrace trace = [] {
    CampusTraceConfig config;
    config.duration = Duration::sec(25.0);
    config.connections_per_sec = 50.0;
    config.bandwidth_bps = 8e6;
    config.seed = 9;
    return generate_campus_trace(config);
  }();
  return trace;
}

ShardRouterFactory bitmap_factory() {
  return [](const ClientNetwork& network, std::size_t shard) {
    EdgeRouterConfig config;
    config.network = network;
    config.seed = shard_seed(7, shard);
    return std::make_unique<EdgeRouter>(
        config, make_state_filter(bitmap_filter_spec(BitmapFilterConfig{})),
        std::make_unique<ConstantDropPolicy>(1.0));
  };
}

std::uint64_t total_packets(const EdgeRouterStats& stats) {
  return stats.outbound_packets + stats.inbound_passed_packets +
         stats.inbound_dropped_packets + stats.suppressed_outbound_packets +
         stats.ignored_packets;
}

ParallelReplayResult run_killed(std::size_t threads,
                                const std::string& spec_text) {
  const GeneratedTrace& trace = shared_trace();
  FaultInjector injector{FaultSpec::parse(spec_text), 7};
  ParallelReplayConfig config;
  config.threads = threads;
  config.shards = 8;
  config.fault_injector = &injector;
  return parallel_replay(trace.packets, trace.network, bitmap_factory(),
                         config);
}

TEST(FaultFailover, KillShardResultInvariantUnderThreadCount) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault plane compiled out";
  const std::string spec = "kill-shard:2@300";
  const ParallelReplayResult reference = run_killed(1, spec);
  ASSERT_EQ(reference.shard_failed.size(), 8u);
  EXPECT_EQ(reference.shard_failed[2], 1u);
  EXPECT_GT(reference.failover_packets, 0u);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    const ParallelReplayResult result = run_killed(threads, spec);
    EXPECT_EQ(result.merged.stats, reference.merged.stats)
        << "threads=" << threads;
    EXPECT_EQ(result.shard_stats, reference.shard_stats)
        << "threads=" << threads;
    EXPECT_EQ(result.shard_packets, reference.shard_packets)
        << "threads=" << threads;
    EXPECT_EQ(result.shard_failed, reference.shard_failed)
        << "threads=" << threads;
    EXPECT_EQ(result.failover_packets, reference.failover_packets)
        << "threads=" << threads;
    EXPECT_EQ(result.merged.metrics.deterministic(),
              reference.merged.metrics.deterministic())
        << "threads=" << threads;
  }
}

TEST(FaultFailover, KilledShardFreezesAtDeathPoint) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault plane compiled out";
  const ParallelReplayResult result = run_killed(4, "kill-shard:2@300");
  // The dead lane processed exactly its pre-death prefix ...
  EXPECT_EQ(result.shard_packets[2], 300u);
  EXPECT_EQ(total_packets(result.shard_stats[2]), 300u);
  // ... and nothing went missing: the suffix was absorbed elsewhere.
  EXPECT_EQ(total_packets(result.merged.stats), shared_trace().packets.size());
  EXPECT_EQ(result.unroutable_packets, 0u);
  EXPECT_EQ(result.lost_packets, 0u);
}

TEST(FaultFailover, KillBeforeFirstPacketFailsOverEverything) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault plane compiled out";
  const ParallelReplayResult result = run_killed(4, "kill-shard:5@0");
  EXPECT_EQ(result.shard_packets[5], 0u);
  EXPECT_EQ(total_packets(result.shard_stats[5]), 0u);
  EXPECT_GT(result.failover_packets, 0u);
  EXPECT_EQ(total_packets(result.merged.stats), shared_trace().packets.size());
}

TEST(FaultFailover, AllLanesDeadMeansUnroutable) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault plane compiled out";
  const GeneratedTrace& trace = shared_trace();
  FaultInjector injector{FaultSpec::parse("kill-shard:0@0,kill-shard:1@0"),
                         7};
  ParallelReplayConfig config;
  config.threads = 2;
  config.shards = 2;
  config.fault_injector = &injector;
  const ParallelReplayResult result =
      parallel_replay(trace.packets, trace.network, bitmap_factory(), config);
  EXPECT_EQ(result.unroutable_packets, trace.packets.size());
  EXPECT_EQ(total_packets(result.merged.stats), 0u);
  EXPECT_EQ(result.failover_packets, 0u);
}

TEST(FaultFailover, WatchdogCondemnationMatchesKillAtSamePoint) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault plane compiled out";
  // A lane stalled far past the watchdog timeout is condemned; the worker
  // acknowledges right at the stall point, so the failover outcome equals
  // an explicit kill at the same packet index. (Metrics differ -- the
  // stall and condemnation counters record the different cause -- but the
  // replay outcome must not.) One worker per lane: the watchdog fails over
  // every lane of a wedged worker, so sharing the stalled thread would
  // condemn innocent co-resident lanes too.
  const GeneratedTrace& trace = shared_trace();
  FaultInjector stalled{FaultSpec::parse("stall-shard:1@200:1500"), 7};
  ParallelReplayConfig config;
  config.threads = 8;
  config.shards = 8;
  config.fault_injector = &stalled;
  config.watchdog_timeout = std::chrono::milliseconds{100};
  const ParallelReplayResult condemned =
      parallel_replay(trace.packets, trace.network, bitmap_factory(), config);
  ASSERT_EQ(condemned.shard_failed[1], 1u);
  EXPECT_GE(condemned.lanes_condemned, 1u);

  const ParallelReplayResult killed = run_killed(8, "kill-shard:1@200");
  EXPECT_EQ(condemned.merged.stats, killed.merged.stats);
  EXPECT_EQ(condemned.shard_stats, killed.shard_stats);
  EXPECT_EQ(condemned.shard_packets, killed.shard_packets);
  EXPECT_EQ(condemned.shard_failed, killed.shard_failed);
  EXPECT_EQ(condemned.failover_packets, killed.failover_packets);
}

TEST(FaultFailover, WatchdogLeavesHealthyLanesAlone) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault plane compiled out";
  // An aggressive watchdog over a fault-free run must condemn nothing and
  // reproduce the unfaulted result exactly.
  const GeneratedTrace& trace = shared_trace();
  ParallelReplayConfig config;
  config.threads = 4;
  config.shards = 8;
  config.watchdog_timeout = std::chrono::milliseconds{1000};
  const ParallelReplayResult watched =
      parallel_replay(trace.packets, trace.network, bitmap_factory(), config);
  ParallelReplayConfig plain = config;
  plain.watchdog_timeout = std::chrono::milliseconds{0};
  const ParallelReplayResult unwatched =
      parallel_replay(trace.packets, trace.network, bitmap_factory(), plain);
  EXPECT_EQ(watched.lanes_condemned, 0u);
  for (const std::uint8_t failed : watched.shard_failed) {
    EXPECT_EQ(failed, 0u);
  }
  EXPECT_EQ(watched.merged.stats, unwatched.merged.stats);
  EXPECT_EQ(watched.merged.metrics.deterministic(),
            unwatched.merged.metrics.deterministic());
}

TEST(FaultFailover, ReferenceEngineRejectsInjector) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault plane compiled out";
  const GeneratedTrace& trace = shared_trace();
  FaultInjector injector{FaultSpec::parse("kill-shard:0@0"), 7};
  ParallelReplayConfig config;
  config.shards = 4;
  config.fault_injector = &injector;
  EXPECT_THROW(sharded_replay_reference(trace.packets, trace.network,
                                        bitmap_factory(), config),
               std::invalid_argument);
}

}  // namespace
}  // namespace upbound
