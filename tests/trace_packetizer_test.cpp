#include "trace/packetizer.h"

#include <gtest/gtest.h>

#include <numeric>

#include "net/direction.h"

namespace upbound {
namespace {

FiveTuple tuple() {
  return FiveTuple{Protocol::kTcp, Ipv4Addr{140, 112, 30, 5}, 40000,
                   Ipv4Addr{61, 2, 3, 4}, 80};
}

ConnectionSpec basic_spec() {
  ConnectionSpec spec;
  spec.tuple = tuple();
  spec.start = SimTime::from_sec(10.0);
  spec.rtt = Duration::msec(100);
  MessageSpec request;
  request.from_initiator = true;
  request.prefix = {'G', 'E', 'T'};
  request.total_bytes = 300;
  spec.messages.push_back(request);
  MessageSpec response;
  response.from_initiator = false;
  response.total_bytes = 5000;
  spec.messages.push_back(response);
  return spec;
}

std::uint64_t bytes_in_direction(const Trace& trace, bool from_initiator,
                                 const FiveTuple& t) {
  std::uint64_t total = 0;
  for (const auto& pkt : trace) {
    if ((pkt.tuple == t) == from_initiator) total += pkt.payload_size;
  }
  return total;
}

TEST(Packetizer, TcpHandshakeOpensConnection) {
  const Trace trace = packetize(basic_spec());
  ASSERT_GE(trace.size(), 3u);
  EXPECT_TRUE(trace[0].is_syn_only());
  EXPECT_EQ(trace[0].tuple, tuple());
  EXPECT_EQ(trace[0].timestamp, SimTime::from_sec(10.0));
  EXPECT_TRUE(trace[1].flags.syn);
  EXPECT_TRUE(trace[1].flags.ack);
  EXPECT_EQ(trace[1].tuple, tuple().inverse());
  EXPECT_TRUE(trace[2].flags.ack);
  EXPECT_FALSE(trace[2].flags.syn);
}

TEST(Packetizer, SynAckDelayedByRtt) {
  const Trace trace = packetize(basic_spec());
  EXPECT_EQ(trace[1].timestamp - trace[0].timestamp, Duration::msec(100));
}

TEST(Packetizer, TimestampsNonDecreasing) {
  const Trace trace = packetize(basic_spec());
  EXPECT_TRUE(is_time_sorted(trace));
}

TEST(Packetizer, ByteConservation) {
  const ConnectionSpec spec = basic_spec();
  const Trace trace = packetize(spec);
  EXPECT_EQ(bytes_in_direction(trace, true, spec.tuple), 300u);
  EXPECT_EQ(bytes_in_direction(trace, false, spec.tuple), 5000u);
}

TEST(Packetizer, MssSegmentation) {
  ConnectionSpec spec = basic_spec();
  spec.messages[1].total_bytes = 10'000;
  PacketizerOptions opt;
  opt.mss = 1448;
  const Trace trace = packetize(spec, opt);
  int data_segments = 0;
  for (const auto& pkt : trace) {
    if (pkt.tuple == spec.tuple.inverse() && pkt.payload_size > 0) {
      EXPECT_LE(pkt.payload_size, 1448u);
      ++data_segments;
    }
  }
  EXPECT_EQ(data_segments, 7);  // ceil(10000 / 1448)
}

TEST(Packetizer, FirstSegmentCarriesPrefix) {
  const ConnectionSpec spec = basic_spec();
  const Trace trace = packetize(spec);
  for (const auto& pkt : trace) {
    if (pkt.tuple == spec.tuple && pkt.payload_size > 0) {
      ASSERT_EQ(pkt.payload.size(), 3u);
      EXPECT_EQ(pkt.payload[0], 'G');
      break;
    }
  }
}

TEST(Packetizer, CaptureBytesTruncatesPrefix) {
  ConnectionSpec spec = basic_spec();
  spec.messages[0].prefix.assign(200, 0x42);
  spec.messages[0].total_bytes = 200;
  PacketizerOptions opt;
  opt.capture_bytes = 64;
  const Trace trace = packetize(spec, opt);
  for (const auto& pkt : trace) {
    if (pkt.tuple == spec.tuple && pkt.payload_size > 0) {
      EXPECT_EQ(pkt.payload.size(), 64u);
      EXPECT_EQ(pkt.payload_size, 200u);
      break;
    }
  }
}

TEST(Packetizer, FinCloseSequence) {
  ConnectionSpec spec = basic_spec();
  spec.close = CloseKind::kFin;
  const Trace trace = packetize(spec);
  int fins = 0;
  for (const auto& pkt : trace) {
    if (pkt.flags.fin) ++fins;
  }
  EXPECT_EQ(fins, 2);  // one from each side
  EXPECT_TRUE(trace.back().flags.ack);
}

TEST(Packetizer, RstCloseSinglePacket) {
  ConnectionSpec spec = basic_spec();
  spec.close = CloseKind::kRst;
  const Trace trace = packetize(spec);
  EXPECT_TRUE(trace.back().flags.rst);
  int rsts = 0;
  for (const auto& pkt : trace) {
    if (pkt.flags.rst) ++rsts;
  }
  EXPECT_EQ(rsts, 1);
}

TEST(Packetizer, NoCloseLeavesConnectionDangling) {
  ConnectionSpec spec = basic_spec();
  spec.close = CloseKind::kNone;
  const Trace trace = packetize(spec);
  for (const auto& pkt : trace) {
    EXPECT_FALSE(pkt.flags.fin);
    EXPECT_FALSE(pkt.flags.rst);
  }
}

TEST(Packetizer, UdpHasNoHandshakeOrFlags) {
  ConnectionSpec spec;
  spec.tuple = tuple();
  spec.tuple.protocol = Protocol::kUdp;
  spec.start = SimTime::origin();
  MessageSpec msg;
  msg.from_initiator = true;
  msg.total_bytes = 100;
  spec.messages.push_back(msg);
  const Trace trace = packetize(spec);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].flags, TcpFlags{});
  EXPECT_EQ(trace[0].payload_size, 100u);
}

TEST(Packetizer, OutInDelayMatchesRttForOutboundConnection) {
  // Outbound connection: outbound SYN at t, inbound SYN-ACK at t + RTT.
  ConnectionSpec spec = basic_spec();
  spec.initiator_internal = true;
  spec.rtt = Duration::msec(250);
  const Trace trace = packetize(spec);
  EXPECT_EQ(trace[1].timestamp - trace[0].timestamp, Duration::msec(250));
}

TEST(Packetizer, OutInDelayMatchesRttForInboundConnection) {
  // Inbound connection (external initiator): inbound SYN, outbound SYN-ACK
  // ~1 ms later, inbound ACK a full RTT after that.
  ConnectionSpec spec = basic_spec();
  spec.initiator_internal = false;
  spec.rtt = Duration::msec(250);
  const Trace trace = packetize(spec);
  EXPECT_EQ(trace[1].timestamp - trace[0].timestamp, Duration::msec(1));
  EXPECT_EQ(trace[2].timestamp - trace[1].timestamp, Duration::msec(250));
}

TEST(Packetizer, AcksFlowOppositeToData) {
  ConnectionSpec spec = basic_spec();
  spec.messages[1].total_bytes = 20'000;
  PacketizerOptions opt;
  opt.ack_every = 2;
  const Trace trace = packetize(spec, opt);
  int acks_from_initiator = 0;
  bool saw_response_data = false;
  for (const auto& pkt : trace) {
    if (pkt.tuple == spec.tuple.inverse() && pkt.payload_size > 0) {
      saw_response_data = true;
    }
    if (pkt.tuple == spec.tuple && pkt.payload_size == 0 && pkt.flags.ack &&
        !pkt.flags.syn && !pkt.flags.fin && saw_response_data) {
      ++acks_from_initiator;
    }
  }
  EXPECT_GE(acks_from_initiator, 20'000 / 1448 / 2 - 1);
}

TEST(Packetizer, EmptyMessageStillEmitsProbe) {
  ConnectionSpec spec = basic_spec();
  spec.messages.clear();
  MessageSpec empty;
  empty.from_initiator = true;
  empty.total_bytes = 0;
  spec.messages.push_back(empty);
  const Trace trace = packetize(spec);
  // Handshake (3) + one zero-length data packet + close (3).
  bool saw_empty_data = false;
  for (const auto& pkt : trace) {
    if (pkt.tuple == spec.tuple && pkt.payload_size == 0 && pkt.flags.psh) {
      saw_empty_data = true;
    }
  }
  EXPECT_TRUE(saw_empty_data);
}

TEST(Packetizer, PrefixLargerThanTotalClamps) {
  ConnectionSpec spec = basic_spec();
  spec.messages[0].prefix.assign(500, 0x41);
  spec.messages[0].total_bytes = 100;  // spec error: prefix wins
  const Trace trace = packetize(spec);
  EXPECT_EQ(bytes_in_direction(trace, true, spec.tuple), 500u);
}

TEST(Packetizer, AppendModeAccumulates) {
  Trace out;
  packetize(basic_spec(), PacketizerOptions{}, out);
  const std::size_t first = out.size();
  ConnectionSpec second = basic_spec();
  second.start = SimTime::from_sec(100.0);
  packetize(second, PacketizerOptions{}, out);
  EXPECT_EQ(out.size(), 2 * first);
}

TEST(Packetizer, GapBeforeDelaysMessage) {
  ConnectionSpec spec = basic_spec();
  spec.messages[0].gap_before = Duration::sec(5.0);
  const Trace trace = packetize(spec);
  // First data packet from the initiator comes >= 5 s after the handshake.
  SimTime handshake_done;
  for (const auto& pkt : trace) {
    if (pkt.flags.ack && !pkt.flags.syn && pkt.payload_size == 0) {
      handshake_done = pkt.timestamp;
      break;
    }
  }
  for (const auto& pkt : trace) {
    if (pkt.payload_size > 0 && pkt.tuple == spec.tuple) {
      EXPECT_GE(pkt.timestamp - handshake_done, Duration::sec(5.0));
      break;
    }
  }
}

}  // namespace
}  // namespace upbound
