#include "util/hash.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string_view>
#include <vector>

namespace upbound {
namespace {

std::span<const std::uint8_t> bytes_of(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(Fnv1a64, KnownVectors) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(bytes_of("")), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64(bytes_of("a")), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64(bytes_of("foobar")), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64, SeedChangesResult) {
  EXPECT_NE(fnv1a64(bytes_of("x"), 1), fnv1a64(bytes_of("x"), 2));
}

TEST(Murmur3, EmptyInputStableAcrossCalls) {
  const Hash128 a = murmur3_x64_128({});
  const Hash128 b = murmur3_x64_128({});
  EXPECT_EQ(a, b);
}

TEST(Murmur3, SeedSeparatesStreams) {
  const auto h1 = murmur3_x64_128(bytes_of("hello"), 0);
  const auto h2 = murmur3_x64_128(bytes_of("hello"), 1);
  EXPECT_NE(h1, h2);
}

TEST(Murmur3, AllTailLengthsDistinct) {
  // Exercise every switch arm (lengths 0..16) and confirm no collisions.
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  std::vector<std::uint8_t> data(17);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i + 1);
  }
  for (std::size_t len = 0; len <= 17; ++len) {
    const Hash128 h =
        murmur3_x64_128(std::span<const std::uint8_t>{data.data(), len});
    EXPECT_TRUE(seen.insert({h.lo, h.hi}).second) << "collision at len " << len;
  }
}

TEST(Murmur3, SingleBitFlipAvalanches) {
  std::vector<std::uint8_t> a(32, 0xAA);
  std::vector<std::uint8_t> b = a;
  b[13] ^= 0x01;
  const Hash128 ha = murmur3_x64_128(a);
  const Hash128 hb = murmur3_x64_128(b);
  const int flipped = __builtin_popcountll(ha.lo ^ hb.lo) +
                      __builtin_popcountll(ha.hi ^ hb.hi);
  // Of 128 bits, a good avalanche flips ~half; accept a generous band.
  EXPECT_GT(flipped, 40);
  EXPECT_LT(flipped, 88);
}

TEST(Murmur3, MatchesReferenceVector) {
  // The canonical MurmurHash3_x64_128 digest of "The quick brown fox jumps
  // over the lazy dog" (seed 0) prints as 6c1b07bc7bbc4be347939ac4a93c437a;
  // that string is the little-endian byte dump of (h1, h2), so the integer
  // halves are its byte-reversed values.
  const auto h = murmur3_x64_128(
      bytes_of("The quick brown fox jumps over the lazy dog"), 0);
  EXPECT_EQ(h.lo, 0xe34bbc7bbc071b6cULL);
  EXPECT_EQ(h.hi, 0x7a433ca9c49a9347ULL);
}

TEST(Mix64, BijectiveSpotCheck) {
  // mix64 is a bijection; distinct inputs must give distinct outputs.
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    EXPECT_TRUE(outputs.insert(mix64(i)).second);
  }
}

TEST(Mix64, ZeroMapsToZero) {
  EXPECT_EQ(mix64(0), 0u);
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

}  // namespace
}  // namespace upbound
