#include "filter/snapshot.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace upbound {
namespace {

BitmapFilterConfig small_config() {
  BitmapFilterConfig config;
  config.log2_bits = 14;
  config.vector_count = 4;
  config.hash_count = 3;
  config.rotate_interval = Duration::sec(5.0);
  return config;
}

FiveTuple tuple_n(std::uint32_t n) {
  return FiveTuple{Protocol::kTcp, Ipv4Addr{0x0a000000u + n},
                   static_cast<std::uint16_t>(1024 + n % 60000),
                   Ipv4Addr{0x3d000000u + n * 7919u},
                   static_cast<std::uint16_t>(80 + n % 40000)};
}

PacketRecord pkt_of(const FiveTuple& t, double t_sec = 0.0) {
  PacketRecord pkt;
  pkt.timestamp = SimTime::from_sec(t_sec);
  pkt.tuple = t;
  return pkt;
}

TEST(Snapshot, RoundTripPreservesEveryDecision) {
  BitmapFilter original{small_config()};
  Rng rng{1};
  double t = 0.0;
  for (int i = 0; i < 3000; ++i) {
    t += rng.exponential(0.01);
    original.advance_time(SimTime::from_sec(t));
    original.record_outbound(
        pkt_of(tuple_n(static_cast<std::uint32_t>(rng.next_below(800))), t));
  }

  const auto snapshot = snapshot_bitmap_filter(original, SimTime::from_sec(t));
  auto restored = restore_bitmap_filter(snapshot);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->snapshot_time, SimTime::from_sec(t));
  EXPECT_EQ(restored->filter.current_index(), original.current_index());
  EXPECT_EQ(restored->filter.rotations(), original.rotations());
  EXPECT_DOUBLE_EQ(restored->filter.current_utilization(),
                   original.current_utilization());

  // Every lookup agrees, hits and misses alike.
  for (std::uint32_t n = 0; n < 2000; ++n) {
    PacketRecord probe = pkt_of(tuple_n(n), t);
    probe.tuple = probe.tuple.inverse();
    ASSERT_EQ(original.admits_inbound(probe),
              restored->filter.admits_inbound(probe))
        << "divergence at tuple " << n;
  }
}

TEST(Snapshot, RestoredFilterContinuesRotating) {
  BitmapFilter original{small_config()};
  original.advance_time(SimTime::from_sec(7.0));  // one rotation done
  original.record_outbound(pkt_of(tuple_n(1), 7.0));

  const auto snapshot =
      snapshot_bitmap_filter(original, SimTime::from_sec(7.0));
  auto restored = restore_bitmap_filter(snapshot);
  ASSERT_TRUE(restored.has_value());

  // Both filters, advanced identically, expire the mark at the same time.
  for (double t = 8.0; t <= 30.0; t += 1.0) {
    original.advance_time(SimTime::from_sec(t));
    restored->filter.advance_time(SimTime::from_sec(t));
    PacketRecord probe = pkt_of(tuple_n(1), t);
    probe.tuple = probe.tuple.inverse();
    ASSERT_EQ(original.admits_inbound(probe),
              restored->filter.admits_inbound(probe))
        << "divergence at t=" << t;
  }
}

TEST(Snapshot, ConfigEmbedded) {
  BitmapFilterConfig config = small_config();
  config.key_mode = KeyMode::kHolePunching;
  config.hash_seed = 12345;
  BitmapFilter filter{config};
  const auto snapshot = snapshot_bitmap_filter(filter, SimTime::origin());
  auto restored = restore_bitmap_filter(snapshot);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->filter.config().key_mode, KeyMode::kHolePunching);
  EXPECT_EQ(restored->filter.config().hash_seed, 12345u);
  EXPECT_EQ(restored->filter.config().log2_bits, 14u);
}

TEST(Snapshot, SizeIsHeaderPlusBits) {
  BitmapFilter filter{small_config()};
  const auto snapshot = snapshot_bitmap_filter(filter, SimTime::origin());
  EXPECT_EQ(snapshot.size(), 72u + 4u * (1u << 14) / 8u);  // 72-byte header
}

TEST(Snapshot, MalformedRejected) {
  BitmapFilter filter{small_config()};
  auto snapshot = snapshot_bitmap_filter(filter, SimTime::origin());

  auto bad_magic = snapshot;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(restore_bitmap_filter(bad_magic).has_value());

  auto bad_version = snapshot;
  bad_version[4] = 99;
  EXPECT_FALSE(restore_bitmap_filter(bad_version).has_value());

  auto truncated = snapshot;
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(restore_bitmap_filter(truncated).has_value());

  auto trailing = snapshot;
  trailing.push_back(0);
  EXPECT_FALSE(restore_bitmap_filter(trailing).has_value());

  EXPECT_FALSE(restore_bitmap_filter({}).has_value());
}

TEST(Snapshot, InsaneConfigRejected) {
  BitmapFilter filter{small_config()};
  auto snapshot = snapshot_bitmap_filter(filter, SimTime::origin());
  snapshot[8] = 200;  // log2_bits = 200: config validation must refuse
  EXPECT_FALSE(restore_bitmap_filter(snapshot).has_value());
}

TEST(Snapshot, CheckedRestoreNamesTheFailure) {
  BitmapFilter filter{small_config()};
  const auto snapshot = snapshot_bitmap_filter(filter, SimTime::origin());

  auto bad_magic = snapshot;
  bad_magic[0] ^= 0xff;
  EXPECT_EQ(restore_bitmap_filter_checked(bad_magic).error,
            SnapshotRestoreError::kBadMagic);

  auto bad_version = snapshot;
  bad_version[4] = 99;
  EXPECT_EQ(restore_bitmap_filter_checked(bad_version).error,
            SnapshotRestoreError::kBadVersion);

  auto bad_config = snapshot;
  bad_config[8] = 200;
  EXPECT_EQ(restore_bitmap_filter_checked(bad_config).error,
            SnapshotRestoreError::kBadConfig);

  auto bad_index = snapshot;
  bad_index[40] = 7;  // current index byte; vector_count is 4
  EXPECT_EQ(restore_bitmap_filter_checked(bad_index).error,
            SnapshotRestoreError::kBadRotationIndex);

  // next_rotation forged to INT64_MIN usec: restoring would wedge the
  // first advance_time() in a rotate-per-dt loop across the gap.
  auto bad_schedule = snapshot;
  for (std::size_t i = 44; i < 52; ++i) bad_schedule[i] = 0;
  bad_schedule[51] = 0x80;
  EXPECT_EQ(restore_bitmap_filter_checked(bad_schedule).error,
            SnapshotRestoreError::kBadRotationTime);

  auto truncated = snapshot;
  truncated.resize(truncated.size() / 2);
  EXPECT_EQ(restore_bitmap_filter_checked(truncated).error,
            SnapshotRestoreError::kTruncated);
  EXPECT_EQ(restore_bitmap_filter_checked({}).error,
            SnapshotRestoreError::kTruncated);

  auto trailing = snapshot;
  trailing.push_back(0);
  EXPECT_EQ(restore_bitmap_filter_checked(trailing).error,
            SnapshotRestoreError::kTrailingBytes);

  const auto good = restore_bitmap_filter_checked(snapshot);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.error, SnapshotRestoreError::kNone);
  ASSERT_TRUE(good.restored.has_value());
}

TEST(Snapshot, StaleSnapshotRejectedWithGap) {
  BitmapFilter filter{small_config()};
  const SimTime taken = SimTime::from_sec(100.0);
  filter.advance_time(taken);  // clock caught up, as after a real replay
  const auto snapshot = snapshot_bitmap_filter(filter, taken);
  const Duration te = small_config().expiry_timer();  // 4 * 5s

  // Inside T_e the restore succeeds, even right at the edge.
  EXPECT_TRUE(restore_bitmap_filter_checked(snapshot, taken).ok());
  EXPECT_TRUE(restore_bitmap_filter_checked(snapshot, taken + te).ok());

  // Past T_e every mark has expired: typed rejection with the gap size.
  const auto stale =
      restore_bitmap_filter_checked(snapshot, taken + te + Duration::sec(1.0));
  EXPECT_FALSE(stale.ok());
  EXPECT_EQ(stale.error, SnapshotRestoreError::kStale);
  EXPECT_EQ(stale.staleness, te + Duration::sec(1.0));
  EXPECT_STREQ(snapshot_restore_error_name(stale.error),
               "stale (older than T_e)");

  // Without a `now` the staleness check is skipped (legacy behaviour).
  EXPECT_TRUE(restore_bitmap_filter_checked(snapshot).ok());
}

}  // namespace
}  // namespace upbound
