// Tests for the Section 4.3 / 5.1 parameter math, including the paper's
// own worked example: N = 2^20, k = 4, dt = 5 s, T_e = 20 s gives
// c <= ~167K / 125K / 83K active connections for p = 10% / 5% / 1%,
// m = 3 hash functions, and 512 KB of memory.
#include <gtest/gtest.h>

#include <cmath>

#include "filter/params.h"

namespace upbound {
namespace {

TEST(Params, PenetrationAtUtilizationIsEq2) {
  EXPECT_DOUBLE_EQ(penetration_probability_at_utilization(0.5, 3), 0.125);
  EXPECT_DOUBLE_EQ(penetration_probability_at_utilization(0.0, 3), 0.0);
  EXPECT_DOUBLE_EQ(penetration_probability_at_utilization(1.0, 5), 1.0);
}

TEST(Params, PenetrationApproximationIsEq3) {
  // p ~= (c*m/N)^m.
  const double p = penetration_probability(100, 3, 1000);
  EXPECT_NEAR(p, std::pow(0.3, 3.0), 1e-12);
}

TEST(Params, PenetrationClampsAtFullUtilization) {
  EXPECT_DOUBLE_EQ(penetration_probability(10'000, 4, 100), 1.0);
}

TEST(Params, OptimalHashCountRealIsEq5) {
  // m* = N / (e*c).
  EXPECT_NEAR(optimal_hash_count_real(1 << 20, 100'000),
              (1 << 20) / (std::exp(1.0) * 100'000), 1e-9);
}

TEST(Params, OptimalHashCountNeverBelowOne) {
  EXPECT_EQ(optimal_hash_count(100, 1'000'000), 1u);
}

TEST(Params, OptimalHashCountBeatsNeighbours) {
  const std::size_t bits = 1 << 20;
  for (std::size_t c : {20'000u, 50'000u, 100'000u, 150'000u}) {
    const unsigned m = optimal_hash_count(bits, c);
    const double p_m = penetration_probability(c, m, bits);
    if (m > 1) {
      EXPECT_LE(p_m, penetration_probability(c, m - 1, bits)) << "c=" << c;
    }
    EXPECT_LE(p_m, penetration_probability(c, m + 1, bits)) << "c=" << c;
  }
}

TEST(Params, PaperWorkedExampleConnectionBounds) {
  // Section 5.1: N = 2^20, target p of 10%, 5%, 1% -> c <= 167K, 125K, 83K.
  const std::size_t bits = 1 << 20;
  EXPECT_NEAR(static_cast<double>(max_connections_for(0.10, bits)), 167'000,
              1'500);
  EXPECT_NEAR(static_cast<double>(max_connections_for(0.05, bits)), 128'000,
              4'000);
  EXPECT_NEAR(static_cast<double>(max_connections_for(0.01, bits)), 83'000,
              1'500);
}

TEST(Params, BoundIsMonotoneInTargetP) {
  const std::size_t bits = 1 << 20;
  EXPECT_GT(max_connections_for(0.10, bits), max_connections_for(0.05, bits));
  EXPECT_GT(max_connections_for(0.05, bits), max_connections_for(0.01, bits));
}

TEST(Params, BoundScalesLinearlyWithBits) {
  EXPECT_NEAR(static_cast<double>(max_connections_for(0.05, 2u << 20)),
              2.0 * static_cast<double>(max_connections_for(0.05, 1u << 20)),
              2.0);
}

TEST(Params, Eq6SatisfiesEq3AtOptimalM) {
  // Marking exactly the Eq. 6 bound of connections and using the optimal m
  // must give a penetration probability within tolerance of the target.
  const std::size_t bits = 1 << 20;
  for (double target : {0.10, 0.05, 0.01}) {
    const std::size_t c = max_connections_for(target, bits);
    const unsigned m = optimal_hash_count(bits, c);
    const double p = penetration_probability(c, m, bits);
    EXPECT_NEAR(p, target, target * 0.2) << "target " << target;
  }
}

TEST(Params, AdviseReproducesPaperSetup) {
  // Paper trace: ~15K active connections per 20 s window, N = 2^20, k = 4,
  // dt = 5 s. Expect tiny expected penetration and 512 KB memory; the
  // paper deploys m = 3 (storage/CPU trade-off) rather than the optimum.
  const BitmapAdvice advice =
      advise(1 << 20, 4, Duration::sec(5.0), 15'000);
  EXPECT_EQ(advice.memory_bytes, 512u * 1024u);
  EXPECT_EQ(advice.expiry_timer, Duration::sec(20.0));
  EXPECT_GE(advice.hash_count, 3u);
  EXPECT_LT(advice.expected_penetration, 1e-6);
  EXPECT_FALSE(advice.to_string().empty());
}

TEST(Params, AdviseExpectedPenetrationConsistent) {
  const BitmapAdvice advice = advise(1 << 16, 4, Duration::sec(5.0), 5'000);
  EXPECT_DOUBLE_EQ(
      advice.expected_penetration,
      penetration_probability(5'000, advice.hash_count, 1 << 16));
}

TEST(Params, InvalidArgumentsThrow) {
  EXPECT_THROW(penetration_probability_at_utilization(-0.1, 3),
               std::invalid_argument);
  EXPECT_THROW(penetration_probability_at_utilization(1.1, 3),
               std::invalid_argument);
  EXPECT_THROW(penetration_probability_at_utilization(0.5, 0),
               std::invalid_argument);
  EXPECT_THROW(penetration_probability(100, 3, 0), std::invalid_argument);
  EXPECT_THROW(optimal_hash_count(0, 100), std::invalid_argument);
  EXPECT_THROW(optimal_hash_count(100, 0), std::invalid_argument);
  EXPECT_THROW(max_connections_for(0.0, 100), std::invalid_argument);
  EXPECT_THROW(max_connections_for(1.0, 100), std::invalid_argument);
  EXPECT_THROW(advise(1 << 20, 0, Duration::sec(5.0), 100),
               std::invalid_argument);
  EXPECT_THROW(advise(1 << 20, 4, Duration::sec(0.0), 100),
               std::invalid_argument);
}

}  // namespace
}  // namespace upbound
