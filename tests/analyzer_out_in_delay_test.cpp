#include "analyzer/out_in_delay.h"

#include <gtest/gtest.h>

namespace upbound {
namespace {

FiveTuple out_tuple(std::uint16_t sport = 40000) {
  return FiveTuple{Protocol::kTcp, Ipv4Addr{140, 112, 30, 5}, sport,
                   Ipv4Addr{61, 2, 3, 4}, 80};
}

PacketRecord pkt(const FiveTuple& t, double t_sec) {
  PacketRecord p;
  p.timestamp = SimTime::from_sec(t_sec);
  p.tuple = t;
  return p;
}

TEST(OutInDelay, MeasuresRoundTrip) {
  OutInDelayTracker tracker;
  tracker.on_packet(pkt(out_tuple(), 1.0), Direction::kOutbound);
  tracker.on_packet(pkt(out_tuple().inverse(), 1.25), Direction::kInbound);
  ASSERT_EQ(tracker.delays().count(), 1u);
  EXPECT_DOUBLE_EQ(tracker.delays().sorted()[0], 0.25);
}

TEST(OutInDelay, InboundWithoutPriorOutboundIgnored) {
  OutInDelayTracker tracker;
  tracker.on_packet(pkt(out_tuple().inverse(), 1.0), Direction::kInbound);
  EXPECT_EQ(tracker.delays().count(), 0u);
}

TEST(OutInDelay, OutboundRefreshUpdatesTimestamp) {
  OutInDelayTracker tracker;
  tracker.on_packet(pkt(out_tuple(), 1.0), Direction::kOutbound);
  tracker.on_packet(pkt(out_tuple(), 5.0), Direction::kOutbound);
  tracker.on_packet(pkt(out_tuple().inverse(), 5.1), Direction::kInbound);
  ASSERT_EQ(tracker.delays().count(), 1u);
  EXPECT_NEAR(tracker.delays().sorted()[0], 0.1, 1e-9);
}

TEST(OutInDelay, MultipleInboundSampleSameOutbound) {
  // Each inbound packet of the connection yields a sample against the
  // latest outbound packet.
  OutInDelayTracker tracker;
  tracker.on_packet(pkt(out_tuple(), 1.0), Direction::kOutbound);
  tracker.on_packet(pkt(out_tuple().inverse(), 1.2), Direction::kInbound);
  tracker.on_packet(pkt(out_tuple().inverse(), 1.4), Direction::kInbound);
  EXPECT_EQ(tracker.delays().count(), 2u);
}

TEST(OutInDelay, ExpiryDropsStalePairs) {
  OutInDelayTracker tracker{Duration::sec(600.0)};
  tracker.on_packet(pkt(out_tuple(), 0.0), Direction::kOutbound);
  // Reply after the expiry timer: the pair is treated as port reuse.
  tracker.on_packet(pkt(out_tuple().inverse(), 601.0), Direction::kInbound);
  EXPECT_EQ(tracker.delays().count(), 0u);
  EXPECT_EQ(tracker.expired_pairs(), 1u);
}

TEST(OutInDelay, SweepBoundsTrackedPairs) {
  OutInDelayTracker tracker{Duration::sec(10.0)};
  for (int i = 0; i < 1000; ++i) {
    tracker.on_packet(pkt(out_tuple(static_cast<std::uint16_t>(10000 + i)),
                          i * 0.001),
                      Direction::kOutbound);
  }
  EXPECT_EQ(tracker.tracked_pairs(), 1000u);
  // A packet far in the future sweeps everything.
  tracker.on_packet(pkt(out_tuple(9), 100.0), Direction::kOutbound);
  EXPECT_EQ(tracker.tracked_pairs(), 1u);
}

TEST(OutInDelay, DistinctConnectionsIndependent) {
  OutInDelayTracker tracker;
  tracker.on_packet(pkt(out_tuple(1000), 0.0), Direction::kOutbound);
  tracker.on_packet(pkt(out_tuple(2000), 1.0), Direction::kOutbound);
  tracker.on_packet(pkt(out_tuple(2000).inverse(), 1.5),
                    Direction::kInbound);
  tracker.on_packet(pkt(out_tuple(1000).inverse(), 2.0),
                    Direction::kInbound);
  ASSERT_EQ(tracker.delays().count(), 2u);
  EXPECT_DOUBLE_EQ(tracker.delays().sorted()[0], 0.5);
  EXPECT_DOUBLE_EQ(tracker.delays().sorted()[1], 2.0);
}

TEST(OutInDelay, InvalidExpiryThrows) {
  EXPECT_THROW(OutInDelayTracker{Duration::sec(0.0)}, std::invalid_argument);
}

}  // namespace
}  // namespace upbound
