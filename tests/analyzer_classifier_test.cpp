// Classifier behaviour: pattern phase, port fallback, P2P endpoint memo,
// and FTP data-channel tracking, including the ablation toggles.
#include "analyzer/classifier.h"

#include <gtest/gtest.h>

#include "analyzer/conn_table.h"
#include "trace/payloads.h"

namespace upbound {
namespace {

class ClassifierTest : public ::testing::Test {
 protected:
  PacketRecord pkt(const FiveTuple& t, double t_sec, TcpFlags flags,
                   payloads::Bytes payload = {}) {
    PacketRecord p;
    p.timestamp = SimTime::from_sec(t_sec);
    p.tuple = t;
    p.flags = flags;
    p.payload_size = static_cast<std::uint32_t>(payload.size());
    p.payload = std::move(payload);
    return p;
  }

  // Feeds a packet through table + classifier; returns the record.
  ConnectionRecord& feed(const PacketRecord& p, Direction dir) {
    ConnectionRecord& rec = table_.update(p, dir);
    classifier_.observe(rec, p);
    return rec;
  }

  // Opens a TCP connection (SYN / SYN-ACK / ACK) at t_sec.
  void open_tcp(const FiveTuple& t, double t_sec) {
    feed(pkt(t, t_sec, {.syn = true}), Direction::kOutbound);
    feed(pkt(t.inverse(), t_sec + 0.05, {.syn = true, .ack = true}),
         Direction::kInbound);
    feed(pkt(t, t_sec + 0.051, {.ack = true}), Direction::kOutbound);
  }

  ConnTable table_;
  Classifier classifier_;
  Rng rng_{3};
  FiveTuple tcp_{Protocol::kTcp, Ipv4Addr{140, 112, 30, 5}, 40000,
                 Ipv4Addr{61, 2, 3, 4}, 23456};
};

TEST_F(ClassifierTest, PatternIdentifiesBittorrentAfterHandshakePayload) {
  open_tcp(tcp_, 0.0);
  auto& rec = feed(pkt(tcp_, 0.1, {.ack = true, .psh = true},
                       payloads::bittorrent_handshake(rng_)),
                   Direction::kOutbound);
  EXPECT_EQ(rec.app, AppProtocol::kBitTorrent);
  EXPECT_EQ(rec.method, ClassifyMethod::kPattern);
  EXPECT_TRUE(rec.classification_final);
}

TEST_F(ClassifierTest, ConcatenatedStreamMatchesAcrossPackets) {
  // Split the BT handshake across two data packets: the signature only
  // completes in the concatenated stream.
  open_tcp(tcp_, 0.0);
  payloads::Bytes hs = payloads::bittorrent_handshake(rng_);
  payloads::Bytes first(hs.begin(), hs.begin() + 10);
  payloads::Bytes second(hs.begin() + 10, hs.end());
  auto& rec1 = feed(pkt(tcp_, 0.1, {.ack = true}, std::move(first)),
                    Direction::kOutbound);
  EXPECT_EQ(rec1.app, AppProtocol::kUnknown);
  auto& rec2 = feed(pkt(tcp_, 0.2, {.ack = true}, std::move(second)),
                    Direction::kOutbound);
  EXPECT_EQ(rec2.app, AppProtocol::kBitTorrent);
}

TEST_F(ClassifierTest, PatternBudgetFourDataPackets) {
  open_tcp(tcp_, 0.0);
  for (int i = 0; i < 4; ++i) {
    feed(pkt(tcp_, 0.1 + i * 0.1, {.ack = true},
             payloads::random_bytes(rng_, 40)),
         Direction::kOutbound);
  }
  const ConnectionRecord* rec = table_.find(tcp_);
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->classification_final);
  // A fifth packet carrying a real signature changes nothing.
  auto& after = feed(pkt(tcp_, 0.9, {.ack = true},
                         payloads::bittorrent_handshake(rng_)),
                     Direction::kOutbound);
  EXPECT_EQ(after.app, AppProtocol::kUnknown);
}

TEST_F(ClassifierTest, PortFallbackWhenPatternsFail) {
  FiveTuple http = tcp_;
  http.dst_port = 8080;
  open_tcp(http, 0.0);
  for (int i = 0; i < 4; ++i) {
    feed(pkt(http, 0.1 + i * 0.1, {.ack = true},
             payloads::random_bytes(rng_, 40)),
         Direction::kOutbound);
  }
  const ConnectionRecord* rec = table_.find(http);
  EXPECT_EQ(rec->app, AppProtocol::kHttp);
  EXPECT_EQ(rec->method, ClassifyMethod::kPort);
}

TEST_F(ClassifierTest, MidStreamTcpSkipsPatterns) {
  // No SYN captured: the paper's analyzer does not attempt patterns.
  auto& rec = feed(pkt(tcp_, 0.0, {.ack = true},
                       payloads::bittorrent_handshake(rng_)),
                   Direction::kOutbound);
  EXPECT_NE(rec.method, ClassifyMethod::kPattern);
  EXPECT_TRUE(rec.classification_final);
}

TEST_F(ClassifierTest, UdpDatagramsExaminedDirectly) {
  FiveTuple udp{Protocol::kUdp, Ipv4Addr{140, 112, 30, 5}, 40000,
                Ipv4Addr{61, 2, 3, 4}, 9999};
  auto& rec =
      feed(pkt(udp, 0.0, {}, payloads::edonkey_udp_ping(rng_)),
           Direction::kOutbound);
  EXPECT_EQ(rec.app, AppProtocol::kEdonkey);
  EXPECT_EQ(rec.method, ClassifyMethod::kPattern);
}

TEST_F(ClassifierTest, FinalizeAppliesPortFallbackToShortFlows) {
  FiveTuple dns{Protocol::kUdp, Ipv4Addr{140, 112, 30, 5}, 40000,
                Ipv4Addr{8, 8, 8, 8}, 53};
  auto& rec = feed(pkt(dns, 0.0, {}, payloads::dns_query(rng_)),
                   Direction::kOutbound);
  EXPECT_EQ(rec.app, AppProtocol::kUnknown);  // one datagram, budget open
  classifier_.finalize(rec);
  EXPECT_EQ(rec.app, AppProtocol::kDns);
  EXPECT_EQ(rec.method, ClassifyMethod::kPort);
}

TEST_F(ClassifierTest, EndpointMemoLabelsFutureConnections) {
  // First connection to the peer identified by pattern.
  open_tcp(tcp_, 0.0);
  feed(pkt(tcp_, 0.1, {.ack = true}, payloads::bittorrent_handshake(rng_)),
       Direction::kOutbound);
  EXPECT_EQ(classifier_.memo_size(), 1u);

  // A second connection from a different client to the same B:y is
  // labeled immediately, before any payload.
  FiveTuple second = tcp_;
  second.src_addr = Ipv4Addr{140, 112, 30, 77};
  second.src_port = 51000;
  auto& rec = feed(pkt(second, 5.0, {.syn = true}), Direction::kOutbound);
  EXPECT_EQ(rec.app, AppProtocol::kBitTorrent);
  EXPECT_EQ(rec.method, ClassifyMethod::kEndpointMemo);
  EXPECT_EQ(classifier_.memo_hits(), 1u);
}

TEST_F(ClassifierTest, MemoKeyedOnServiceEndpointNotClient) {
  open_tcp(tcp_, 0.0);
  feed(pkt(tcp_, 0.1, {.ack = true}, payloads::bittorrent_handshake(rng_)),
       Direction::kOutbound);

  // Connection to a DIFFERENT service port on the same host: no memo hit.
  FiveTuple other = tcp_;
  other.src_port = 51001;
  other.dst_port = 23457;
  auto& rec = feed(pkt(other, 5.0, {.syn = true}), Direction::kOutbound);
  EXPECT_EQ(rec.method, ClassifyMethod::kNone);
}

TEST_F(ClassifierTest, MemoDisabledByConfig) {
  ClassifierConfig config;
  config.enable_endpoint_memo = false;
  Classifier classifier{config};

  ConnectionRecord& rec1 =
      table_.update(pkt(tcp_, 0.0, {.syn = true}), Direction::kOutbound);
  classifier.observe(rec1, pkt(tcp_, 0.0, {.syn = true}));
  const PacketRecord bt = pkt(tcp_, 0.1, {.ack = true},
                              payloads::bittorrent_handshake(rng_));
  ConnectionRecord& rec2 = table_.update(bt, Direction::kOutbound);
  classifier.observe(rec2, bt);
  EXPECT_EQ(rec2.app, AppProtocol::kBitTorrent);
  EXPECT_EQ(classifier.memo_size(), 0u);
}

TEST_F(ClassifierTest, FtpControlAnnouncesDataConnection) {
  FiveTuple control = tcp_;
  control.dst_port = 21;
  open_tcp(control, 0.0);
  // Banner identifies the connection as FTP.
  auto& rec = feed(pkt(control.inverse(), 0.2, {.ack = true, .psh = true},
                       payloads::ftp_banner()),
                   Direction::kInbound);
  EXPECT_EQ(rec.app, AppProtocol::kFtp);

  // PASV reply announces the data endpoint.
  feed(pkt(control.inverse(), 1.0, {.ack = true, .psh = true},
           payloads::ftp_pasv_response(control.dst_addr, 51234)),
       Direction::kInbound);

  // The matching data connection is pre-labeled on its SYN.
  FiveTuple data = control;
  data.src_port = 40001;
  data.dst_port = 51234;
  auto& data_rec = feed(pkt(data, 2.0, {.syn = true}), Direction::kOutbound);
  EXPECT_EQ(data_rec.app, AppProtocol::kFtp);
  EXPECT_EQ(data_rec.method, ClassifyMethod::kFtpData);
  EXPECT_EQ(classifier_.ftp_data_hits(), 1u);
}

TEST_F(ClassifierTest, FtpPortCommandAlsoTracked) {
  FiveTuple control = tcp_;
  control.dst_port = 21;
  open_tcp(control, 0.0);
  feed(pkt(control.inverse(), 0.2, {.ack = true}, payloads::ftp_banner()),
       Direction::kInbound);
  // Active mode: the CLIENT announces its own listening endpoint.
  feed(pkt(control, 1.0, {.ack = true},
           payloads::ftp_port_command(control.src_addr, 45000)),
       Direction::kOutbound);

  FiveTuple data{Protocol::kTcp, control.dst_addr, 20, control.src_addr,
                 45000};
  auto& data_rec = feed(pkt(data, 2.0, {.syn = true}), Direction::kInbound);
  EXPECT_EQ(data_rec.app, AppProtocol::kFtp);
  EXPECT_EQ(data_rec.method, ClassifyMethod::kFtpData);
}

TEST_F(ClassifierTest, FtpExpectationExpires) {
  ClassifierConfig config;
  config.ftp_expect_ttl = Duration::sec(10.0);
  Classifier classifier{config};

  FiveTuple control = tcp_;
  control.dst_port = 21;
  auto feed2 = [&](const PacketRecord& p, Direction d) -> ConnectionRecord& {
    ConnectionRecord& r = table_.update(p, d);
    classifier.observe(r, p);
    return r;
  };
  feed2(pkt(control, 0.0, {.syn = true}), Direction::kOutbound);
  feed2(pkt(control.inverse(), 0.1, {.ack = true}, payloads::ftp_banner()),
        Direction::kInbound);
  feed2(pkt(control.inverse(), 0.2, {.ack = true},
            payloads::ftp_pasv_response(control.dst_addr, 52000)),
        Direction::kInbound);

  // Data connection arrives after the TTL: not labeled as FTP data.
  FiveTuple data = control;
  data.src_port = 40002;
  data.dst_port = 52000;
  auto& rec = feed2(pkt(data, 30.0, {.syn = true}), Direction::kOutbound);
  EXPECT_NE(rec.method, ClassifyMethod::kFtpData);
}

TEST_F(ClassifierTest, PatternsDisabledFallsStraightToPorts) {
  ClassifierConfig config;
  config.enable_patterns = false;
  Classifier classifier{config};
  FiveTuple http = tcp_;
  http.dst_port = 80;
  const PacketRecord syn = pkt(http, 0.0, {.syn = true});
  ConnectionRecord& rec = table_.update(syn, Direction::kOutbound);
  classifier.observe(rec, syn);
  const PacketRecord data =
      pkt(http, 0.1, {.ack = true}, payloads::bittorrent_handshake(rng_));
  table_.update(data, Direction::kOutbound);
  classifier.observe(rec, data);
  EXPECT_EQ(rec.app, AppProtocol::kHttp);  // port, not the BT pattern
  EXPECT_EQ(rec.method, ClassifyMethod::kPort);
}

TEST_F(ClassifierTest, EverythingDisabledLeavesUnknown) {
  ClassifierConfig config;
  config.enable_patterns = false;
  config.enable_port_fallback = false;
  config.enable_endpoint_memo = false;
  config.enable_ftp_tracking = false;
  Classifier classifier{config};
  FiveTuple http = tcp_;
  http.dst_port = 80;
  const PacketRecord data =
      pkt(http, 0.0, {.ack = true}, payloads::http_get("x", "/"));
  ConnectionRecord& rec = table_.update(data, Direction::kOutbound);
  classifier.observe(rec, data);
  classifier.finalize(rec);
  EXPECT_EQ(rec.app, AppProtocol::kUnknown);
}

}  // namespace
}  // namespace upbound
