// SPSC ring semantics plus a two-thread hand-off stress. The deeper
// cross-thread torture (run this binary under -DUPBOUND_TSAN) lives in
// concurrency_stress_test.cpp; here we pin down the single-queue contract
// the parallel replay engine builds on.
#include "util/spsc_ring.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

namespace upbound {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRing, FifoOrderSingleThreaded) {
  SpscRing<int> ring{8};
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, PushFailsWhenFullPopFailsWhenEmpty) {
  SpscRing<int> ring{2};
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_FALSE(ring.try_push(3));
  EXPECT_EQ(ring.size(), 2u);
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(ring.try_push(3));  // slot freed by the pop
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 3);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<std::size_t> ring{4};
  std::size_t out = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(i));
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
}

TEST(SpscRing, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring{4};
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

TEST(SpscRing, TwoThreadHandOffPreservesOrderAndCount) {
  constexpr std::size_t kItems = 200'000;
  SpscRing<std::size_t> ring{64};

  std::thread producer([&ring] {
    for (std::size_t i = 0; i < kItems; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });

  std::size_t received = 0;
  std::uint64_t sum = 0;
  std::size_t value = 0;
  while (received < kItems) {
    if (!ring.try_pop(value)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(value, received);  // strict FIFO: i-th pop sees i
    sum += value;
    ++received;
  }
  producer.join();
  EXPECT_FALSE(ring.try_pop(value));
  EXPECT_EQ(sum, static_cast<std::uint64_t>(kItems) * (kItems - 1) / 2);
}

TEST(SpscRing, SizeNeverWrapsUnderConcurrentPop) {
  // Regression: size() used to load tail_ before head_; a pop landing
  // between the two loads paired a stale tail with a fresh head, the
  // unsigned subtraction wrapped to ~2^64, and empty() reported a full
  // ring. With head_ loaded first a racing observer may overestimate (a
  // stale head against a fresh tail) but the value stays small and sane --
  // bounded by the traffic between the two loads, never near 2^64.
  constexpr std::size_t kItems = 150'000;
  SpscRing<std::size_t> ring{16};
  std::atomic<bool> stop{false};

  std::thread observer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t size = ring.size();
      ASSERT_LE(size, kItems);  // a wrapped subtraction would be ~2^64
    }
  });

  std::thread producer([&ring] {
    for (std::size_t i = 0; i < kItems; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });

  std::size_t value = 0;
  for (std::size_t received = 0; received < kItems; ++received) {
    while (!ring.try_pop(value)) std::this_thread::yield();
    ASSERT_EQ(value, received);
  }
  producer.join();
  stop.store(true, std::memory_order_relaxed);
  observer.join();
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, RecyclingPairNeverLosesABuffer) {
  // The replay engine's usage pattern: a data ring forward, a free ring
  // back, with a fixed buffer population cycling between them.
  constexpr std::size_t kBuffers = 8;
  constexpr std::size_t kRounds = 50'000;
  SpscRing<int> data{kBuffers};
  SpscRing<int> free_ring{kBuffers};
  for (int b = 0; b < static_cast<int>(kBuffers); ++b) {
    ASSERT_TRUE(free_ring.try_push(b));
  }

  std::thread consumer([&] {
    int buffer = -1;
    for (std::size_t i = 0; i < kRounds; ++i) {
      while (!data.try_pop(buffer)) std::this_thread::yield();
      while (!free_ring.try_push(buffer)) std::this_thread::yield();
    }
  });

  int buffer = -1;
  std::vector<std::size_t> uses(kBuffers, 0);
  for (std::size_t i = 0; i < kRounds; ++i) {
    while (!free_ring.try_pop(buffer)) std::this_thread::yield();
    ASSERT_GE(buffer, 0);
    ASSERT_LT(static_cast<std::size_t>(buffer), kBuffers);
    ++uses[static_cast<std::size_t>(buffer)];
    while (!data.try_push(buffer)) std::this_thread::yield();
  }
  consumer.join();

  std::size_t total = 0;
  for (const std::size_t u : uses) total += u;
  EXPECT_EQ(total, kRounds);
  // Every buffer ends parked in exactly one of the two rings.
  EXPECT_EQ(data.size() + free_ring.size(), kBuffers);
}

}  // namespace
}  // namespace upbound
