// Robustness sweeps over the untrusted-input surfaces: frame decoding,
// pcap files, and regex patterns must either produce a valid result or
// fail cleanly (nullopt / typed exception) on arbitrary bytes -- never
// crash, hang, or read out of bounds.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "filter/snapshot.h"
#include "net/headers.h"
#include "net/pcap.h"
#include "rex/regex.h"
#include "util/rng.h"

namespace upbound {
namespace {

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

TEST(FuzzDecodeFrame, RandomBytesNeverCrash) {
  Rng rng{20260706};
  int decoded = 0;
  for (int trial = 0; trial < 20'000; ++trial) {
    const auto frame = random_bytes(rng, rng.next_below(200));
    const auto result = decode_frame(frame, SimTime::origin());
    if (result.has_value()) ++decoded;
  }
  // Random bytes essentially never look like valid IPv4/TCP frames.
  EXPECT_LT(decoded, 10);
}

TEST(FuzzDecodeFrame, MutatedValidFramesNeverCrash) {
  Rng rng{7};
  PacketRecord pkt;
  pkt.tuple = FiveTuple{Protocol::kTcp, Ipv4Addr{10, 0, 0, 1}, 1234,
                        Ipv4Addr{8, 8, 8, 8}, 80};
  pkt.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  pkt.payload_size = 8;
  const auto base = encode_frame(pkt);
  for (int trial = 0; trial < 20'000; ++trial) {
    auto frame = base;
    // 1-4 random byte mutations anywhere in the frame.
    const int mutations = 1 + static_cast<int>(rng.next_below(4));
    for (int m = 0; m < mutations; ++m) {
      frame[rng.next_below(frame.size())] =
          static_cast<std::uint8_t>(rng.next_u64());
    }
    // Random truncation half the time.
    if (rng.next_bool(0.5)) {
      frame.resize(rng.next_below(frame.size() + 1));
    }
    (void)decode_frame(frame, SimTime::origin());  // must not crash
  }
}

class FuzzPcap : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             "upbound_fuzz_pcap.pcap")
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(FuzzPcap, GarbageBodiesFailCleanly) {
  Rng rng{99};
  const std::uint8_t valid_header[24] = {0xd4, 0xc3, 0xb2, 0xa1, 2, 0, 4, 0,
                                         0,    0,    0,    0,    0, 0, 0, 0,
                                         0xff, 0xff, 0,    0,    1, 0, 0, 0};
  for (int trial = 0; trial < 300; ++trial) {
    {
      std::FILE* f = std::fopen(path_.c_str(), "wb");
      ASSERT_NE(f, nullptr);
      std::fwrite(valid_header, 1, sizeof(valid_header), f);
      const auto body = random_bytes(rng, rng.next_below(2000));
      std::fwrite(body.data(), 1, body.size(), f);
      std::fclose(f);
    }
    try {
      PcapReader reader{path_};
      while (reader.next().has_value()) {
      }
    } catch (const PcapError&) {
      // Clean failure is acceptable; crashing or hanging is not.
    }
  }
}

TEST_F(FuzzPcap, GarbageGlobalHeadersFailCleanly) {
  Rng rng{101};
  for (int trial = 0; trial < 300; ++trial) {
    {
      std::FILE* f = std::fopen(path_.c_str(), "wb");
      ASSERT_NE(f, nullptr);
      const auto bytes = random_bytes(rng, rng.next_below(64));
      std::fwrite(bytes.data(), 1, bytes.size(), f);
      std::fclose(f);
    }
    try {
      PcapReader reader{path_};
      while (reader.next().has_value()) {
      }
    } catch (const PcapError&) {
    }
  }
}

TEST(FuzzRegex, RandomPatternsParseOrThrow) {
  Rng rng{13};
  static constexpr char kChars[] =
      "abcAB09()[]{}|*+?.^$\\-,xdswSDW ";
  int compiled = 0;
  for (int trial = 0; trial < 5'000; ++trial) {
    std::string pattern;
    const std::size_t len = rng.next_below(24);
    for (std::size_t i = 0; i < len; ++i) {
      pattern += kChars[rng.next_below(sizeof(kChars) - 1)];
    }
    try {
      const rex::Regex re{pattern, {.ignore_case = rng.next_bool(0.5)}};
      ++compiled;
      // Matching random inputs must terminate and not crash.
      const auto input = random_bytes(rng, rng.next_below(64));
      (void)re.search(input);
    } catch (const rex::ParseError&) {
      // Fine: malformed pattern rejected with a typed error.
    }
  }
  EXPECT_GT(compiled, 500);  // plenty of random patterns are valid
}

TEST(FuzzRegex, DeepNestingBoundedByParser) {
  // Pathological nesting either compiles (and runs in linear time) or is
  // rejected; it must not blow the stack.
  std::string deep;
  for (int i = 0; i < 2000; ++i) deep += "(a";
  for (int i = 0; i < 2000; ++i) deep += ")*";
  try {
    const rex::Regex re{deep};
    EXPECT_TRUE(re.search("aaaa"));
  } catch (const rex::ParseError&) {
  }
}

TEST(FuzzRegex, HugeCountedRepeatRejected) {
  EXPECT_THROW(rex::Regex{"(ab){100000}"}, rex::ParseError);
  EXPECT_THROW(rex::Regex{"a{999999999999}"}, rex::ParseError);
}

TEST(FuzzSnapshot, RandomBytesNeverRestore) {
  Rng rng{20260805};
  for (int trial = 0; trial < 5'000; ++trial) {
    const auto bytes = random_bytes(rng, rng.next_below(512));
    const auto result = restore_bitmap_filter_checked(bytes);
    // Random bytes essentially never carry the magic + a valid config;
    // whatever happens, the failure must be a typed reason, not a crash.
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error, SnapshotRestoreError::kNone);
  }
}

TEST(FuzzSnapshot, MutatedAndTruncatedSnapshotsFailCleanly) {
  BitmapFilterConfig config;
  config.log2_bits = 12;
  config.vector_count = 4;
  config.hash_count = 3;
  config.rotate_interval = Duration::sec(2.0);
  BitmapFilter filter{config};
  Rng fill{5};
  for (int i = 0; i < 500; ++i) {
    PacketRecord pkt;
    pkt.timestamp = SimTime::from_sec(static_cast<double>(i) * 0.01);
    pkt.tuple = FiveTuple{Protocol::kTcp,
                          Ipv4Addr{static_cast<std::uint32_t>(
                              0x0a000000u + fill.next_below(256))},
                          static_cast<std::uint16_t>(1024 + i),
                          Ipv4Addr{8, 8, 8, 8}, 80};
    filter.record_outbound(pkt);
  }
  const auto base = snapshot_bitmap_filter(filter, SimTime::from_sec(5.0));

  Rng rng{31337};
  int crc_caught = 0;
  for (int trial = 0; trial < 5'000; ++trial) {
    auto bytes = base;
    const int mutations = 1 + static_cast<int>(rng.next_below(4));
    for (int m = 0; m < mutations; ++m) {
      bytes[rng.next_below(bytes.size())] =
          static_cast<std::uint8_t>(rng.next_u64());
    }
    if (rng.next_bool(0.5)) {
      bytes.resize(rng.next_below(bytes.size() + 1));
    }
    auto result = restore_bitmap_filter_checked(bytes);  // no crash
    if (result.ok()) {
      // The payload CRC turns every effective bit flip into a typed
      // failure, so a restore can only succeed when the mutations
      // happened to rewrite the bytes they replaced.
      EXPECT_EQ(bytes, base);
      PacketRecord probe;
      probe.timestamp = SimTime::from_sec(5.0);
      probe.tuple = FiveTuple{Protocol::kTcp, Ipv4Addr{8, 8, 8, 8}, 80,
                              Ipv4Addr{10, 0, 0, 1}, 1024};
      (void)result.restored->filter.admits_inbound(probe);
    } else if (result.error == SnapshotRestoreError::kCorruptCrc) {
      ++crc_caught;
    }
  }
  // Most mutations hit the large vector payload, which carries no header
  // structure to violate -- only the CRC catches those.
  EXPECT_GT(crc_caught, 0);
}

}  // namespace
}  // namespace upbound
