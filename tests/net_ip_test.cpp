#include "net/ip.h"

#include <gtest/gtest.h>

namespace upbound {
namespace {

TEST(Ipv4Addr, ParseValid) {
  const auto a = Ipv4Addr::parse("140.112.30.5");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value(), 0x8C701E05u);
  EXPECT_EQ(a->to_string(), "140.112.30.5");
}

TEST(Ipv4Addr, ParseBoundaries) {
  EXPECT_EQ(Ipv4Addr::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Addr::parse("255.255.255.255")->value(), 0xffffffffu);
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse(""));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Addr::parse("256.1.1.1"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.x"));
  EXPECT_FALSE(Ipv4Addr::parse("1..2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4 "));
  EXPECT_FALSE(Ipv4Addr::parse("-1.2.3.4"));
}

TEST(Ipv4Addr, OctetConstructor) {
  const Ipv4Addr a{10, 0, 0, 1};
  EXPECT_EQ(a.to_string(), "10.0.0.1");
}

TEST(Ipv4Addr, Ordering) {
  EXPECT_LT(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
  EXPECT_LT(Ipv4Addr(9, 255, 255, 255), Ipv4Addr(10, 0, 0, 0));
}

TEST(Cidr, ContainsAndBoundaries) {
  const Cidr c{Ipv4Addr{192, 168, 1, 77}, 24};  // host bits ignored
  EXPECT_EQ(c.network().to_string(), "192.168.1.0");
  EXPECT_TRUE(c.contains(Ipv4Addr(192, 168, 1, 0)));
  EXPECT_TRUE(c.contains(Ipv4Addr(192, 168, 1, 255)));
  EXPECT_FALSE(c.contains(Ipv4Addr(192, 168, 2, 0)));
  EXPECT_FALSE(c.contains(Ipv4Addr(192, 168, 0, 255)));
}

TEST(Cidr, ZeroPrefixMatchesEverything) {
  const Cidr any{Ipv4Addr{}, 0};
  EXPECT_TRUE(any.contains(Ipv4Addr(1, 2, 3, 4)));
  EXPECT_TRUE(any.contains(Ipv4Addr(255, 255, 255, 255)));
  EXPECT_EQ(any.size(), 1ULL << 32);
}

TEST(Cidr, HostPrefixMatchesOnlyItself) {
  const Cidr host{Ipv4Addr{8, 8, 8, 8}, 32};
  EXPECT_TRUE(host.contains(Ipv4Addr(8, 8, 8, 8)));
  EXPECT_FALSE(host.contains(Ipv4Addr(8, 8, 8, 9)));
  EXPECT_EQ(host.size(), 1u);
}

TEST(Cidr, HostIndexing) {
  const Cidr c{Ipv4Addr{10, 1, 2, 0}, 30};
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.host(0).to_string(), "10.1.2.0");
  EXPECT_EQ(c.host(3).to_string(), "10.1.2.3");
  EXPECT_THROW(c.host(4), std::out_of_range);
}

TEST(Cidr, ParseAndFormat) {
  const auto c = Cidr::parse("172.16.0.0/12");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->prefix_len(), 12u);
  EXPECT_EQ(c->to_string(), "172.16.0.0/12");
  EXPECT_TRUE(c->contains(Ipv4Addr(172, 31, 255, 255)));
  EXPECT_FALSE(c->contains(Ipv4Addr(172, 32, 0, 0)));
}

TEST(Cidr, ParseRejectsMalformed) {
  EXPECT_FALSE(Cidr::parse("1.2.3.4"));
  EXPECT_FALSE(Cidr::parse("1.2.3.4/33"));
  EXPECT_FALSE(Cidr::parse("1.2.3/8"));
  EXPECT_FALSE(Cidr::parse("1.2.3.4/"));
  EXPECT_FALSE(Cidr::parse("1.2.3.4/8x"));
}

TEST(Cidr, InvalidPrefixLenThrows) {
  EXPECT_THROW(Cidr(Ipv4Addr{1, 2, 3, 4}, 33), std::invalid_argument);
}

}  // namespace
}  // namespace upbound
