// The zero-loss daemon robustness layer: UBCK checkpoint envelope
// round-trips with typed decode errors, crash-consistent generation
// management with newest-valid fallback, hot reload (byte-identical when
// the config is unchanged, typed refusal when geometry would change),
// supervised capture reattach with loss conservation, and a real
// SIGKILL -> restart -> restore recovery pass.
#include "live_harness.h"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include "fault/fault_injector.h"
#include "filter/bitmap_filter.h"
#include "filter/filter_registry.h"
#include "filter/snapshot.h"
#include "net/live/checkpointer.h"
#include "net/live/reload.h"

namespace upbound::live::testing {
namespace {

std::string temp_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "upbound_" + tag + "_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string write_text(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_NE(f, nullptr);
  EXPECT_EQ(std::fwrite(text.data(), 1, text.size(), f), text.size());
  std::fclose(f);
  return path;
}

PacketRecord outbound_at(double sec, std::uint16_t src_port = 6000) {
  PacketRecord pkt;
  pkt.timestamp = SimTime::from_sec(sec);
  pkt.tuple = FiveTuple{Protocol::kUdp, Ipv4Addr{10, 0, 0, 9}, src_port,
                        Ipv4Addr{93, 184, 216, 34}, 6881};
  return pkt;
}

PacketRecord inbound_probe(double sec, std::uint16_t src_port = 6000) {
  PacketRecord pkt = outbound_at(sec, src_port);
  pkt.tuple = pkt.tuple.inverse();
  return pkt;
}

CheckpointMeta sample_meta() {
  CheckpointMeta meta;
  meta.time = SimTime::from_sec(12.5);
  meta.policy_low = 3.5e6;
  meta.policy_high = 9e6;
  meta.rotate_interval = Duration::sec(2.0);
  meta.tenant_epoch = 42;
  meta.meter_window = Duration::sec(1.0);
  return meta;
}

// ---------------------------------------------------------------------
// UBCK envelope

TEST(CheckpointEnvelope, RoundTrips) {
  BitmapFilterConfig config;
  config.log2_bits = 12;
  BitmapFilter filter{config};
  filter.advance_time(SimTime::from_sec(12.0));
  filter.record_outbound(outbound_at(12.0));
  const std::vector<std::uint8_t> snapshot =
      snapshot_bitmap_filter(filter, SimTime::from_sec(12.5));

  const CheckpointMeta meta = sample_meta();
  const std::vector<std::uint8_t> image =
      encode_checkpoint(7, meta, snapshot);
  const CheckpointDecodeResult decoded = decode_checkpoint(image);
  ASSERT_TRUE(decoded.ok()) << checkpoint_error_name(decoded.error);
  EXPECT_EQ(decoded.decoded->generation, 7u);
  EXPECT_EQ(decoded.decoded->meta.time, meta.time);
  EXPECT_DOUBLE_EQ(decoded.decoded->meta.policy_low, meta.policy_low);
  EXPECT_DOUBLE_EQ(decoded.decoded->meta.policy_high, meta.policy_high);
  EXPECT_EQ(decoded.decoded->meta.rotate_interval, meta.rotate_interval);
  EXPECT_EQ(decoded.decoded->meta.tenant_epoch, 42u);
  EXPECT_EQ(decoded.decoded->meta.meter_window, meta.meter_window);
  EXPECT_EQ(decoded.decoded->snapshot, snapshot);

  // The payload restores, and the restored filter still admits the
  // connection marked before the checkpoint.
  const BitmapRestoreResult restored =
      restore_bitmap_filter_checked(decoded.decoded->snapshot, std::nullopt);
  ASSERT_TRUE(restored.ok());
  BitmapFilter thawed = std::move(restored.restored->filter);
  EXPECT_TRUE(thawed.admits_inbound(inbound_probe(12.6)));
}

TEST(CheckpointEnvelope, TypedDecodeErrors) {
  const std::vector<std::uint8_t> snapshot(32, 0xAB);
  const std::vector<std::uint8_t> image =
      encode_checkpoint(3, sample_meta(), snapshot);

  EXPECT_EQ(decode_checkpoint({}).error, CheckpointError::kTruncated);
  EXPECT_EQ(decode_checkpoint(std::span(image).first(40)).error,
            CheckpointError::kTruncated);
  // Structurally sound header, but the payload is shorter than declared.
  EXPECT_EQ(decode_checkpoint(std::span(image).first(image.size() - 8)).error,
            CheckpointError::kTruncated);

  std::vector<std::uint8_t> magic = image;
  magic[0] ^= 0xFF;
  EXPECT_EQ(decode_checkpoint(magic).error, CheckpointError::kBadMagic);

  std::vector<std::uint8_t> version = image;
  version[4] = 0x7F;
  EXPECT_EQ(decode_checkpoint(version).error, CheckpointError::kBadVersion);

  std::vector<std::uint8_t> trailing = image;
  trailing.push_back(0);
  EXPECT_EQ(decode_checkpoint(trailing).error, CheckpointError::kBadLength);

  std::vector<std::uint8_t> rot = image;
  rot.back() ^= 0x01;  // payload bit rot
  EXPECT_EQ(decode_checkpoint(rot).error, CheckpointError::kCorruptCrc);
  std::vector<std::uint8_t> header_rot = image;
  header_rot[16] ^= 0x01;  // sim-time field bit rot
  EXPECT_EQ(decode_checkpoint(header_rot).error,
            CheckpointError::kCorruptCrc);
}

// ---------------------------------------------------------------------
// Checkpointer generations

Checkpointer::StateProvider provider_for(BitmapFilter& filter,
                                         const double* time_sec = nullptr) {
  return [&filter, time_sec](CheckpointMeta& meta) {
    const SimTime at =
        SimTime::from_sec(time_sec != nullptr ? *time_sec : 1.0);
    meta.time = at;
    meta.policy_low = 3e6;
    meta.policy_high = 6e6;
    meta.rotate_interval = filter.config().rotate_interval;
    return snapshot_bitmap_filter(filter, at);
  };
}

TEST(Checkpointer, WritesPrunesAndContinuesGenerations) {
  const std::string dir = temp_dir("ckpt_gen");
  BitmapFilterConfig config;
  config.log2_bits = 10;
  BitmapFilter filter{config};

  {
    Checkpointer ck{{dir, Duration::sec(1.0), /*keep=*/3},
                    provider_for(filter)};
    for (int i = 0; i < 5; ++i) ck.write_checkpoint();
    EXPECT_EQ(ck.generations_written(), 5u);
    EXPECT_EQ(ck.next_generation(), 6u);
  }
  // Pruned to the newest 3 generations.
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "checkpoint-00000003.ubck");
  EXPECT_EQ(names[2], "checkpoint-00000005.ubck");

  // A restarted checkpointer continues numbering: it never reuses (and
  // silently overwrites) a generation the previous incarnation wrote.
  Checkpointer again{{dir, Duration::sec(1.0), 3}, provider_for(filter)};
  EXPECT_EQ(again.next_generation(), 6u);
  again.write_checkpoint();
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(dir) / "checkpoint-00000006.ubck"));
  std::filesystem::remove_all(dir);
}

TEST(Checkpointer, StalenessTracksNewestWrite) {
  const std::string dir = temp_dir("ckpt_stale");
  BitmapFilterConfig config;
  config.log2_bits = 10;
  BitmapFilter filter{config};
  const double at_sec = 10.0;
  Checkpointer ck{{dir, Duration::sec(1.0), 2},
                  provider_for(filter, &at_sec)};

  // Nothing written yet: a crash right now loses everything.
  EXPECT_GT(ck.staleness(SimTime::from_sec(1.0)), Duration::hours(24));
  ck.write_checkpoint();
  EXPECT_EQ(ck.staleness(SimTime::from_sec(12.5)), Duration::sec(2.5));
  EXPECT_EQ(ck.staleness(SimTime::from_sec(9.0)), Duration{});  // clamped
  std::filesystem::remove_all(dir);
}

TEST(CheckpointRestore, NewestWinsAndBadGenerationsFallBack) {
  const std::string dir = temp_dir("ckpt_fallback");
  BitmapFilterConfig config;
  config.log2_bits = 10;
  BitmapFilter filter{config};
  filter.advance_time(SimTime::from_sec(0.5));
  filter.record_outbound(outbound_at(0.5));
  Checkpointer ck{{dir, Duration::sec(1.0), 8}, provider_for(filter)};
  const std::string gen1 = ck.write_checkpoint();
  const std::string gen2 = ck.write_checkpoint();
  const std::string gen3 = ck.write_checkpoint();

  // Rot the newest generation on disk; flip one payload byte.
  {
    std::FILE* f = std::fopen(gen3.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -1, SEEK_END);
    const int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_END);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  // Truncate generation 2 mid-payload.
  std::filesystem::resize_file(gen2, 80);

  const CheckpointRestore restore = restore_newest_checkpoint(dir);
  ASSERT_TRUE(restore.ok()) << restore.report();
  EXPECT_EQ(restore.generation, 1u);
  EXPECT_EQ(restore.path, gen1);
  ASSERT_EQ(restore.skipped.size(), 2u);
  EXPECT_NE(restore.skipped[0].find("corrupt-crc"), std::string::npos)
      << restore.skipped[0];
  EXPECT_NE(restore.skipped[1].find("truncated"), std::string::npos)
      << restore.skipped[1];
  BitmapFilter thawed = std::move(restore.filter->filter);
  EXPECT_TRUE(thawed.admits_inbound(inbound_probe(0.6)));
  std::filesystem::remove_all(dir);
}

TEST(CheckpointRestore, RenamedFileIsGenerationMismatch) {
  const std::string dir = temp_dir("ckpt_rename");
  BitmapFilterConfig config;
  config.log2_bits = 10;
  BitmapFilter filter{config};
  Checkpointer ck{{dir, Duration::sec(1.0), 4}, provider_for(filter)};
  const std::string gen1 = ck.write_checkpoint();
  // Splice generation 1 in under a newer name. The embedded generation is
  // CRC-protected; the filename is not -- the mismatch is a skip, and the
  // honest generation 1 still restores.
  std::filesystem::copy_file(
      gen1, std::filesystem::path(dir) / "checkpoint-00000009.ubck");
  const CheckpointRestore restore = restore_newest_checkpoint(dir);
  ASSERT_TRUE(restore.ok()) << restore.report();
  EXPECT_EQ(restore.generation, 1u);
  ASSERT_EQ(restore.skipped.size(), 1u);
  EXPECT_NE(restore.skipped[0].find("generation-mismatch"),
            std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointRestore, AllGenerationsBadIsTypedFailure) {
  const std::string dir = temp_dir("ckpt_allbad");
  write_text(dir + "/checkpoint-00000001.ubck",
             "definitely not a checkpoint envelope, but long enough to "
             "clear the header-size gate and fail on the magic instead");
  write_text(dir + "/not-a-checkpoint.txt", "ignored entirely");
  const CheckpointRestore restore = restore_newest_checkpoint(dir);
  EXPECT_FALSE(restore.ok());
  ASSERT_EQ(restore.skipped.size(), 1u);
  EXPECT_NE(restore.skipped[0].find("bad-magic"), std::string::npos)
      << restore.skipped[0];
  EXPECT_NE(restore.report().find("no restorable checkpoint"),
            std::string::npos)
      << restore.report();
  std::filesystem::remove_all(dir);
}

TEST(CheckpointRestore, StaleGenerationSkippedWhenNowProvided) {
  const std::string dir = temp_dir("ckpt_stale_skip");
  BitmapFilterConfig config;
  config.log2_bits = 10;
  config.rotate_interval = Duration::sec(1.0);  // T_e = k * dt = 4s
  BitmapFilter filter{config};
  const double at_sec = 1.0;
  Checkpointer ck{{dir, Duration::sec(1.0), 4},
                  provider_for(filter, &at_sec)};
  ck.write_checkpoint();

  // In-process restart far past T_e: every mark in the snapshot would
  // have expired anyway, so restoring would only fake a warm start.
  const CheckpointRestore stale =
      restore_newest_checkpoint(dir, SimTime::from_sec(60.0));
  EXPECT_FALSE(stale.ok());
  ASSERT_EQ(stale.skipped.size(), 1u);
  EXPECT_NE(stale.skipped[0].find("stale"), std::string::npos)
      << stale.skipped[0];

  // Cross-process restart (monotonic epochs not comparable): restores.
  EXPECT_TRUE(restore_newest_checkpoint(dir, std::nullopt).ok());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointRestore, FaultInjectedCorruptionFallsBackOneGeneration) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault plane compiled out";
  const std::string dir = temp_dir("ckpt_fault");
  BitmapFilterConfig config;
  config.log2_bits = 10;
  BitmapFilter filter{config};
  FaultInjector faults{FaultSpec::parse("checkpoint.corrupt:2"), 1};
  Checkpointer ck{{dir, Duration::sec(1.0), 4}, provider_for(filter),
                  &faults};
  ck.write_checkpoint();
  ck.write_checkpoint();  // generation 2: payload byte flipped post-CRC

  const CheckpointRestore restore = restore_newest_checkpoint(dir);
  ASSERT_TRUE(restore.ok()) << restore.report();
  EXPECT_EQ(restore.generation, 1u);
  ASSERT_EQ(restore.skipped.size(), 1u);
  EXPECT_NE(restore.skipped[0].find("corrupt-crc"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointRestore, RotationBoundarySnapshotRestoresWithoutDoubleRotate) {
  // The race: a checkpoint lands exactly ON a rotation boundary. The
  // restored filter must resume the schedule from that boundary -- the
  // next advance rotates exactly once at t+dt, neither re-firing the
  // boundary rotation (which would wipe fresh marks early) nor skipping
  // one (which would stretch T_e).
  const std::string dir = temp_dir("ckpt_race");
  BitmapFilterConfig config;
  config.log2_bits = 10;
  config.rotate_interval = Duration::sec(1.0);
  BitmapFilter filter{config};
  filter.advance_time(SimTime::from_sec(1.0));
  const std::uint64_t rotations_at_snapshot = filter.rotations();
  filter.record_outbound(outbound_at(1.0));

  const double at_sec = 1.0;  // checkpoint exactly at the boundary
  Checkpointer ck{{dir, Duration::sec(1.0), 2},
                  provider_for(filter, &at_sec)};
  ck.write_checkpoint();

  const CheckpointRestore restore = restore_newest_checkpoint(dir);
  ASSERT_TRUE(restore.ok()) << restore.report();
  BitmapFilter thawed = std::move(restore.filter->filter);
  EXPECT_EQ(thawed.rotations(), rotations_at_snapshot);

  // Re-observing the boundary time is a no-op...
  thawed.advance_time(SimTime::from_sec(1.0));
  EXPECT_EQ(thawed.rotations(), rotations_at_snapshot);
  EXPECT_TRUE(thawed.admits_inbound(inbound_probe(1.1)));
  // ...and the next boundary rotates exactly once.
  thawed.advance_time(SimTime::from_sec(2.0));
  EXPECT_EQ(thawed.rotations(), rotations_at_snapshot + 1);
  EXPECT_TRUE(thawed.admits_inbound(inbound_probe(2.0)));
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Datapath fixture (checkpoint/reload/restore against a live router)

FilterSpec small_bitmap_spec(unsigned log2_bits = 14) {
  MapFilterArgs args;
  args.set("bits", std::to_string(log2_bits));
  args.set("dt", "5");
  return FilterRegistry::instance().at("bitmap").parse(args);
}

struct DatapathFixture {
  VirtualClock clock;
  EventLoop loop;
  std::unique_ptr<LiveDatapath> datapath;

  explicit DatapathFixture(const FilterSpec& spec,
                           const std::string& checkpoint_dir = "",
                           double low = 3e6, double high = 6e6) {
    UdpTapSource::Config tap_config;
    tap_config.port = 0;
    auto source = std::make_unique<UdpTapSource>(tap_config);
    LiveConfig config;
    config.clock = &clock;
    config.policy_low = low;
    config.policy_high = high;
    config.checkpoint_dir = checkpoint_dir;
    datapath = std::make_unique<LiveDatapath>(config, spec,
                                              std::move(source), loop);
  }

  StateFilter& filter() { return datapath->router().filter(); }

  void mark(double sec) {
    filter().advance_time(SimTime::from_sec(sec));
    filter().record_outbound(outbound_at(sec));
  }
  bool admits(double sec) {
    return filter().admits_inbound(inbound_probe(sec));
  }
};

TEST(LiveRestore, CheckpointVerbThenRestoreIntoFreshDatapath) {
  const std::string dir = temp_dir("live_restore");
  {
    DatapathFixture writer{small_bitmap_spec(), dir, /*low=*/2e6,
                           /*high=*/7e6};
    writer.mark(4.0);
    const ControlReply reply = writer.datapath->control_checkpoint();
    EXPECT_TRUE(reply.ok) << reply.render();
    EXPECT_NE(reply.detail.find("checkpoint-00000001.ubck"),
              std::string::npos)
        << reply.detail;
    EXPECT_EQ(writer.datapath->stats().checkpoints_written, 1u);
  }

  DatapathFixture reader{small_bitmap_spec()};
  EXPECT_FALSE(reader.admits(4.2));  // cold filter
  const CheckpointRestore restore =
      reader.datapath->restore_checkpoint_dir(dir);
  ASSERT_TRUE(restore.ok()) << restore.report();
  EXPECT_EQ(restore.generation, 1u);
  // The marking state survived the process boundary.
  EXPECT_TRUE(reader.admits(4.2));
  // So did the writer's drop-policy watermarks (reader was launched with
  // 3e6/6e6): retuning low echoes the restored 7e6 high watermark.
  const ControlReply low = reader.datapath->control_set_threshold(true, 4e6);
  ASSERT_TRUE(low.ok) << low.render();
  EXPECT_NE(low.detail.find("high=7e+06"), std::string::npos) << low.detail;
  std::filesystem::remove_all(dir);
}

TEST(LiveRestore, GeometryMismatchIsTypedSkipAndLeavesFilterUntouched) {
  const std::string dir = temp_dir("live_geo");
  {
    DatapathFixture writer{small_bitmap_spec(/*log2_bits=*/12), dir};
    writer.mark(1.0);
    EXPECT_TRUE(writer.datapath->control_checkpoint().ok);
  }
  DatapathFixture reader{small_bitmap_spec(/*log2_bits=*/14)};
  reader.mark(1.0);
  const CheckpointRestore restore =
      reader.datapath->restore_checkpoint_dir(dir);
  EXPECT_FALSE(restore.ok());
  ASSERT_FALSE(restore.skipped.empty());
  EXPECT_NE(restore.skipped.back().find("geometry-mismatch"),
            std::string::npos)
      << restore.skipped.back();
  // The running filter kept its own state.
  EXPECT_TRUE(reader.admits(1.1));
  std::filesystem::remove_all(dir);
}

TEST(LiveRestore, CheckpointingRequiresSnapshotCapableBackend) {
  const std::string dir = temp_dir("live_nocap");
  MapFilterArgs args;
  const FilterSpec naive = FilterRegistry::instance().at("naive").parse(args);
  EXPECT_THROW(DatapathFixture(naive, dir), std::invalid_argument);
  // Unarmed datapaths answer the checkpoint verb with the typed error.
  DatapathFixture unarmed{small_bitmap_spec()};
  const ControlReply reply = unarmed.datapath->control_checkpoint();
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.code, "unsupported:checkpoint");
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Hot reload

TEST(LiveReload, PolicyRetuneAppliesAtomically) {
  DatapathFixture fx{small_bitmap_spec()};
  const std::string path = write_text(
      ::testing::TempDir() + "reload_policy.conf",
      "# raise both watermarks\nlow 4e6\nhigh 9e6\n");
  const ControlReply reply = fx.datapath->reload_from_file(path);
  EXPECT_TRUE(reply.ok) << reply.render();
  EXPECT_NE(reply.detail.find("low=4e+06 high=9e+06"), std::string::npos)
      << reply.detail;
  ::unlink(path.c_str());
}

TEST(LiveReload, TypedErrorsLeaveEverythingUntouched) {
  DatapathFixture fx{small_bitmap_spec()};
  fx.mark(2.0);

  const std::string missing = ::testing::TempDir() + "reload_missing.conf";
  EXPECT_EQ(fx.datapath->reload_from_file(missing).code, "io");

  const std::string empty =
      write_text(::testing::TempDir() + "reload_empty.conf", "# nothing\n");
  EXPECT_EQ(fx.datapath->reload_from_file(empty).code, "bad-argument");

  const std::string inverted = write_text(
      ::testing::TempDir() + "reload_inv.conf", "low 9e6\nhigh 4e6\n");
  EXPECT_EQ(fx.datapath->reload_from_file(inverted).code, "bad-argument");

  const std::string orphan_args = write_text(
      ::testing::TempDir() + "reload_orphan.conf", "bits 12\n");
  EXPECT_EQ(fx.datapath->reload_from_file(orphan_args).code, "bad-argument");

  // Geometry change: typed refusal, marking state stays live.
  const std::string shrink = write_text(
      ::testing::TempDir() + "reload_shrink.conf",
      "filter bitmap\nbits 12\ndt 5\n");
  const ControlReply incompatible = fx.datapath->reload_from_file(shrink);
  EXPECT_EQ(incompatible.code, "reload-incompatible")
      << incompatible.render();

  // Backend without a snapshot format: same typed refusal.
  const std::string naive = write_text(
      ::testing::TempDir() + "reload_naive.conf", "filter naive\n");
  EXPECT_EQ(fx.datapath->reload_from_file(naive).code,
            "reload-incompatible");

  EXPECT_EQ(fx.datapath->spec().kind(), "bitmap");
  EXPECT_TRUE(fx.admits(2.1));  // filter untouched through all refusals

  for (const std::string& p : {empty, inverted, orphan_args, shrink, naive}) {
    ::unlink(p.c_str());
  }
}

TEST(LiveReload, DtRetuneMigratesStateLosslessly) {
  DatapathFixture fx{small_bitmap_spec()};
  fx.mark(4.0);
  const std::string path = write_text(
      ::testing::TempDir() + "reload_dt.conf",
      "filter bitmap\nbits 14\ndt 2\nlow 4e6\nhigh 8e6\n");
  const ControlReply reply = fx.datapath->reload_from_file(path);
  ASSERT_TRUE(reply.ok) << reply.render();
  // State survived the snapshot -> restore migration...
  EXPECT_TRUE(fx.admits(4.1));
  // ...and the new cadence is live on the swapped filter.
  auto* bitmap = dynamic_cast<BitmapFilter*>(&fx.filter());
  ASSERT_NE(bitmap, nullptr);
  EXPECT_EQ(bitmap->config().rotate_interval, Duration::sec(2.0));
  ::unlink(path.c_str());
}

/// Replays the conformance trace through a live tap datapath exactly like
/// run_live_tap, with robustness hooks: a reload applied at the midpoint
/// burst boundary, a daemon-plane fault injector, an armed health
/// monitor, and metrics-export settings.
struct RobustRunHooks {
  std::string reload_path;  // applied once, at the trace midpoint
  FaultInjector* faults = nullptr;
  bool arm_health = false;  // fail-open stance, per-batch sampling
  std::string metrics_out;
  Duration metrics_interval{};
  std::uint64_t health_outages = 0;  // out: HealthMonitor::capture_outages
};

void run_live_robust(LiveRunOutput& out, const Trace& trace,
                     const ClientNetwork& network, const FilterSpec& spec,
                     const LiveRunOptions& options, RobustRunHooks& hooks) {
  VirtualClock clock;
  EventLoop loop;
  UdpTapSource::Config tap_config;
  tap_config.port = 0;
  tap_config.timestamp_mode = TapTimestampMode::kFromFrames;
  auto source = std::make_unique<UdpTapSource>(tap_config);
  const std::uint16_t port = source->local_port();

  LiveConfig config;
  config.router = conformance_router_config(network, options);
  if (hooks.arm_health) {
    config.router.health.stance = UnhealthyStance::kFailOpen;
    config.router.health.occupancy_sample_batches = 1;
  }
  config.policy_red = options.policy_red;
  config.policy_low = options.policy_low;
  config.policy_high = options.policy_high;
  config.policy_pd = options.policy_pd;
  config.batch_max = options.batch_max;
  config.clock = &clock;
  config.faults = hooks.faults;
  config.metrics_out = hooks.metrics_out;
  config.metrics_interval = hooks.metrics_interval;

  LiveDatapath datapath{config, spec, std::move(source), loop};
  UdpTapSender sender{port};
  const auto deadline = std::chrono::steady_clock::now() + options.deadline;
  bool reloaded = hooks.reload_path.empty();

  std::uint64_t sent = 0;
  for (std::size_t start = 0; start < trace.size(); start += options.burst) {
    const std::size_t n = std::min(options.burst, trace.size() - start);
    // A capture failure in the previous burst detached the fd; wait for
    // the supervised reattach (10ms initial backoff, real timer) before
    // sending into a socket that does not exist yet.
    while (!datapath.capture_attached()) {
      loop.poll_once(1);
      ASSERT_LT(std::chrono::steady_clock::now().time_since_epoch().count(),
                deadline.time_since_epoch().count())
          << "reattach deadline";
    }
    for (std::size_t p = 0; p < n; ++p) {
      sender.send_packet(trace[start + p]);
    }
    sent += n;
    while (datapath.source().frames_received() +
               datapath.source().frames_lost() <
           sent) {
      loop.poll_once(1);
      ASSERT_LT(std::chrono::steady_clock::now().time_since_epoch().count(),
                deadline.time_since_epoch().count())
          << "pump deadline: " << datapath.source().frames_received() << "/"
          << sent;
    }
    clock.advance_to(trace[start + n - 1].timestamp);
    if (!reloaded && start + n >= trace.size() / 2) {
      const ControlReply reply = datapath.reload_from_file(hooks.reload_path);
      ASSERT_TRUE(reply.ok) << reply.render();
      reloaded = true;
    }
  }
  out.datagrams_sent = sent;
  if (const HealthMonitor* health = datapath.router().health()) {
    hooks.health_outages = health->capture_outages();
  }
  datapath.finalize();
  out.result = datapath.result();
  out.stats = datapath.stats();
  out.router_stats = datapath.router().stats();
  const SimTime end =
      trace.empty() ? SimTime::origin() : trace.back().timestamp;
  out.report = conformance_report(out.result, end);
}

TEST(LiveReload, UnchangedConfigReloadIsByteIdentical) {
  // The acceptance gate: for every snapshot-capable backend, a mid-stream
  // reload whose config matches the running one produces the exact
  // result an uninterrupted run produces -- same conformance report
  // bytes, same router stats. The quiesce/snapshot/restore/swap cycle is
  // observably a no-op.
  const GeneratedTrace& generated = conformance_trace();
  const LiveRunOptions options;
  std::size_t covered = 0;
  for (const BackendDescriptor& backend :
       FilterRegistry::instance().descriptors()) {
    if (!backend.has(kCapSnapshot)) continue;
    ++covered;
    MapFilterArgs args;
    args.set("bits", "14");
    args.set("dt", "5");
    const FilterSpec spec = backend.parse(args);

    const std::string reload_path = write_text(
        ::testing::TempDir() + "reload_same_" + backend.name + ".conf",
        "filter " + backend.name + "\nbits 14\ndt 5\n");

    const LiveRunOutput uninterrupted =
        run_live_tap(generated.packets, generated.network, spec, options);
    LiveRunOutput reloaded;
    RobustRunHooks hooks;
    hooks.reload_path = reload_path;
    run_live_robust(reloaded, generated.packets, generated.network, spec,
                    options, hooks);

    EXPECT_EQ(uninterrupted.report, reloaded.report) << backend.name;
    EXPECT_EQ(uninterrupted.router_stats.outbound_packets,
              reloaded.router_stats.outbound_packets)
        << backend.name;
    EXPECT_EQ(uninterrupted.router_stats.inbound_dropped_packets,
              reloaded.router_stats.inbound_dropped_packets)
        << backend.name;
    EXPECT_EQ(uninterrupted.stats.packets, reloaded.stats.packets)
        << backend.name;
    ::unlink(reload_path.c_str());
  }
  EXPECT_GE(covered, 1u);  // kCapSnapshot registry must not silently empty
}

// ---------------------------------------------------------------------
// Capture supervision

TEST(CaptureResilience, KillReattachesAndConservesFrames) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault plane compiled out";
  const GeneratedTrace& generated = conformance_trace();
  const LiveRunOptions options;
  const FilterSpec spec = small_bitmap_spec();

  FaultInjector faults{FaultSpec::parse("capture.kill@500"), 1};
  LiveRunOutput out;
  RobustRunHooks hooks;
  hooks.faults = &faults;
  hooks.arm_health = true;
  run_live_robust(out, generated.packets, generated.network, spec, options,
                  hooks);

  EXPECT_EQ(faults.capture_kills_taken(), 1u);
  EXPECT_EQ(out.stats.capture_failures, 1u);
  EXPECT_EQ(out.stats.capture_reattaches, 1u);
  EXPECT_GE(out.stats.capture_reattach_attempts, 1u);
  // The outage was mirrored into the health monitor and cleared again.
  EXPECT_EQ(hooks.health_outages, 1u);
  // Conservation: every datagram sent is either processed or accounted
  // lost; none silently vanish across the detach/reattach cycle.
  EXPECT_EQ(out.stats.frames + out.stats.frames_lost, out.datagrams_sent);
  // Lockstep sends nothing into the dead window, so nothing was lost and
  // the run is byte-identical to an undisturbed one -- the event loop
  // never exited and no frame was dropped on the floor. The reference
  // arms health too (an engaged monitor registers health.* counters,
  // which legitimately appear in the report); only the fault differs.
  EXPECT_EQ(out.stats.frames_lost, 0u);
  LiveRunOutput reference;
  RobustRunHooks reference_hooks;
  reference_hooks.arm_health = true;
  run_live_robust(reference, generated.packets, generated.network, spec,
                  options, reference_hooks);
  EXPECT_EQ(reference_hooks.health_outages, 0u);
  // The ONLY permitted difference from the undisturbed run is the health
  // monitor's record of the one degrade/recover cycle; every packet-path
  // counter and gauge must match byte-for-byte.
  std::string expected = reference.report;
  const std::string before =
      "\"health.transitions_degraded\":0,"
      "\"health.transitions_recovered\":0";
  const std::string after =
      "\"health.transitions_degraded\":1,"
      "\"health.transitions_recovered\":1";
  const std::size_t pos = expected.find(before);
  ASSERT_NE(pos, std::string::npos) << expected;
  expected.replace(pos, before.size(), after);
  EXPECT_EQ(out.report, expected);
}

TEST(CaptureResilience, StallBuffersAndCatchesUp) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault plane compiled out";
  const GeneratedTrace& generated = conformance_trace();
  const LiveRunOptions options;
  const FilterSpec spec = small_bitmap_spec();

  // A 40ms stall: the fd detaches but the socket stays open, so frames
  // sent during the window sit in the kernel buffer and are caught up
  // when the one-shot re-registers the fd.
  FaultInjector faults{FaultSpec::parse("capture.stall:40@500"), 1};
  LiveRunOutput out;
  RobustRunHooks hooks;
  hooks.faults = &faults;
  run_live_robust(out, generated.packets, generated.network, spec, options,
                  hooks);

  EXPECT_EQ(faults.capture_stalls_taken(), 1u);
  EXPECT_EQ(out.stats.capture_failures, 1u);
  EXPECT_EQ(out.stats.capture_reattaches, 1u);
  EXPECT_EQ(out.stats.frames, out.datagrams_sent);
  EXPECT_EQ(out.stats.frames_lost, 0u);
  const LiveRunOutput reference =
      run_live_tap(generated.packets, generated.network, spec, options);
  EXPECT_EQ(out.report, reference.report);
}

TEST(CaptureResilience, TapInjectFailureAndReattachKeepPort) {
  UdpTapSource::Config config;
  config.port = 0;
  UdpTapSource source{config};
  const std::uint16_t port = source.local_port();
  ASSERT_NE(port, 0);
  EXPECT_EQ(source.error(), 0);

  source.inject_failure();
  EXPECT_NE(source.error(), 0);
  const int fd = source.reattach();
  EXPECT_GE(fd, 0);
  EXPECT_EQ(source.error(), 0);
  EXPECT_EQ(source.local_port(), port);  // identity preserved

  // The rebuilt socket actually receives.
  UdpTapSender sender{port};
  sender.send_packet(outbound_at(1.0));
  std::uint64_t delivered = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (delivered == 0 && std::chrono::steady_clock::now() < deadline) {
    delivered =
        source.drain(16, [](std::span<const std::uint8_t>, SimTime) {});
    if (delivered == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(delivered, 1u);
}

// ---------------------------------------------------------------------
// Interval metrics export failure

TEST(MetricsExport, WriteFailuresAreCountedAndNonFatal) {
  if (!std::filesystem::exists("/dev/full")) {
    GTEST_SKIP() << "/dev/full not available";
  }
  const GeneratedTrace& generated = conformance_trace();
  const LiveRunOptions options;
  const FilterSpec spec = small_bitmap_spec();

  LiveRunOutput out;
  RobustRunHooks hooks;
  hooks.metrics_out = "/dev/full";
  hooks.metrics_interval = Duration::sec(1.0);
  run_live_robust(out, generated.packets, generated.network, spec, options,
                  hooks);

  // Every interval export hit ENOSPC; the datapath counted and continued.
  EXPECT_GT(out.stats.metrics_export_errors, 0u);
  EXPECT_EQ(out.stats.frames, out.datagrams_sent);
  const LiveRunOutput reference =
      run_live_tap(generated.packets, generated.network, spec, options);
  EXPECT_EQ(out.report, reference.report);
}

// ---------------------------------------------------------------------
// SIGKILL crash recovery

TEST(CrashRecovery, SigkillThenRestoreNewestGeneration) {
  const std::string dir = temp_dir("sigkill");
  ClientNetwork network;
  network.add_prefix(Cidr{Ipv4Addr{10, 0, 0, 0}, 8});

  int port_pipe[2];
  ASSERT_EQ(::pipe(port_pipe), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);

  if (child == 0) {
    // Child: a checkpointing live daemon. No gtest machinery may run in
    // here -- every exit path is _exit, and SIGKILL is the expected end.
    ::close(port_pipe[0]);
    try {
      MonotonicClock clock;
      EventLoop loop;
      UdpTapSource::Config tap_config;
      tap_config.port = 0;
      tap_config.timestamp_mode = TapTimestampMode::kFromFrames;
      auto source = std::make_unique<UdpTapSource>(tap_config);
      const std::uint16_t port = source->local_port();

      LiveConfig config;
      config.clock = &clock;
      config.router.network = network;
      config.checkpoint_dir = dir;
      config.checkpoint_interval = Duration::msec(25.0);
      config.checkpoint_keep = 4;
      LiveDatapath datapath{config, small_bitmap_spec(12),
                            std::move(source), loop};
      if (::write(port_pipe[1], &port, sizeof(port)) !=
          static_cast<ssize_t>(sizeof(port))) {
        ::_exit(3);
      }
      loop.run();  // until SIGKILL
    } catch (...) {
      ::_exit(2);
    }
    ::_exit(0);
  }

  ::close(port_pipe[1]);
  std::uint16_t port = 0;
  ASSERT_EQ(::read(port_pipe[0], &port, sizeof(port)),
            static_cast<ssize_t>(sizeof(port)));
  ::close(port_pipe[0]);

  const auto newest_generation = [&dir]() {
    std::uint64_t max_gen = 0;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      unsigned long long gen = 0;
      int end = -1;
      // %n makes the match exact: a half-written "....ubck.tmp" awaiting
      // its atomic rename must not count as a published generation.
      if (std::sscanf(name.c_str(), "checkpoint-%llu.ubck%n", &gen, &end) ==
              1 &&
          end == static_cast<int>(name.size())) {
        max_gen = std::max<std::uint64_t>(max_gen, gen);
      }
    }
    return max_gen;
  };

  // Mid-traffic: send a burst the restore must prove survived the kill.
  UdpTapSender sender{port};
  for (int i = 0; i < 40; ++i) {
    sender.send_packet(outbound_at(
        1.0 + 0.01 * i, static_cast<std::uint16_t>(6000 + (i % 4))));
  }
  // Wait until two NEW generations land after the burst: the child has
  // definitely drained the frames by then (one event loop serializes
  // capture reads and checkpoint timers), so the newest checkpoint on
  // disk contains the marks.
  const std::uint64_t baseline = newest_generation();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (newest_generation() < baseline + 2) {
    ASSERT_LT(std::chrono::steady_clock::now().time_since_epoch().count(),
              deadline.time_since_epoch().count())
        << "child never checkpointed (newest generation "
        << newest_generation() << ")";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // No orderly shutdown of any kind.
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // The restarted daemon's restore path: newest valid generation wins.
  DatapathFixture restarted{small_bitmap_spec(12)};
  EXPECT_FALSE(restarted.admits(1.5));
  const CheckpointRestore restore =
      restarted.datapath->restore_checkpoint_dir(dir);
  ASSERT_TRUE(restore.ok()) << restore.report();
  EXPECT_GE(restore.generation, baseline + 2);
  // A connection from the pre-kill burst is admitted by the restored
  // filter: marking state crossed the crash.
  EXPECT_TRUE(restarted.admits(1.5));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace upbound::live::testing
