// Property-based cross-validation of the three state filters on random
// packet streams: within its expiry window the bitmap filter must admit a
// superset of the naive exact-timer filter's admissions (false negatives
// impossible while marks are fresh; false positives possible but bounded).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "filter/aging_bloom.h"
#include "filter/bitmap_filter.h"
#include "filter/concurrent_bitmap.h"
#include "filter/filter_registry.h"
#include "filter/naive_filter.h"
#include "filter/params.h"
#include "filter/spi_filter.h"
#include "sim/edge_router.h"
#include "trace/campus.h"
#include "util/rng.h"

namespace upbound {
namespace {

FiveTuple random_tuple(Rng& rng) {
  return FiveTuple{rng.next_bool(0.5) ? Protocol::kTcp : Protocol::kUdp,
                   Ipv4Addr{0x0a000000u | static_cast<std::uint32_t>(
                                              rng.next_below(256))},
                   static_cast<std::uint16_t>(rng.next_range(1024, 65535)),
                   Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())},
                   static_cast<std::uint16_t>(rng.next_range(1, 65535))};
}

PacketRecord packet(const FiveTuple& t, double t_sec) {
  PacketRecord pkt;
  pkt.timestamp = SimTime::from_sec(t_sec);
  pkt.tuple = t;
  return pkt;
}

struct CrossCase {
  unsigned log2_bits;
  unsigned hash_count;
  int connections;
  double duration_sec;
};

class FilterCrossValidation : public ::testing::TestWithParam<CrossCase> {};

TEST_P(FilterCrossValidation, BitmapAdmitsSupersetOfNaive) {
  const CrossCase& c = GetParam();

  BitmapFilterConfig bitmap_config;
  bitmap_config.log2_bits = c.log2_bits;
  bitmap_config.vector_count = 4;
  bitmap_config.hash_count = c.hash_count;
  bitmap_config.rotate_interval = Duration::sec(5.0);
  BitmapFilter bitmap{bitmap_config};

  // The bitmap's marks survive at least (k-1)*dt and at most k*dt after
  // the last refresh. Bracket it with two exact-timer filters: anything
  // the floor timer admits, the bitmap must admit (no false negatives);
  // anything the ceiling timer rejects that the bitmap admits is a true
  // Bloom false positive.
  NaiveFilterConfig floor_config;
  floor_config.state_timeout =
      bitmap_config.rotate_interval *
      static_cast<double>(bitmap_config.vector_count - 1);
  NaiveFilter naive_floor{floor_config};
  NaiveFilterConfig ceil_config;
  ceil_config.state_timeout = bitmap_config.expiry_timer();
  NaiveFilter naive_ceil{ceil_config};

  Rng rng{static_cast<std::uint64_t>(c.connections) * 31 + c.log2_bits};
  std::vector<FiveTuple> pool;
  for (int i = 0; i < c.connections; ++i) pool.push_back(random_tuple(rng));

  int probes = 0;
  int false_positives = 0;
  double t = 0.0;
  while (t < c.duration_sec) {
    t += rng.exponential(c.duration_sec / (c.connections * 4.0));
    const SimTime now = SimTime::from_sec(t);
    bitmap.advance_time(now);
    naive_floor.advance_time(now);
    naive_ceil.advance_time(now);

    const FiveTuple& tuple = pool[rng.next_below(pool.size())];
    if (rng.next_bool(0.6)) {
      const PacketRecord out = packet(tuple, t);
      bitmap.record_outbound(out);
      naive_floor.record_outbound(out);
      naive_ceil.record_outbound(out);
    } else {
      // Probe inbound: either the inverse of a pool tuple (likely has
      // state) or a fresh random tuple (must not, modulo FP).
      const FiveTuple probe_tuple = rng.next_bool(0.7)
                                        ? tuple.inverse()
                                        : random_tuple(rng).inverse();
      const PacketRecord in = packet(probe_tuple, t);
      const bool bitmap_admits = bitmap.admits_inbound(in);
      ++probes;
      if (naive_floor.admits_inbound(in)) {
        // Hard invariant: no false negatives inside the guaranteed
        // (k-1)*dt window.
        ASSERT_TRUE(bitmap_admits)
            << "false negative at t=" << t << " for "
            << probe_tuple.to_string();
      }
      if (bitmap_admits && !naive_ceil.admits_inbound(in)) {
        ++false_positives;
      }
    }
  }

  ASSERT_GT(probes, 100);
  // FP bound: generous multiple of the Eq. 3 estimate at peak load.
  const double eq3 = penetration_probability(
      static_cast<std::size_t>(c.connections), c.hash_count,
      std::size_t{1} << c.log2_bits);
  EXPECT_LT(static_cast<double>(false_positives) / probes,
            std::max(0.02, eq3 * 5.0))
      << "false positives beyond bound";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FilterCrossValidation,
    ::testing::Values(CrossCase{20, 3, 500, 120.0},
                      CrossCase{16, 3, 500, 120.0},
                      CrossCase{16, 2, 2000, 60.0},
                      CrossCase{14, 4, 1000, 60.0},
                      CrossCase{12, 2, 300, 200.0}),
    [](const ::testing::TestParamInfo<CrossCase>& info) {
      return "N2p" + std::to_string(info.param.log2_bits) + "_m" +
             std::to_string(info.param.hash_count) + "_c" +
             std::to_string(info.param.connections);
    });

// --- Batched datapath differential tests -------------------------------
//
// The batch API's contract is bit-identical decisions and stats versus
// processing the same packets one at a time. These tests enforce it for
// every filter implementation on a realistic campus trace, including the
// blocklist feedback, the RED policy's rng stream, and deliberately
// injected timestamp regressions.

// Every registered backend at its default configuration -- a backend
// added to the registry is enrolled in the differential automatically.
std::unique_ptr<StateFilter> make_filter(const std::string& kind) {
  return make_state_filter(
      FilterRegistry::instance().parse(kind, MapFilterArgs{}));
}

class BatchScalarDifferential
    : public ::testing::TestWithParam<std::string> {};

TEST_P(BatchScalarDifferential, BatchDecisionsBitIdenticalToScalar) {
  CampusTraceConfig trace_config;
  trace_config.duration = Duration::sec(20.0);
  trace_config.connections_per_sec = 40.0;
  trace_config.bandwidth_bps = 6e6;
  trace_config.seed = 33;
  const GeneratedTrace generated = generate_campus_trace(trace_config);

  // Inject timestamp regressions so the clamp path is exercised too.
  Trace packets = generated.packets;
  for (std::size_t i = 50; i < packets.size(); i += 97) {
    packets[i].timestamp = packets[i].timestamp - Duration::sec(0.5);
  }

  EdgeRouterConfig config;
  config.network = generated.network;
  config.track_blocked_connections = true;
  config.seed = 99;
  // RED band below the offered load so the policy drops, blocks, and
  // consumes rng -- any ordering divergence desynchronizes the streams.
  EdgeRouter scalar{config, make_filter(GetParam()),
                    std::make_unique<RedDropPolicy>(1e6, 4e6)};
  EdgeRouter batched{config, make_filter(GetParam()),
                     std::make_unique<RedDropPolicy>(1e6, 4e6)};

  std::vector<RouterDecision> scalar_decisions;
  scalar_decisions.reserve(packets.size());
  for (const PacketRecord& pkt : packets) {
    scalar_decisions.push_back(scalar.process(pkt));
  }

  std::vector<RouterDecision> batch_decisions(packets.size());
  constexpr std::size_t kChunk = 37;  // odd: exercises partial tails
  for (std::size_t start = 0; start < packets.size(); start += kChunk) {
    const std::size_t n = std::min(kChunk, packets.size() - start);
    batched.process_batch(
        PacketBatch{packets.data() + start, n},
        std::span<RouterDecision>{batch_decisions.data() + start, n});
  }

  ASSERT_EQ(scalar_decisions, batch_decisions);
  const EdgeRouterStats scalar_stats = scalar.stats();
  EXPECT_EQ(scalar_stats, batched.stats());
  EXPECT_GT(scalar_stats.out_of_order_packets, 0u);
  EXPECT_GT(scalar_stats.blocked_drops, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllFilters, BatchScalarDifferential,
    ::testing::ValuesIn(FilterRegistry::instance().names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;  // gtest names reject '-'
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(BatchScalarDifferential, BitmapBatchApiMatchesScalarAcrossRotations) {
  BitmapFilterConfig config;
  config.log2_bits = 14;
  BitmapFilter scalar{config};
  BitmapFilter batched{config};

  Rng rng{4242};
  std::vector<FiveTuple> pool;
  for (int i = 0; i < 300; ++i) pool.push_back(random_tuple(rng));

  Trace marks;
  Trace probes;
  double t = 0.0;
  while (t < 60.0) {  // spans many 5 s rotations and full expiries
    t += rng.exponential(0.02);
    const FiveTuple& tuple = pool[rng.next_below(pool.size())];
    marks.push_back(packet(tuple, t));
    probes.push_back(packet(rng.next_bool(0.8)
                                ? tuple.inverse()
                                : random_tuple(rng).inverse(),
                            t));
  }

  constexpr std::size_t kChunk = 41;
  const auto scalar_admit = [&](const PacketRecord& pkt) {
    scalar.advance_time(pkt.timestamp);
    return scalar.admits_inbound(pkt);
  };
  std::unique_ptr<bool[]> admits{new bool[kChunk]};
  for (std::size_t start = 0; start < marks.size(); start += kChunk) {
    const std::size_t n = std::min(kChunk, marks.size() - start);
    for (std::size_t p = start; p < start + n; ++p) {
      scalar.advance_time(marks[p].timestamp);
      scalar.record_outbound(marks[p]);
    }
    batched.record_outbound_batch(PacketBatch{marks.data() + start, n});
    batched.admits_inbound_batch(PacketBatch{probes.data() + start, n},
                                 std::span<bool>{admits.get(), n});
    for (std::size_t p = 0; p < n; ++p) {
      ASSERT_EQ(scalar_admit(probes[start + p]), admits[p])
          << "probe " << (start + p) << " at t="
          << probes[start + p].timestamp.to_string();
    }
  }
}

TEST(FilterCrossValidation, SpiAdmitsEstablishedSubsetOfNaiveLongTimer) {
  // With matching long timers and no closes, SPI and naive agree exactly.
  SpiFilter spi{{.idle_timeout = Duration::sec(100.0)}};
  NaiveFilter naive{{.state_timeout = Duration::sec(100.0)}};
  Rng rng{77};
  for (int i = 0; i < 2000; ++i) {
    const FiveTuple t = random_tuple(rng);
    const double at = rng.next_double() * 50.0;
    const PacketRecord out = packet(t, at);
    spi.record_outbound(out);
    naive.record_outbound(out);
    const PacketRecord in = packet(t.inverse(), at + rng.next_double());
    EXPECT_EQ(spi.admits_inbound(in), naive.admits_inbound(in));
  }
}

}  // namespace
}  // namespace upbound
