// Property tests: the Pike VM is cross-checked against a tiny brute-force
// backtracking matcher over a restricted grammar (literals, '.', '*', '?')
// on random inputs, and structural invariants are exercised with random
// byte strings.
#include <gtest/gtest.h>

#include <string>

#include "rex/regex.h"
#include "util/rng.h"

namespace upbound::rex {
namespace {

// Reference semantics for patterns limited to: literal bytes, '.', and
// postfix '*' / '?' on the preceding element. Anchored full-scan search.
class ReferenceMatcher {
 public:
  explicit ReferenceMatcher(std::string_view pattern) {
    for (std::size_t i = 0; i < pattern.size(); ++i) {
      Element e;
      e.byte = pattern[i];
      e.any = pattern[i] == '.';
      if (i + 1 < pattern.size() &&
          (pattern[i + 1] == '*' || pattern[i + 1] == '?')) {
        e.star = pattern[i + 1] == '*';
        e.opt = pattern[i + 1] == '?';
        ++i;
      }
      elements_.push_back(e);
    }
  }

  bool search(std::string_view input) const {
    for (std::size_t start = 0; start <= input.size(); ++start) {
      if (match_here(0, input, start)) return true;
    }
    return false;
  }

 private:
  struct Element {
    char byte = 0;
    bool any = false;
    bool star = false;
    bool opt = false;
  };

  bool consumes(const Element& e, char c) const {
    return e.any || e.byte == c;
  }

  bool match_here(std::size_t ei, std::string_view input,
                  std::size_t pos) const {
    if (ei == elements_.size()) return true;
    const Element& e = elements_[ei];
    if (e.star) {
      for (std::size_t k = pos;; ++k) {
        if (match_here(ei + 1, input, k)) return true;
        if (k >= input.size() || !consumes(e, input[k])) return false;
      }
    }
    if (e.opt) {
      if (match_here(ei + 1, input, pos)) return true;
      return pos < input.size() && consumes(e, input[pos]) &&
             match_here(ei + 1, input, pos + 1);
    }
    return pos < input.size() && consumes(e, input[pos]) &&
           match_here(ei + 1, input, pos + 1);
  }

  std::vector<Element> elements_;
};

std::string random_pattern(Rng& rng, std::size_t len) {
  static constexpr char kAlphabet[] = "abc.";
  std::string out;
  for (std::size_t i = 0; i < len; ++i) {
    out += kAlphabet[rng.next_below(4)];
    if (rng.next_bool(0.3)) out += rng.next_bool(0.5) ? '*' : '?';
  }
  return out;
}

std::string random_input(Rng& rng, std::size_t len) {
  std::string out;
  for (std::size_t i = 0; i < len; ++i) {
    out += static_cast<char>('a' + rng.next_below(3));
  }
  return out;
}

TEST(RexProperty, AgreesWithReferenceOnRandomPatterns) {
  Rng rng{20260706};
  int checked = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const std::string pattern = random_pattern(rng, 1 + rng.next_below(6));
    const ReferenceMatcher ref{pattern};
    const Regex re{pattern};
    for (int j = 0; j < 25; ++j) {
      const std::string input = random_input(rng, rng.next_below(12));
      ASSERT_EQ(re.search(input), ref.search(input))
          << "pattern '" << pattern << "' input '" << input << "'";
      ++checked;
    }
  }
  EXPECT_EQ(checked, 400 * 25);
}

std::string escape_all(const std::string& raw) {
  std::string out;
  char buf[8];
  for (unsigned char c : raw) {
    std::snprintf(buf, sizeof(buf), "\\x%02x", c);
    out += buf;
  }
  return out;
}

TEST(RexProperty, EscapedRandomBytesAlwaysSelfMatch) {
  Rng rng{7};
  for (int trial = 0; trial < 200; ++trial) {
    std::string raw;
    const std::size_t len = 1 + rng.next_below(16);
    for (std::size_t i = 0; i < len; ++i) {
      raw += static_cast<char>(rng.next_below(256));
    }
    const Regex re{"^" + escape_all(raw) + "$"};
    EXPECT_TRUE(re.search(raw));
    // A one-byte perturbation must not full-match.
    std::string mutated = raw;
    mutated[rng.next_below(mutated.size())] =
        static_cast<char>(mutated[rng.next_below(mutated.size())] ^ 0x5a);
    if (mutated != raw) {
      EXPECT_FALSE(re.search(mutated));
    }
  }
}

TEST(RexProperty, DotStarMatchesEverything) {
  Rng rng{11};
  const Regex re{".*"};
  for (int trial = 0; trial < 100; ++trial) {
    EXPECT_TRUE(re.search(random_input(rng, rng.next_below(50))));
  }
}

TEST(RexProperty, SearchEqualsPrefixMatchWithDotStarPrefix) {
  Rng rng{13};
  for (int trial = 0; trial < 100; ++trial) {
    const std::string pattern = random_pattern(rng, 1 + rng.next_below(5));
    const Regex plain{pattern};
    const Regex prefixed{".*" + pattern};
    const std::string input = random_input(rng, rng.next_below(15));
    EXPECT_EQ(plain.search(input), prefixed.match_prefix(
                                       std::span<const std::uint8_t>{
                                           reinterpret_cast<const std::uint8_t*>(
                                               input.data()),
                                           input.size()}))
        << "pattern '" << pattern << "' input '" << input << "'";
  }
}

TEST(RexProperty, CountedRepeatEqualsManualExpansion) {
  Rng rng{17};
  for (int reps = 0; reps <= 6; ++reps) {
    const Regex counted{"^(ab){" + std::to_string(reps) + "}$"};
    std::string expansion;
    for (int i = 0; i < reps; ++i) expansion += "ab";
    const Regex expanded{"^" + expansion + "$"};
    for (int j = 0; j < 10; ++j) {
      std::string input;
      const int n = static_cast<int>(rng.next_below(8));
      for (int k = 0; k < n; ++k) input += "ab";
      EXPECT_EQ(counted.search(input), expanded.search(input))
          << "reps=" << reps << " input=" << input;
    }
  }
}

}  // namespace
}  // namespace upbound::rex
