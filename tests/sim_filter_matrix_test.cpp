// Cross-implementation matrix on a real replay: every StateFilter
// implementation must run the full campus trace through an EdgeRouter, and
// the implementations that promise identical semantics must produce
// identical decisions.
#include <gtest/gtest.h>

#include "filter/aging_bloom.h"
#include "filter/bitmap_filter.h"
#include "filter/concurrent_bitmap.h"
#include "filter/filter_registry.h"
#include "filter/naive_filter.h"
#include "filter/spi_filter.h"
#include "sim/replay.h"
#include "trace/campus.h"

namespace upbound {
namespace {

const GeneratedTrace& shared_trace() {
  static const GeneratedTrace trace = [] {
    CampusTraceConfig config;
    config.duration = Duration::sec(25.0);
    config.connections_per_sec = 50.0;
    config.bandwidth_bps = 6e6;
    config.seed = 12;
    return generate_campus_trace(config);
  }();
  return trace;
}

EdgeRouterStats run(std::unique_ptr<StateFilter> filter) {
  EdgeRouterConfig config;
  config.network = shared_trace().network;
  config.track_blocked_connections = false;
  EdgeRouter router{config, std::move(filter),
                    std::make_unique<ConstantDropPolicy>(1.0)};
  const ReplayResult result =
      replay_trace(shared_trace().packets, router, shared_trace().network);
  return result.stats;
}

BitmapFilterConfig default_bitmap() { return BitmapFilterConfig{}; }

TEST(FilterMatrix, AllImplementationsCompleteTheReplay) {
  AgingBloomConfig aging;  // defaults match the bitmap's Te = 20 s
  NaiveFilterConfig naive;
  const EdgeRouterStats results[] = {
      run(make_state_filter(bitmap_filter_spec(default_bitmap()))),
      run(make_state_filter(concurrent_bitmap_filter_spec(default_bitmap()))),
      run(make_state_filter(aging_filter_spec(aging))),
      run(make_state_filter(naive_filter_spec(naive))),
      run(make_state_filter(spi_filter_spec(SpiFilterConfig{}))),
  };
  const std::uint64_t total_inbound = results[0].inbound_passed_packets +
                                      results[0].inbound_dropped_packets;
  for (const EdgeRouterStats& stats : results) {
    // Same packet stream seen by every filter.
    EXPECT_EQ(stats.outbound_packets, results[0].outbound_packets);
    EXPECT_EQ(stats.inbound_passed_packets + stats.inbound_dropped_packets,
              total_inbound);
    // Everyone drops something, nobody drops everything.
    EXPECT_GT(stats.inbound_dropped_packets, 0u);
    EXPECT_LT(stats.inbound_drop_rate(), 0.25);
  }
}

TEST(FilterMatrix, ConcurrentBitmapMatchesSequentialExactly) {
  const EdgeRouterStats sequential =
      run(make_state_filter(bitmap_filter_spec(default_bitmap())));
  const EdgeRouterStats concurrent =
      run(make_state_filter(concurrent_bitmap_filter_spec(default_bitmap())));
  EXPECT_EQ(sequential.inbound_passed_packets,
            concurrent.inbound_passed_packets);
  EXPECT_EQ(sequential.inbound_dropped_packets,
            concurrent.inbound_dropped_packets);
  EXPECT_EQ(sequential.inbound_dropped_bytes,
            concurrent.inbound_dropped_bytes);
}

TEST(FilterMatrix, AgingBloomMatchesBitmapAtMatchingParameters) {
  // Same hash family, same slot count, same epoch/rotation cadence: the
  // 4-bit-stamp filter is decision-identical to the {4 x N} bitmap.
  const BitmapFilterConfig bitmap_config = default_bitmap();
  AgingBloomConfig aging;
  aging.cells = bitmap_config.bits();
  aging.hash_count = bitmap_config.hash_count;
  aging.epoch = bitmap_config.rotate_interval;
  aging.valid_epochs = bitmap_config.vector_count;
  aging.hash_seed = bitmap_config.hash_seed;

  const EdgeRouterStats bitmap =
      run(make_state_filter(bitmap_filter_spec(bitmap_config)));
  const EdgeRouterStats aging_stats =
      run(make_state_filter(aging_filter_spec(aging)));
  EXPECT_EQ(bitmap.inbound_passed_packets, aging_stats.inbound_passed_packets);
  EXPECT_EQ(bitmap.inbound_dropped_packets,
            aging_stats.inbound_dropped_packets);
}

TEST(FilterMatrix, BitmapMatchesNaiveWithinApproximationBand) {
  NaiveFilterConfig naive;
  naive.state_timeout = default_bitmap().expiry_timer();
  const EdgeRouterStats bitmap =
      run(make_state_filter(bitmap_filter_spec(default_bitmap())));
  const EdgeRouterStats exact = run(make_state_filter(naive_filter_spec(naive)));
  EXPECT_NEAR(bitmap.inbound_drop_rate(), exact.inbound_drop_rate(), 0.01);
}

}  // namespace
}  // namespace upbound
