#include <gtest/gtest.h>

#include <string>

#include "rex/regex.h"

namespace upbound::rex {
namespace {

bool hits(const std::string& pattern, const std::string& input,
          bool icase = false) {
  return Regex{pattern, {.ignore_case = icase}}.search(input);
}

TEST(RexMatch, LiteralSubstringSearch) {
  EXPECT_TRUE(hits("needle", "haystack needle haystack"));
  EXPECT_FALSE(hits("needle", "haystack"));
  EXPECT_TRUE(hits("", "anything"));  // empty pattern matches everywhere
}

TEST(RexMatch, AnchoredStart) {
  EXPECT_TRUE(hits("^GET", "GET / HTTP/1.1"));
  EXPECT_FALSE(hits("^GET", "FORGET / HTTP/1.1"));
}

TEST(RexMatch, AnchoredEnd) {
  EXPECT_TRUE(hits("dog$", "the lazy dog"));
  EXPECT_FALSE(hits("dog$", "dog food"));
}

TEST(RexMatch, FullyAnchored) {
  EXPECT_TRUE(hits("^abc$", "abc"));
  EXPECT_FALSE(hits("^abc$", "abcd"));
  EXPECT_FALSE(hits("^abc$", "xabc"));
}

TEST(RexMatch, DotMatchesAnyByteIncludingNewline) {
  EXPECT_TRUE(hits("a.c", "abc"));
  EXPECT_TRUE(hits("a.c", "a\nc"));
  EXPECT_TRUE(hits("a.c", std::string("a\0c", 3)));
  EXPECT_FALSE(hits("a.c", "ac"));
}

TEST(RexMatch, StarGreedyAndEmpty) {
  EXPECT_TRUE(hits("ab*c", "ac"));
  EXPECT_TRUE(hits("ab*c", "abbbbc"));
  EXPECT_FALSE(hits("ab*c", "adc"));
}

TEST(RexMatch, PlusRequiresOne) {
  EXPECT_FALSE(hits("ab+c", "ac"));
  EXPECT_TRUE(hits("ab+c", "abc"));
  EXPECT_TRUE(hits("ab+c", "abbc"));
}

TEST(RexMatch, QuestionOptional) {
  EXPECT_TRUE(hits("colou?r", "color"));
  EXPECT_TRUE(hits("colou?r", "colour"));
  EXPECT_FALSE(hits("colou?r", "colouur"));
}

TEST(RexMatch, CountedRepeats) {
  EXPECT_TRUE(hits("^a{3}$", "aaa"));
  EXPECT_FALSE(hits("^a{3}$", "aa"));
  EXPECT_FALSE(hits("^a{3}$", "aaaa"));
  EXPECT_TRUE(hits("^a{2,4}$", "aa"));
  EXPECT_TRUE(hits("^a{2,4}$", "aaaa"));
  EXPECT_FALSE(hits("^a{2,4}$", "aaaaa"));
  EXPECT_TRUE(hits("^a{2,}$", "aaaaaaaa"));
  EXPECT_FALSE(hits("^a{2,}$", "a"));
}

TEST(RexMatch, Alternation) {
  EXPECT_TRUE(hits("cat|dog", "hotdog stand"));
  EXPECT_TRUE(hits("cat|dog", "catalog"));
  EXPECT_FALSE(hits("cat|dog", "bird"));
}

TEST(RexMatch, GroupedAlternationWithRepeat) {
  EXPECT_TRUE(hits("^(ab|cd)+$", "ababcd"));
  EXPECT_FALSE(hits("^(ab|cd)+$", "abc"));
}

TEST(RexMatch, NestedGroups) {
  EXPECT_TRUE(hits("^(a(bc)*d)+$", "adabcbcd"));
  EXPECT_FALSE(hits("^(a(bc)*d)+$", "abcbc"));
}

TEST(RexMatch, ClassesAndNegation) {
  EXPECT_TRUE(hits("^[0-9]+$", "12345"));
  EXPECT_FALSE(hits("^[0-9]+$", "123a5"));
  EXPECT_TRUE(hits("^[^0-9]+$", "abcdef"));
  EXPECT_FALSE(hits("^[^0-9]+$", "abc1"));
}

TEST(RexMatch, PredefinedClasses) {
  EXPECT_TRUE(hits("\\d\\d:\\d\\d", "meet at 12:45 sharp"));
  EXPECT_TRUE(hits("^\\w+$", "under_score123"));
  EXPECT_FALSE(hits("^\\w+$", "has space"));
  EXPECT_TRUE(hits("a\\sb", "a b"));
}

TEST(RexMatch, IgnoreCase) {
  EXPECT_TRUE(hits("bittorrent", "BitTorrent Protocol", true));
  EXPECT_FALSE(hits("bittorrent", "BitTorrent Protocol", false));
  EXPECT_TRUE(hits("^HTTP", "http/1.0 200 ok", true));
}

TEST(RexMatch, BinaryBytes) {
  const std::string handshake = std::string("\x13", 1) + "BitTorrent protocol";
  const Regex bt{"^\\x13bittorrent protocol", {.ignore_case = true}};
  EXPECT_TRUE(bt.search(handshake));
  const std::string edonkey = std::string("\xe3\x26\x00\x00\x00\x01", 6);
  const Regex ed{"^[\\xc5\\xd4\\xe3-\\xe5]"};
  EXPECT_TRUE(ed.search(edonkey));
  EXPECT_FALSE(ed.search("plain text"));
}

TEST(RexMatch, NullBytesInInput) {
  const std::string input = std::string("ab\0cd", 5);
  EXPECT_TRUE(Regex{"b\\0c"}.search(input));
  EXPECT_TRUE(Regex{"b.c"}.search(input));
}

TEST(RexMatch, MatchPrefixVsSearch) {
  Regex re{"abc"};
  EXPECT_TRUE(re.search("xxabcxx"));
  EXPECT_FALSE(re.match_prefix("xxabcxx"));
  EXPECT_TRUE(re.match_prefix("abcxx"));
}

TEST(RexMatch, RepeatedSearchesOnSameObject) {
  Regex re{"^a+b$"};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(re.search("aaab"));
    EXPECT_FALSE(re.search("aaac"));
  }
}

TEST(RexMatch, PathologicalNestedQuantifiersStayLinear) {
  // (a+)+b against a^n is exponential for backtrackers; the Pike VM must
  // finish instantly.
  Regex re{"^(a+)+b$"};
  const std::string input(2000, 'a');
  EXPECT_FALSE(re.search(input));
  EXPECT_TRUE(re.search(input + "b"));
}

TEST(RexMatch, ManyAlternativesLinear) {
  std::string pattern;
  for (int i = 0; i < 50; ++i) {
    if (i > 0) pattern += "|";
    pattern += "word" + std::to_string(i);
  }
  Regex re{pattern};
  EXPECT_TRUE(re.search("prefix word49 suffix"));
  EXPECT_FALSE(re.search("prefix wordy suffix"));
}

TEST(RexMatch, EmptyInput) {
  EXPECT_TRUE(hits("", ""));
  EXPECT_TRUE(hits("^$", ""));
  EXPECT_TRUE(hits("a*", ""));
  EXPECT_FALSE(hits("a", ""));
  EXPECT_FALSE(hits("^a$", ""));
}

TEST(RexMatch, AnchorsMidPattern) {
  // '^' can only hold at offset 0; "a^b" is unsatisfiable.
  EXPECT_FALSE(hits("a^b", "ab"));
  EXPECT_FALSE(hits("a$b", "ab"));
}

TEST(RexMatch, DollarInAlternation) {
  EXPECT_TRUE(hits("(end$|stop)", "will stop here"));
  EXPECT_TRUE(hits("(end$|stop)", "the end"));
  EXPECT_FALSE(hits("(end$|stop)", "the end."));
}

struct L7Case {
  const char* name;
  const char* pattern;
  bool icase;
  std::string positive;
  std::string negative;
};

class L7PatternTest : public ::testing::TestWithParam<L7Case> {};

TEST_P(L7PatternTest, PositiveMatchesNegativeDoesNot) {
  const L7Case& c = GetParam();
  Regex re{c.pattern, {.ignore_case = c.icase}};
  EXPECT_TRUE(re.search(c.positive)) << c.name;
  EXPECT_FALSE(re.search(c.negative)) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable1, L7PatternTest,
    ::testing::Values(
        L7Case{"bittorrent_handshake", "^\\x13bittorrent protocol", true,
               std::string("\x13", 1) + "BitTorrent protocol" +
                   std::string(8, '\0'),
               "GET / HTTP/1.1\r\n"},
        L7Case{"bittorrent_tracker", "^get /scrape\\?info_hash=", true,
               "GET /scrape?info_hash=12345", "GET /index.html"},
        L7Case{"edonkey_header", "^[\\xc5\\xd4\\xe3-\\xe5]", false,
               std::string("\xe3\x26\x00\x00", 4),
               std::string("\x01\x02\x03", 3)},
        L7Case{"gnutella_connect", "^gnutella connect/[012]\\.[0-9]\\x0d\\x0a",
               true, "GNUTELLA CONNECT/0.6\r\nUser-Agent: X\r\n",
               "GNUTELLA CONNECT/3.0\r\n"},
        L7Case{"http_response", "^http/(0\\.9|1\\.0|1\\.1) [1-5][0-9][0-9]",
               true, "HTTP/1.1 200 OK\r\n", "HTTP/2.0 200 OK\r\n"},
        L7Case{"ftp_banner", "^220[\\x09-\\x0d -~]*ftp", true,
               "220 ProFTPD 1.3.0 ftp server ready", "220 smtp ready"}),
    [](const ::testing::TestParamInfo<L7Case>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace upbound::rex
