#include "filter/bitmap_filter.h"

#include <gtest/gtest.h>

#include <cmath>

#include "filter/params.h"
#include "util/rng.h"

namespace upbound {
namespace {

PacketRecord outbound_pkt(const FiveTuple& t, double t_sec = 0.0) {
  PacketRecord pkt;
  pkt.timestamp = SimTime::from_sec(t_sec);
  pkt.tuple = t;
  return pkt;
}

PacketRecord inbound_pkt(const FiveTuple& outbound_tuple, double t_sec = 0.0) {
  PacketRecord pkt;
  pkt.timestamp = SimTime::from_sec(t_sec);
  pkt.tuple = outbound_tuple.inverse();
  return pkt;
}

FiveTuple tuple_n(std::uint32_t n, Protocol proto = Protocol::kTcp) {
  return FiveTuple{proto, Ipv4Addr{0x0a000000u + (n & 0xffff)},
                   static_cast<std::uint16_t>(1024 + (n >> 16)),
                   Ipv4Addr{0x3d000000u + (n * 2654435761u) % 0xffffff},
                   static_cast<std::uint16_t>(80 + (n % 50000))};
}

BitmapFilterConfig small_config() {
  BitmapFilterConfig cfg;
  cfg.log2_bits = 16;
  cfg.vector_count = 4;
  cfg.hash_count = 3;
  cfg.rotate_interval = Duration::sec(5.0);
  return cfg;
}

TEST(BitmapFilter, FreshFilterAdmitsNothing) {
  BitmapFilter filter{small_config()};
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(filter.admits_inbound(inbound_pkt(tuple_n(i))));
  }
}

TEST(BitmapFilter, OutboundMarkAdmitsMatchingInbound) {
  BitmapFilter filter{small_config()};
  const FiveTuple t = tuple_n(1);
  filter.record_outbound(outbound_pkt(t));
  EXPECT_TRUE(filter.admits_inbound(inbound_pkt(t)));
}

TEST(BitmapFilter, UnrelatedInboundNotAdmitted) {
  BitmapFilter filter{small_config()};
  filter.record_outbound(outbound_pkt(tuple_n(1)));
  // With one marked tuple in a 65536-bit vector, false positives are
  // essentially impossible for these few probes.
  for (std::uint32_t i = 2; i < 50; ++i) {
    EXPECT_FALSE(filter.admits_inbound(inbound_pkt(tuple_n(i))));
  }
}

TEST(BitmapFilter, SameConnectionDifferentDirectionObjectsAgree) {
  BitmapFilter filter{small_config()};
  const FiveTuple t = tuple_n(7, Protocol::kUdp);
  filter.record_outbound(outbound_pkt(t));
  EXPECT_TRUE(filter.admits_inbound(inbound_pkt(t)));
  // The exact same outbound tuple probed as inbound does NOT match: the
  // key is direction-sensitive (full-tuple mode).
  PacketRecord wrong;
  wrong.tuple = t;
  EXPECT_FALSE(filter.admits_inbound(wrong));
}

TEST(BitmapFilter, RotationAdvancesIndexCyclically) {
  BitmapFilter filter{small_config()};
  EXPECT_EQ(filter.current_index(), 0u);
  filter.rotate();
  EXPECT_EQ(filter.current_index(), 1u);
  filter.rotate();
  filter.rotate();
  filter.rotate();
  EXPECT_EQ(filter.current_index(), 0u);
  EXPECT_EQ(filter.rotations(), 4u);
}

TEST(BitmapFilter, MarksSurviveKMinusOneRotations) {
  BitmapFilter filter{small_config()};  // k = 4
  const FiveTuple t = tuple_n(3);
  filter.record_outbound(outbound_pkt(t));
  for (int r = 0; r < 3; ++r) {
    filter.rotate();
    EXPECT_TRUE(filter.admits_inbound(inbound_pkt(t)))
        << "lost after rotation " << (r + 1);
  }
  filter.rotate();  // k-th rotation clears the last vector holding the mark
  EXPECT_FALSE(filter.admits_inbound(inbound_pkt(t)));
}

TEST(BitmapFilter, RefreshOnOutboundExtendsLifetime) {
  BitmapFilter filter{small_config()};
  const FiveTuple t = tuple_n(4);
  filter.record_outbound(outbound_pkt(t));
  for (int r = 0; r < 20; ++r) {
    filter.rotate();
    filter.record_outbound(outbound_pkt(t));  // keep-alive
    EXPECT_TRUE(filter.admits_inbound(inbound_pkt(t)));
  }
}

TEST(BitmapFilter, AdvanceTimePerformsScheduledRotations) {
  BitmapFilterConfig cfg = small_config();  // dt = 5 s
  BitmapFilter filter{cfg};
  filter.advance_time(SimTime::from_sec(4.9));
  EXPECT_EQ(filter.rotations(), 0u);
  filter.advance_time(SimTime::from_sec(5.0));
  EXPECT_EQ(filter.rotations(), 1u);
  filter.advance_time(SimTime::from_sec(27.0));  // catch-up: 10,15,20,25
  EXPECT_EQ(filter.rotations(), 5u);
}

TEST(BitmapFilter, ExpiryTimerSemantics) {
  // T_e = k*dt = 20 s: a mark at t=0 admits until just before t=20 and is
  // gone at t=20 (mark landed immediately after a rotation boundary).
  BitmapFilter filter{small_config()};
  const FiveTuple t = tuple_n(5);
  filter.advance_time(SimTime::from_sec(0.0));
  filter.record_outbound(outbound_pkt(t, 0.0));

  filter.advance_time(SimTime::from_sec(19.9));
  EXPECT_TRUE(filter.admits_inbound(inbound_pkt(t, 19.9)));

  filter.advance_time(SimTime::from_sec(20.0));
  EXPECT_FALSE(filter.admits_inbound(inbound_pkt(t, 20.0)));
}

TEST(BitmapFilter, LateMarkSurvivesAtLeastKMinusOneIntervals) {
  // A mark just before a rotation still survives (k-1)*dt = 15 s.
  BitmapFilter filter{small_config()};
  const FiveTuple t = tuple_n(6);
  filter.advance_time(SimTime::from_sec(4.999));
  filter.record_outbound(outbound_pkt(t, 4.999));

  filter.advance_time(SimTime::from_sec(19.9));
  EXPECT_TRUE(filter.admits_inbound(inbound_pkt(t, 19.9)));
  filter.advance_time(SimTime::from_sec(20.0));
  EXPECT_FALSE(filter.admits_inbound(inbound_pkt(t, 20.0)));
}

TEST(BitmapFilter, HolePunchingAdmitsAnyPeerPort) {
  BitmapFilterConfig cfg = small_config();
  cfg.key_mode = KeyMode::kHolePunching;
  BitmapFilter filter{cfg};

  const FiveTuple t = tuple_n(8);
  filter.record_outbound(outbound_pkt(t));

  // Inbound from the same external host but a different source port.
  FiveTuple inbound_tuple = t.inverse();
  inbound_tuple.src_port = 55555;
  PacketRecord pkt;
  pkt.tuple = inbound_tuple;
  EXPECT_TRUE(filter.admits_inbound(pkt));

  // A different external host is still rejected.
  FiveTuple other_host = t.inverse();
  other_host.src_addr = Ipv4Addr{9, 9, 9, 9};
  pkt.tuple = other_host;
  EXPECT_FALSE(filter.admits_inbound(pkt));
}

TEST(BitmapFilter, FullTupleRejectsDifferentPeerPort) {
  BitmapFilter filter{small_config()};
  const FiveTuple t = tuple_n(8);
  filter.record_outbound(outbound_pkt(t));
  FiveTuple inbound_tuple = t.inverse();
  inbound_tuple.src_port = 55555;
  PacketRecord pkt;
  pkt.tuple = inbound_tuple;
  EXPECT_FALSE(filter.admits_inbound(pkt));
}

TEST(BitmapFilter, StorageMatchesConfig) {
  BitmapFilterConfig cfg;
  cfg.log2_bits = 20;
  cfg.vector_count = 4;
  BitmapFilter filter{cfg};
  // The paper's headline figure: {4 x 2^20} bitmap = 512K bytes.
  EXPECT_EQ(filter.storage_bytes(), 512u * 1024u);
  EXPECT_EQ(cfg.memory_bytes(), 512u * 1024u);
}

TEST(BitmapFilter, StorageConstantUnderLoad) {
  BitmapFilter filter{small_config()};
  const std::size_t before = filter.storage_bytes();
  for (std::uint32_t i = 0; i < 10'000; ++i) {
    filter.record_outbound(outbound_pkt(tuple_n(i)));
  }
  EXPECT_EQ(filter.storage_bytes(), before);
}

TEST(BitmapFilter, UtilizationGrowsWithMarks) {
  BitmapFilter filter{small_config()};
  EXPECT_DOUBLE_EQ(filter.current_utilization(), 0.0);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    filter.record_outbound(outbound_pkt(tuple_n(i)));
  }
  EXPECT_GT(filter.current_utilization(), 0.02);
  EXPECT_LT(filter.current_utilization(), 0.06);  // ~3000/65536 minus overlap
}

TEST(BitmapFilterConfig, ValidationRejectsBadParameters) {
  BitmapFilterConfig cfg;
  cfg.log2_bits = 2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = BitmapFilterConfig{};
  cfg.vector_count = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = BitmapFilterConfig{};
  cfg.hash_count = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = BitmapFilterConfig{};
  cfg.rotate_interval = Duration::sec(0.0);
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_NO_THROW(BitmapFilterConfig{}.validate());
}

TEST(BitmapFilterConfig, DerivedQuantities) {
  BitmapFilterConfig cfg;
  cfg.log2_bits = 20;
  cfg.vector_count = 4;
  cfg.rotate_interval = Duration::sec(5.0);
  EXPECT_EQ(cfg.bits(), 1u << 20);
  EXPECT_EQ(cfg.expiry_timer(), Duration::sec(20.0));
}

// --- Parameterized false-positive sweep (paper Eq. 3) ------------------

struct FpCase {
  unsigned log2_bits;
  unsigned hash_count;
  std::size_t connections;
};

class BitmapFalsePositiveTest : public ::testing::TestWithParam<FpCase> {};

TEST_P(BitmapFalsePositiveTest, EmpiricalRateTracksEq3) {
  const FpCase& c = GetParam();
  BitmapFilterConfig cfg;
  cfg.log2_bits = c.log2_bits;
  cfg.vector_count = 2;
  cfg.hash_count = c.hash_count;
  BitmapFilter filter{cfg};

  Rng rng{1234};
  for (std::size_t i = 0; i < c.connections; ++i) {
    FiveTuple t{Protocol::kTcp, Ipv4Addr{static_cast<std::uint32_t>(
                                     0x0a000000 | rng.next_below(1 << 16))},
                static_cast<std::uint16_t>(rng.next_range(1024, 65535)),
                Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())},
                static_cast<std::uint16_t>(rng.next_range(1, 65535))};
    filter.record_outbound(outbound_pkt(t));
  }

  // Probe with sockets never sent outbound.
  const int probes = 200'000;
  int penetrated = 0;
  for (int i = 0; i < probes; ++i) {
    FiveTuple t{Protocol::kUdp,
                Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())},
                static_cast<std::uint16_t>(rng.next_range(1, 65535)),
                Ipv4Addr{static_cast<std::uint32_t>(
                    0x0b000000 | rng.next_below(1 << 16))},
                static_cast<std::uint16_t>(rng.next_range(1, 65535))};
    PacketRecord pkt;
    pkt.tuple = t;
    if (filter.admits_inbound(pkt)) ++penetrated;
  }

  const double empirical = static_cast<double>(penetrated) / probes;
  // Exact expectation uses the measured utilization (Eq. 2); Eq. 3 is the
  // no-collision approximation, so allow a modest relative band plus an
  // absolute floor for sampling noise.
  const double expected = penetration_probability_at_utilization(
      filter.current_utilization(), cfg.hash_count);
  EXPECT_NEAR(empirical, expected, std::max(0.002, expected * 0.15))
      << "N=2^" << c.log2_bits << " m=" << c.hash_count
      << " c=" << c.connections;
  // Eq. 3 assumes hash results "seldom collide", which makes it an upper
  // bound: real utilization is 1 - exp(-c*m/N) < c*m/N. Check the band.
  const double approx =
      penetration_probability(c.connections, c.hash_count, cfg.bits());
  EXPECT_LE(empirical, approx * 1.1 + 0.002);
  EXPECT_GE(empirical, approx * 0.4 - 0.002);
}

INSTANTIATE_TEST_SUITE_P(
    Eq3Sweep, BitmapFalsePositiveTest,
    ::testing::Values(FpCase{16, 1, 2000}, FpCase{16, 2, 2000},
                      FpCase{16, 3, 2000}, FpCase{16, 3, 6000},
                      FpCase{18, 3, 8000}, FpCase{18, 4, 8000},
                      FpCase{14, 2, 1000}, FpCase{20, 3, 15000}),
    [](const ::testing::TestParamInfo<FpCase>& info) {
      return "N2p" + std::to_string(info.param.log2_bits) + "_m" +
             std::to_string(info.param.hash_count) + "_c" +
             std::to_string(info.param.connections);
    });

// --- Parameterized expiry sweep over k and dt ---------------------------

struct ExpiryCase {
  unsigned vector_count;
  double rotate_sec;
};

class BitmapExpiryTest : public ::testing::TestWithParam<ExpiryCase> {};

TEST_P(BitmapExpiryTest, MarkExpiresWithinTeWindow) {
  const ExpiryCase& c = GetParam();
  BitmapFilterConfig cfg = small_config();
  cfg.vector_count = c.vector_count;
  cfg.rotate_interval = Duration::sec(c.rotate_sec);
  BitmapFilter filter{cfg};

  const FiveTuple t = tuple_n(42);
  filter.advance_time(SimTime::origin());
  filter.record_outbound(outbound_pkt(t, 0.0));

  const double te = cfg.expiry_timer().to_sec();
  const double just_before = te - c.rotate_sec * 0.01;
  filter.advance_time(SimTime::from_sec(just_before));
  EXPECT_TRUE(filter.admits_inbound(inbound_pkt(t, just_before)))
      << "k=" << c.vector_count << " dt=" << c.rotate_sec;
  filter.advance_time(SimTime::from_sec(te));
  EXPECT_FALSE(filter.admits_inbound(inbound_pkt(t, te)))
      << "k=" << c.vector_count << " dt=" << c.rotate_sec;
}

INSTANTIATE_TEST_SUITE_P(KdtSweep, BitmapExpiryTest,
                         ::testing::Values(ExpiryCase{2, 10.0},
                                           ExpiryCase{3, 5.0},
                                           ExpiryCase{4, 5.0},
                                           ExpiryCase{4, 4.0},
                                           ExpiryCase{6, 2.0},
                                           ExpiryCase{10, 1.0}),
                         [](const ::testing::TestParamInfo<ExpiryCase>& info) {
                           return "k" + std::to_string(info.param.vector_count) +
                                  "_dt" +
                                  std::to_string(
                                      static_cast<int>(info.param.rotate_sec));
                         });

}  // namespace
}  // namespace upbound
