#include "net/headers.h"

#include <gtest/gtest.h>

#include <numeric>

namespace upbound {
namespace {

PacketRecord make_tcp_packet() {
  PacketRecord pkt;
  pkt.timestamp = SimTime::from_sec(1.5);
  pkt.tuple = FiveTuple{Protocol::kTcp, Ipv4Addr{10, 0, 0, 1}, 40000,
                        Ipv4Addr{93, 184, 216, 34}, 80};
  pkt.flags = TcpFlags{.syn = false, .ack = true, .psh = true};
  pkt.payload = {'G', 'E', 'T', ' ', '/', '\r', '\n'};
  pkt.payload_size = static_cast<std::uint32_t>(pkt.payload.size());
  return pkt;
}

PacketRecord make_udp_packet() {
  PacketRecord pkt;
  pkt.timestamp = SimTime::from_sec(2.0);
  pkt.tuple = FiveTuple{Protocol::kUdp, Ipv4Addr{10, 0, 0, 2}, 50000,
                        Ipv4Addr{8, 8, 8, 8}, 53};
  pkt.payload = {0x12, 0x34, 0x01, 0x00};
  pkt.payload_size = 4;
  return pkt;
}

TEST(InternetChecksum, KnownVector) {
  // RFC 1071 example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(InternetChecksum, OddLengthPadsWithZero) {
  const std::uint8_t even[] = {0xab, 0x00};
  const std::uint8_t odd[] = {0xab};
  EXPECT_EQ(internet_checksum(even), internet_checksum(odd));
}

TEST(EncodeFrame, TcpFrameSizes) {
  const PacketRecord pkt = make_tcp_packet();
  const auto frame = encode_frame(pkt);
  EXPECT_EQ(frame.size(), pkt.wire_size());
  EXPECT_EQ(frame.size(), 14u + 20u + 20u + 7u);
}

TEST(EncodeFrame, UdpFrameSizes) {
  const PacketRecord pkt = make_udp_packet();
  const auto frame = encode_frame(pkt);
  EXPECT_EQ(frame.size(), 14u + 20u + 8u + 4u);
}

TEST(EncodeDecode, TcpRoundTrip) {
  const PacketRecord pkt = make_tcp_packet();
  const auto frame = encode_frame(pkt);
  const auto decoded = decode_frame(frame, pkt.timestamp);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->packet.tuple, pkt.tuple);
  EXPECT_EQ(decoded->packet.flags, pkt.flags);
  EXPECT_EQ(decoded->packet.payload, pkt.payload);
  EXPECT_EQ(decoded->packet.payload_size, pkt.payload_size);
  EXPECT_EQ(decoded->packet.timestamp, pkt.timestamp);
  EXPECT_TRUE(decoded->ip_checksum_ok);
  EXPECT_TRUE(decoded->l4_checksum_ok);
}

TEST(EncodeDecode, UdpRoundTrip) {
  const PacketRecord pkt = make_udp_packet();
  const auto frame = encode_frame(pkt);
  const auto decoded = decode_frame(frame, pkt.timestamp);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->packet.tuple, pkt.tuple);
  EXPECT_EQ(decoded->packet.payload, pkt.payload);
  EXPECT_TRUE(decoded->ip_checksum_ok);
  EXPECT_TRUE(decoded->l4_checksum_ok);
}

TEST(EncodeDecode, SynPacketFlags) {
  PacketRecord pkt = make_tcp_packet();
  pkt.flags = TcpFlags{.syn = true};
  pkt.payload.clear();
  pkt.payload_size = 0;
  const auto decoded = decode_frame(encode_frame(pkt), pkt.timestamp);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->packet.flags.syn);
  EXPECT_FALSE(decoded->packet.flags.ack);
  EXPECT_TRUE(decoded->packet.is_syn_only());
}

TEST(EncodeDecode, StrippedPayloadZeroFilled) {
  PacketRecord pkt = make_tcp_packet();
  pkt.payload_size = 100;  // only 7 bytes captured
  const auto frame = encode_frame(pkt);
  EXPECT_EQ(frame.size(), pkt.wire_size());
  const auto decoded = decode_frame(frame, pkt.timestamp);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->packet.payload_size, 100u);
  ASSERT_EQ(decoded->packet.payload.size(), 100u);
  EXPECT_EQ(decoded->packet.payload[0], 'G');
  EXPECT_EQ(decoded->packet.payload[7], 0);  // zero fill after the prefix
}

TEST(DecodeFrame, CorruptedIpChecksumDetected) {
  auto frame = encode_frame(make_tcp_packet());
  frame[14 + 8] ^= 0xff;  // flip the TTL inside the IP header
  const auto decoded = decode_frame(frame, SimTime::origin());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->ip_checksum_ok);
}

TEST(DecodeFrame, CorruptedPayloadFailsL4Checksum) {
  auto frame = encode_frame(make_tcp_packet());
  frame.back() ^= 0x01;
  const auto decoded = decode_frame(frame, SimTime::origin());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->ip_checksum_ok);
  EXPECT_FALSE(decoded->l4_checksum_ok);
}

TEST(DecodeFrame, TruncatedCaptureStillParses) {
  const PacketRecord pkt = make_tcp_packet();
  auto frame = encode_frame(pkt);
  frame.resize(14 + 20 + 20 + 3);  // snaplen cut inside the payload
  const auto decoded = decode_frame(frame, SimTime::origin());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->packet.payload_size, 7u);  // true length from IP header
  EXPECT_EQ(decoded->packet.payload.size(), 3u);
  EXPECT_FALSE(decoded->l4_checksum_ok);  // cannot verify a partial segment
}

TEST(DecodeFrame, RejectsNonIpv4) {
  auto frame = encode_frame(make_tcp_packet());
  frame[12] = 0x86;  // EtherType -> IPv6
  frame[13] = 0xdd;
  EXPECT_FALSE(decode_frame(frame, SimTime::origin()).has_value());
}

TEST(DecodeFrame, RejectsNonTcpUdp) {
  auto frame = encode_frame(make_tcp_packet());
  frame[14 + 9] = 1;  // protocol -> ICMP
  EXPECT_FALSE(decode_frame(frame, SimTime::origin()).has_value());
}

TEST(DecodeFrame, RejectsTinyFrame) {
  const std::vector<std::uint8_t> tiny(10, 0);
  EXPECT_FALSE(decode_frame(tiny, SimTime::origin()).has_value());
}

TEST(TcpFlags, ByteRoundTrip) {
  for (int b = 0; b < 32; ++b) {
    const auto f = TcpFlags::from_byte(static_cast<std::uint8_t>(b));
    EXPECT_EQ(f.to_byte(), b);
  }
}

TEST(PacketRecord, WireSizeMatchesProtocol) {
  EXPECT_EQ(make_tcp_packet().wire_size(), 61u);
  EXPECT_EQ(make_udp_packet().wire_size(), 46u);
}

}  // namespace
}  // namespace upbound
