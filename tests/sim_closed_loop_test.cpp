#include "filter/filter_registry.h"
#include "sim/closed_loop.h"

#include <gtest/gtest.h>

#include "filter/bitmap_filter.h"
#include "sim/replay.h"

namespace upbound {
namespace {

CampusWorkload small_workload(std::uint64_t seed = 3) {
  CampusTraceConfig config;
  config.duration = Duration::sec(20.0);
  config.connections_per_sec = 40.0;
  config.bandwidth_bps = 5e6;
  config.seed = seed;
  return generate_campus_workload(config);
}

std::unique_ptr<EdgeRouter> router_for(const ClientNetwork& network,
                                       double drop_p, bool blocklist) {
  EdgeRouterConfig config;
  config.network = network;
  config.track_blocked_connections = blocklist;
  return std::make_unique<EdgeRouter>(
      config, make_state_filter(bitmap_filter_spec(BitmapFilterConfig{})),
      std::make_unique<ConstantDropPolicy>(drop_p));
}

TEST(ClosedLoop, OpenRouterEstablishesEverything) {
  const CampusWorkload workload = small_workload();
  auto router = router_for(workload.network, 0.0, false);
  const ClosedLoopResult result = run_closed_loop(workload, *router);
  EXPECT_EQ(result.connections_suppressed, 0u);
  EXPECT_EQ(result.retries_attempted, 0u);
  EXPECT_EQ(result.connections_established, workload.connections.size());
  EXPECT_EQ(result.upload_bytes_never_generated, 0u);
  EXPECT_GT(result.carried_outbound.total(), 0.0);
}

TEST(ClosedLoop, OpenRouterMatchesReplayTotals) {
  const CampusWorkload workload = small_workload();

  auto loop_router = router_for(workload.network, 0.0, false);
  const ClosedLoopResult loop = run_closed_loop(workload, *loop_router);

  CampusTraceConfig config;
  config.duration = Duration::sec(20.0);
  config.connections_per_sec = 40.0;
  config.bandwidth_bps = 5e6;
  config.seed = 3;
  const GeneratedTrace trace = generate_campus_trace(config);
  auto replay_router = router_for(trace.network, 0.0, false);
  const ReplayResult replay =
      replay_trace(trace.packets, *replay_router, trace.network);

  // With nothing dropped, closed loop and replay carry the same bytes.
  EXPECT_DOUBLE_EQ(loop.carried_outbound.total(),
                   replay.passed_outbound.total());
  EXPECT_DOUBLE_EQ(loop.carried_inbound.total(),
                   replay.passed_inbound.total());
}

TEST(ClosedLoop, DropAllSuppressesInboundInitiatedConnections) {
  const CampusWorkload workload = small_workload();
  std::size_t inbound_initiated = 0;
  for (const ConnectionSpec& spec : workload.connections) {
    if (!spec.initiator_internal) ++inbound_initiated;
  }
  ASSERT_GT(inbound_initiated, 0u);

  auto router = router_for(workload.network, 1.0, true);
  ClosedLoopConfig config;
  config.max_retries = 2;
  config.initial_backoff = Duration::sec(1.0);
  const ClosedLoopResult result = run_closed_loop(workload, *router, config);

  // Every inbound-initiated connection is eventually suppressed; every
  // outbound-initiated one establishes.
  EXPECT_EQ(result.connections_suppressed, inbound_initiated);
  EXPECT_EQ(result.connections_established,
            workload.connections.size() - inbound_initiated);
  EXPECT_GT(result.upload_bytes_never_generated, 0u);
  // Each suppressed connection burned exactly max_retries retries.
  EXPECT_EQ(result.retries_attempted, inbound_initiated * 2u);
}

TEST(ClosedLoop, SuppressionRemovesUploadFromTheWire) {
  const CampusWorkload workload = small_workload();
  auto open_router = router_for(workload.network, 0.0, false);
  const ClosedLoopResult open = run_closed_loop(workload, *open_router);

  auto strict_router = router_for(workload.network, 1.0, true);
  const ClosedLoopResult strict =
      run_closed_loop(workload, *strict_router);

  // The suppressed upload must be genuinely absent from the carried
  // series, and be the dominant share of the open-router uplink (the
  // paper's "most upload rides inbound connections").
  EXPECT_LT(strict.carried_outbound.total(),
            open.carried_outbound.total() * 0.5);
  EXPECT_GT(static_cast<double>(strict.upload_bytes_never_generated),
            open.carried_outbound.total() * 0.5);
}

TEST(ClosedLoop, RetriesCanSucceedWhenStateAppears) {
  // One inbound connection attempt arrives before the inner host has any
  // state; an outbound connection to the same peer starts slightly later.
  // With full-tuple keys the retry still fails, but with hole-punching
  // keys and listen-port reuse the retry after the outbound packet is
  // admitted -- retries are not always futile.
  CampusWorkload workload;
  workload.network = ClientNetwork{{*Cidr::parse("10.0.0.0/24")}};

  ConnectionSpec outbound;
  outbound.tuple = FiveTuple{Protocol::kTcp, Ipv4Addr{10, 0, 0, 5}, 31337,
                             Ipv4Addr{61, 2, 3, 4}, 6881};
  outbound.initiator_internal = true;
  outbound.start = SimTime::from_sec(1.0);
  MessageSpec msg;
  msg.from_initiator = true;
  msg.total_bytes = 100;
  outbound.messages.push_back(msg);

  ConnectionSpec inbound;
  inbound.tuple = FiveTuple{Protocol::kTcp, Ipv4Addr{61, 2, 3, 4}, 50000,
                            Ipv4Addr{10, 0, 0, 5}, 31337};
  inbound.initiator_internal = false;
  inbound.start = SimTime::from_sec(0.5);  // before any outbound state
  inbound.messages.push_back(msg);

  workload.connections = {inbound, outbound};

  EdgeRouterConfig router_config;
  router_config.network = workload.network;
  router_config.track_blocked_connections = false;
  BitmapFilterConfig bitmap;
  bitmap.key_mode = KeyMode::kHolePunching;
  EdgeRouter router{router_config, make_state_filter(bitmap_filter_spec(bitmap)),
                    std::make_unique<ConstantDropPolicy>(1.0)};

  ClosedLoopConfig config;
  config.initial_backoff = Duration::sec(2.0);  // retry lands after t=1.0
  const ClosedLoopResult result = run_closed_loop(workload, router, config);
  EXPECT_EQ(result.connections_suppressed, 0u);
  EXPECT_EQ(result.connections_established, 2u);
  EXPECT_GE(result.retries_attempted, 1u);
}

}  // namespace
}  // namespace upbound
