#include "analyzer/host_stats.h"

#include <gtest/gtest.h>

#include "trace/campus.h"

namespace upbound {
namespace {

ClientNetwork campus() {
  return ClientNetwork{{*Cidr::parse("140.112.30.0/24")}};
}

PacketRecord pkt(Ipv4Addr src, Ipv4Addr dst, std::uint32_t payload,
                 TcpFlags flags = {}) {
  PacketRecord p;
  p.tuple = FiveTuple{Protocol::kTcp, src, 1000, dst, 2000};
  p.payload_size = payload;
  p.flags = flags;
  return p;
}

const Ipv4Addr kAlice{140, 112, 30, 10};
const Ipv4Addr kBob{140, 112, 30, 11};
const Ipv4Addr kPeer{61, 2, 3, 4};

TEST(HostAccounting, AttributesByDirection) {
  HostAccounting acc{campus()};
  acc.observe(pkt(kAlice, kPeer, 1000));  // alice uploads
  acc.observe(pkt(kPeer, kAlice, 200));   // alice downloads
  acc.observe(pkt(kBob, kPeer, 50));      // bob uploads

  const HostRecord* alice = acc.find(kAlice);
  ASSERT_NE(alice, nullptr);
  EXPECT_EQ(alice->upload_bytes, 1000u + 54u);
  EXPECT_EQ(alice->download_bytes, 200u + 54u);
  EXPECT_EQ(alice->upload_packets, 1u);
  EXPECT_EQ(alice->download_packets, 1u);
  EXPECT_EQ(acc.host_count(), 2u);
}

TEST(HostAccounting, SynCountingByDirection) {
  HostAccounting acc{campus()};
  acc.observe(pkt(kAlice, kPeer, 0, {.syn = true}));  // alice initiates
  acc.observe(pkt(kPeer, kAlice, 0, {.syn = true}));  // peer calls alice
  acc.observe(pkt(kPeer, kAlice, 0, {.syn = true, .ack = true}));  // not SYN-only
  const HostRecord* alice = acc.find(kAlice);
  EXPECT_EQ(alice->connections_initiated, 1u);
  EXPECT_EQ(alice->connections_accepted, 1u);
}

TEST(HostAccounting, LocalAndTransitIgnored) {
  HostAccounting acc{campus()};
  acc.observe(pkt(kAlice, kBob, 1000));                        // local
  acc.observe(pkt(Ipv4Addr{1, 1, 1, 1}, Ipv4Addr{2, 2, 2, 2}, 9));  // transit
  EXPECT_EQ(acc.host_count(), 0u);
}

TEST(HostAccounting, TopUploadersOrdered) {
  HostAccounting acc{campus()};
  acc.observe(pkt(kAlice, kPeer, 100));
  acc.observe(pkt(kBob, kPeer, 10'000));
  const auto top = acc.top_uploaders(5);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].addr, kBob);
  EXPECT_EQ(top[1].addr, kAlice);

  const auto top1 = acc.top_uploaders(1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0].addr, kBob);
}

TEST(HostAccounting, UploadFraction) {
  HostAccounting acc{campus()};
  acc.observe(pkt(kAlice, kPeer, 946));  // 1000 wire bytes up
  acc.observe(pkt(kPeer, kAlice, 946));  // 1000 wire bytes down
  acc.observe(pkt(kAlice, kPeer, 946));
  acc.observe(pkt(kAlice, kPeer, 946));
  EXPECT_DOUBLE_EQ(acc.find(kAlice)->upload_fraction(), 0.75);
}

TEST(HostAccounting, CampusTraceSeedersVisible) {
  CampusTraceConfig config;
  config.duration = Duration::sec(15.0);
  config.connections_per_sec = 50.0;
  config.bandwidth_bps = 5e6;
  config.seed = 3;
  const GeneratedTrace trace = generate_campus_trace(config);

  HostAccounting acc{trace.network};
  for (const PacketRecord& pkt : trace.packets) acc.observe(pkt);

  ASSERT_GT(acc.host_count(), 20u);
  const auto top = acc.top_uploaders(5);
  ASSERT_EQ(top.size(), 5u);
  // P2P seeders dominate uploads and accept inbound connections.
  EXPECT_GT(top[0].upload_fraction(), 0.5);
  const auto accepting = acc.top_accepting(3);
  EXPECT_GT(accepting[0].connections_accepted, 0u);

  // Accounting conserves bytes: sum over hosts == trace totals.
  std::uint64_t up = 0, down = 0;
  for (const auto& host : acc.top_uploaders(acc.host_count())) {
    up += host.upload_bytes;
    down += host.download_bytes;
  }
  EXPECT_EQ(up, trace.outbound_bytes);
  EXPECT_EQ(down, trace.inbound_bytes);
}

}  // namespace
}  // namespace upbound
