// Multi-tenant isolation: one subscriber's swarm must not move a
// neighbour's drop rate when the Eq. 1 input is the tenant's own uplink
// meter -- and, by contrast, does exactly that under aggregate metering.
// Also locks in that per-tenant stats are shard-local under parallel
// replay (thread-count invariant, fault plane included) and that the
// attack evaluator reports the per-tenant Eq. 1 bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "attack/evaluator.h"
#include "fault/fault_injector.h"
#include "filter/drop_policy.h"
#include "filter/filter_registry.h"
#include "sim/parallel_replay.h"
#include "sim/replay.h"
#include "sim/tenant_scenarios.h"

namespace upbound {
namespace {

// Thresholds sized so an idle tenant (~20 kbit/s uplink) always reads
// P_d = 0 while the swarm's ramp (~1.5 Mbit/s at the end) pins P_d = 1
// for most of the trace.
constexpr double kLow = 100e3;
constexpr double kHigh = 400e3;

TenantScenarioConfig swarm_config(double final_multiple) {
  TenantScenarioConfig config;
  config.tenants = 6;
  config.duration = Duration::sec(40.0);
  config.seed = 5;
  config.swarm_final_multiple = final_multiple;
  return config;
}

/// The ramping subscriber is always the pool's first address.
TenantId swarm_tenant() { return Ipv4Addr{10, 40, 0, 2}.value(); }

FilterSpec hierarchical_spec() {
  MapFilterArgs margs;
  margs.set("fine", "bitmap");
  return FilterRegistry::instance().at("hierarchical").parse(margs);
}

ReplayResult replay_per_tenant(const TenantScenarioTrace& trace) {
  EdgeRouterConfig config;
  config.network = trace.network;
  config.seed = 7;
  config.tenancy.enabled = true;
  EdgeRouter router{config, make_state_filter(hierarchical_spec()),
                    std::make_unique<RedDropPolicy>(kLow, kHigh)};
  return replay_trace(trace.packets, router, trace.network);
}

TEST(TenantIsolation, SwarmTenantCannotRaiseNeighbourDropRates) {
  const TenantScenarioTrace swarm =
      generate_tenant_scenario(TenantScenarioKind::kSwarmJoin,
                               swarm_config(32.0));
  const ReplayResult result = replay_per_tenant(swarm);

  const auto swarm_it = result.stats.tenants.find(swarm_tenant());
  ASSERT_NE(swarm_it, result.stats.tenants.end());
  // The swarm pushed its own meter past H: its stateless inbound dies.
  EXPECT_GT(swarm_it->second.policy_drops, 0u);

  // Every neighbour's meter stayed below L, so their Eq. 1 input reads
  // P_d = 0: zero drops of any kind, regardless of the swarm next door.
  ASSERT_GT(result.stats.tenants.size(), 1u);
  for (const auto& [tenant, stats] : result.stats.tenants) {
    if (tenant == swarm_tenant()) continue;
    EXPECT_EQ(stats.policy_drops, 0u);
    EXPECT_EQ(stats.blocked_drops, 0u);
    EXPECT_EQ(stats.inbound_dropped_packets, 0u);
  }

  // And the neighbours' own traffic is untouched by the swarm's size:
  // the quiet-swarm trace carries the identical per-neighbour upload.
  const TenantScenarioTrace quiet =
      generate_tenant_scenario(TenantScenarioKind::kSwarmJoin,
                               swarm_config(1.0));
  const ReplayResult baseline = replay_per_tenant(quiet);
  for (const auto& [tenant, stats] : result.stats.tenants) {
    if (tenant == swarm_tenant()) continue;
    const auto it = baseline.stats.tenants.find(tenant);
    ASSERT_NE(it, baseline.stats.tenants.end());
    EXPECT_EQ(stats.outbound_packets, it->second.outbound_packets);
    EXPECT_EQ(stats.outbound_bytes, it->second.outbound_bytes);
    EXPECT_EQ(it->second.inbound_dropped_packets, 0u);
  }
}

TEST(TenantIsolation, AggregateMeteringLeaksTheSwarmIntoNeighbours) {
  const TenantScenarioTrace swarm =
      generate_tenant_scenario(TenantScenarioKind::kSwarmJoin,
                               swarm_config(32.0));

  // Same thresholds, but the classic single-meter deployment: b is the
  // whole uplink, which the swarm pins above H.
  EdgeRouterConfig config;
  config.network = swarm.network;
  config.seed = 7;
  EdgeRouter router{config,
                    make_state_filter(
                        FilterRegistry::instance().parse("bitmap",
                                                         MapFilterArgs{})),
                    std::make_unique<RedDropPolicy>(kLow, kHigh)};

  const TenantTable table{TenantTableConfig{TenantMode::kPerSubscriber}};
  std::uint64_t neighbour_drops = 0;
  for (const PacketRecord& pkt : swarm.packets) {
    const RouterDecision decision = router.process(pkt);
    if (decision == RouterDecision::kDroppedByPolicy &&
        table.tenant_of_inbound(pkt.tuple) != swarm_tenant()) {
      ++neighbour_drops;
    }
  }
  // The collateral the per-tenant meter eliminates.
  EXPECT_GT(neighbour_drops, 0u);
}

ShardRouterFactory tenant_factory() {
  return [](const ClientNetwork& network, std::size_t shard) {
    EdgeRouterConfig config;
    config.network = network;
    config.seed = shard_seed(7, shard);
    config.tenancy.enabled = true;
    return std::make_unique<EdgeRouter>(
        config, make_state_filter(hierarchical_spec()),
        std::make_unique<RedDropPolicy>(kLow, kHigh));
  };
}

TEST(TenantIsolation, ShardedTenantStatsAreThreadCountInvariant) {
  const TenantScenarioTrace trace =
      generate_tenant_scenario(TenantScenarioKind::kSwarmJoin,
                               swarm_config(32.0));
  ParallelReplayConfig config;
  config.threads = 1;
  const ParallelReplayResult reference =
      parallel_replay(trace.packets, trace.network, tenant_factory(), config);
  ASSERT_FALSE(reference.merged.stats.tenants.empty());
  EXPECT_EQ(reference.merged.stats.tenants.size(), trace.truth.size());

  config.threads = 4;
  const ParallelReplayResult result =
      parallel_replay(trace.packets, trace.network, tenant_factory(), config);
  EXPECT_EQ(result.merged.stats, reference.merged.stats);
  EXPECT_EQ(result.shard_stats, reference.shard_stats);

  // The merge is also the sum of the shard-local slices, tenant by
  // tenant -- no cross-shard tenant state to reconcile.
  std::map<TenantId, TenantStats> recount;
  for (const EdgeRouterStats& shard : reference.shard_stats) {
    for (const auto& [tenant, stats] : shard.tenants) {
      recount[tenant].merge(stats);
    }
  }
  EXPECT_EQ(recount, reference.merged.stats.tenants);
}

TEST(TenantIsolation, FaultFailoverKeepsTenantMergeDeterministic) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault plane compiled out";
  const TenantScenarioTrace trace =
      generate_tenant_scenario(TenantScenarioKind::kSwarmJoin,
                               swarm_config(32.0));

  const auto run = [&](std::size_t threads) {
    FaultInjector injector{FaultSpec::parse("kill-shard:2@100"), 7};
    ParallelReplayConfig config;
    config.threads = threads;
    config.shards = 8;
    config.fault_injector = &injector;
    return parallel_replay(trace.packets, trace.network, tenant_factory(),
                           config);
  };
  const ParallelReplayResult reference = run(1);
  ASSERT_EQ(reference.shard_failed[2], 1u);
  ASSERT_FALSE(reference.merged.stats.tenants.empty());
  for (const std::size_t threads : {2u, 4u}) {
    const ParallelReplayResult result = run(threads);
    EXPECT_EQ(result.merged.stats, reference.merged.stats)
        << "threads=" << threads;
  }
}

TEST(TenantIsolation, AttackEvaluatorReportsPerTenantEq1Rows) {
  TenantScenarioConfig legit_config;
  legit_config.tenants = 4;
  legit_config.duration = Duration::sec(20.0);
  legit_config.seed = 3;
  const TenantScenarioTrace legit =
      generate_tenant_scenario(TenantScenarioKind::kFlashCrowd, legit_config);

  AttackEvaluatorConfig config;
  config.filters = {"bitmap"};
  config.tenancy.enabled = true;
  const AttackScenarioKind scenarios[] = {
      AttackScenarioKind::kSaturationFlooding};
  const AttackReport report =
      evaluate_attacks(legit.packets, legit.network, scenarios, config);

  ASSERT_FALSE(report.outcomes.empty());
  for (const AttackOutcome& outcome : report.outcomes) {
    ASSERT_FALSE(outcome.tenants.empty()) << outcome.scenario;
    EXPECT_TRUE(std::is_sorted(
        outcome.tenants.begin(), outcome.tenants.end(),
        [](const TenantAttackRow& a, const TenantAttackRow& b) {
          return a.tenant < b.tenant;
        }));
    // The rows partition the aggregate tally: attribution loses nothing.
    std::uint64_t legit_inbound = 0;
    std::uint64_t probes = 0;
    for (const TenantAttackRow& row : outcome.tenants) {
      EXPECT_FALSE(row.label.empty());
      EXPECT_GE(row.upload_vs_bound, 0.0);
      legit_inbound += row.tally.legit_inbound_packets;
      probes += row.tally.probe_packets;
    }
    EXPECT_EQ(legit_inbound, outcome.tally.legit_inbound_packets)
        << outcome.scenario;
    EXPECT_EQ(probes, outcome.tally.probe_packets) << outcome.scenario;
  }
  EXPECT_FALSE(report.tenant_table().empty());
}

}  // namespace
}  // namespace upbound
