#include "analyzer/patterns.h"

#include <gtest/gtest.h>

#include "trace/payloads.h"

namespace upbound {
namespace {

std::span<const std::uint8_t> as_span(const payloads::Bytes& b) {
  return {b.data(), b.size()};
}

class PatternSetTest : public ::testing::Test {
 protected:
  PatternSet patterns_;
  Rng rng_{1};
};

TEST_F(PatternSetTest, IdentifiesBittorrentHandshake) {
  EXPECT_EQ(patterns_.match(as_span(payloads::bittorrent_handshake(rng_))),
            AppProtocol::kBitTorrent);
}

TEST_F(PatternSetTest, ScrapeBeatsGenericHttp) {
  // Tracker scrape is HTTP-shaped but must classify as bittorrent.
  EXPECT_EQ(
      patterns_.match(as_span(payloads::bittorrent_scrape_request(rng_))),
      AppProtocol::kBitTorrent);
}

TEST_F(PatternSetTest, IdentifiesDhtQuery) {
  payloads::Bytes dht = payloads::from_string("d1:ad2:id20:");
  const auto id = payloads::random_bytes(rng_, 20);
  dht.insert(dht.end(), id.begin(), id.end());
  EXPECT_EQ(patterns_.match(as_span(dht)), AppProtocol::kBitTorrent);
}

TEST_F(PatternSetTest, IdentifiesEdonkeyTcpHello) {
  EXPECT_EQ(patterns_.match(as_span(payloads::edonkey_hello(rng_))),
            AppProtocol::kEdonkey);
}

TEST_F(PatternSetTest, IdentifiesEdonkeyUdpPing) {
  EXPECT_EQ(patterns_.match(as_span(payloads::edonkey_udp_ping(rng_))),
            AppProtocol::kEdonkey);
}

TEST_F(PatternSetTest, IdentifiesGnutellaHandshakes) {
  EXPECT_EQ(patterns_.match(as_span(payloads::gnutella_connect())),
            AppProtocol::kGnutella);
  EXPECT_EQ(patterns_.match(as_span(payloads::gnutella_ok())),
            AppProtocol::kGnutella);
}

TEST_F(PatternSetTest, GnutellaUriResBeatsGenericHttp) {
  const auto req = payloads::from_string(
      "GET /uri-res/N2R?urn:sha1:PLSTHIPQGSSZTS5FJUPAKUZWUGYQYPFB "
      "HTTP/1.1\r\n");
  EXPECT_EQ(patterns_.match(as_span(req)), AppProtocol::kGnutella);
}

TEST_F(PatternSetTest, IdentifiesHttpBothWays) {
  EXPECT_EQ(patterns_.match(
                as_span(payloads::http_get("example.com", "/x"))),
            AppProtocol::kHttp);
  EXPECT_EQ(patterns_.match(as_span(payloads::http_response(200, 10))),
            AppProtocol::kHttp);
}

TEST_F(PatternSetTest, IdentifiesFtpBanner) {
  EXPECT_EQ(patterns_.match(as_span(payloads::ftp_banner())),
            AppProtocol::kFtp);
}

TEST_F(PatternSetTest, FtpBannerRequiresFtpWord) {
  const auto smtp = payloads::from_string("220 mail.example.com ESMTP\r\n");
  EXPECT_NE(patterns_.match(as_span(smtp)), AppProtocol::kFtp);
}

TEST_F(PatternSetTest, FastTrackIdentifiedAsOther) {
  const auto ft = payloads::from_string(
      "GET /.hash=3da2f9b0c4e1 HTTP/1.1\r\nHost: x\r\n");
  EXPECT_EQ(patterns_.match(as_span(ft)), AppProtocol::kOther);
}

TEST_F(PatternSetTest, EmptyAndOpaqueStreamsUnmatched) {
  EXPECT_EQ(patterns_.match({}), std::nullopt);
  const auto text = payloads::from_string("hello world, nothing special");
  EXPECT_EQ(patterns_.match(as_span(text)), std::nullopt);
}

TEST_F(PatternSetTest, CaseInsensitive) {
  const auto shout = payloads::from_string("GET /INDEX.HTML HTTP/1.1\r\n");
  EXPECT_EQ(patterns_.match(as_span(shout)), AppProtocol::kHttp);
}

TEST(AppForPort, WellKnownTcpPorts) {
  EXPECT_EQ(app_for_port(Protocol::kTcp, 80), AppProtocol::kHttp);
  EXPECT_EQ(app_for_port(Protocol::kTcp, 8080), AppProtocol::kHttp);
  EXPECT_EQ(app_for_port(Protocol::kTcp, 3128), AppProtocol::kHttp);
  EXPECT_EQ(app_for_port(Protocol::kTcp, 21), AppProtocol::kFtp);
  EXPECT_EQ(app_for_port(Protocol::kTcp, 4662), AppProtocol::kEdonkey);
  EXPECT_EQ(app_for_port(Protocol::kTcp, 6881), AppProtocol::kBitTorrent);
  EXPECT_EQ(app_for_port(Protocol::kTcp, 6346), AppProtocol::kGnutella);
  EXPECT_EQ(app_for_port(Protocol::kTcp, 22), AppProtocol::kOther);
  EXPECT_EQ(app_for_port(Protocol::kTcp, 443), AppProtocol::kOther);
}

TEST(AppForPort, UdpSpecificPorts) {
  EXPECT_EQ(app_for_port(Protocol::kUdp, 53), AppProtocol::kDns);
  EXPECT_EQ(app_for_port(Protocol::kUdp, 4672), AppProtocol::kEdonkey);
  EXPECT_EQ(app_for_port(Protocol::kUdp, 4661), AppProtocol::kEdonkey);
  // TCP-only services do not label UDP traffic.
  EXPECT_EQ(app_for_port(Protocol::kUdp, 80), std::nullopt);
  EXPECT_EQ(app_for_port(Protocol::kUdp, 21), std::nullopt);
  EXPECT_EQ(app_for_port(Protocol::kUdp, 22), std::nullopt);
}

TEST(AppForPort, RandomHighPortsUnknown) {
  EXPECT_EQ(app_for_port(Protocol::kTcp, 23456), std::nullopt);
  EXPECT_EQ(app_for_port(Protocol::kUdp, 54321), std::nullopt);
}

}  // namespace
}  // namespace upbound
