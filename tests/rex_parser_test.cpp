#include <gtest/gtest.h>

#include "rex/parser.h"

namespace upbound::rex {
namespace {

TEST(RexParser, SingleLiteral) {
  const NodePtr n = parse("a");
  ASSERT_EQ(n->kind, NodeKind::kByteSet);
  EXPECT_TRUE(n->bytes.test('a'));
  EXPECT_EQ(n->bytes.count(), 1u);
}

TEST(RexParser, IgnoreCaseFoldsLiterals) {
  const NodePtr n = parse("a", {.ignore_case = true});
  EXPECT_TRUE(n->bytes.test('a'));
  EXPECT_TRUE(n->bytes.test('A'));
  EXPECT_EQ(n->bytes.count(), 2u);
}

TEST(RexParser, ConcatAndAlternateShape) {
  const NodePtr n = parse("ab|cd");
  ASSERT_EQ(n->kind, NodeKind::kAlternate);
  ASSERT_EQ(n->children.size(), 2u);
  EXPECT_EQ(n->children[0]->kind, NodeKind::kConcat);
}

TEST(RexParser, EmptyPatternIsEmptyNode) {
  EXPECT_EQ(parse("")->kind, NodeKind::kEmpty);
}

TEST(RexParser, EmptyAlternativeBranch) {
  const NodePtr n = parse("a|");
  ASSERT_EQ(n->kind, NodeKind::kAlternate);
  EXPECT_EQ(n->children[1]->kind, NodeKind::kEmpty);
}

TEST(RexParser, QuantifierShapes) {
  const NodePtr star = parse("a*");
  ASSERT_EQ(star->kind, NodeKind::kRepeat);
  EXPECT_EQ(star->min, 0);
  EXPECT_EQ(star->max, kUnbounded);

  const NodePtr plus = parse("a+");
  EXPECT_EQ(plus->min, 1);
  EXPECT_EQ(plus->max, kUnbounded);

  const NodePtr opt = parse("a?");
  EXPECT_EQ(opt->min, 0);
  EXPECT_EQ(opt->max, 1);
}

TEST(RexParser, CountedRepeats) {
  const NodePtr exact = parse("a{3}");
  EXPECT_EQ(exact->min, 3);
  EXPECT_EQ(exact->max, 3);

  const NodePtr open = parse("a{2,}");
  EXPECT_EQ(open->min, 2);
  EXPECT_EQ(open->max, kUnbounded);

  const NodePtr range = parse("a{2,5}");
  EXPECT_EQ(range->min, 2);
  EXPECT_EQ(range->max, 5);
}

TEST(RexParser, MalformedBracesAreLiterals) {
  // POSIX-ish leniency: '{' not opening a valid counted repeat is literal.
  const NodePtr n = parse("a{x}");
  EXPECT_EQ(n->kind, NodeKind::kConcat);
}

TEST(RexParser, CountedRepeatBoundsChecked) {
  EXPECT_THROW(parse("a{5,2}"), ParseError);
  EXPECT_THROW(parse("a{9999}"), ParseError);
}

TEST(RexParser, CountedRepeatLimitConfigurable) {
  EXPECT_NO_THROW(parse("a{300}", {.max_counted_repeat = 300}));
  EXPECT_THROW(parse("a{300}", {.max_counted_repeat = 100}), ParseError);
}

TEST(RexParser, HexEscapes) {
  const NodePtr n = parse("\\x13");
  ASSERT_EQ(n->kind, NodeKind::kByteSet);
  EXPECT_TRUE(n->bytes.test(0x13));
  EXPECT_EQ(n->bytes.count(), 1u);
}

TEST(RexParser, HexEscapeSingleDigit) {
  const NodePtr n = parse("\\xAz");  // \xA then literal 'z'
  ASSERT_EQ(n->kind, NodeKind::kConcat);
  EXPECT_TRUE(n->children[0]->bytes.test(0x0a));
}

TEST(RexParser, HexEscapeWithoutDigitsThrows) {
  EXPECT_THROW(parse("\\xzz"), ParseError);
}

TEST(RexParser, ControlEscapes) {
  EXPECT_TRUE(parse("\\n")->bytes.test('\n'));
  EXPECT_TRUE(parse("\\r")->bytes.test('\r'));
  EXPECT_TRUE(parse("\\t")->bytes.test('\t'));
  EXPECT_TRUE(parse("\\0")->bytes.test(0));
}

TEST(RexParser, MetacharEscapes) {
  EXPECT_TRUE(parse("\\.")->bytes.test('.'));
  EXPECT_TRUE(parse("\\*")->bytes.test('*'));
  EXPECT_TRUE(parse("\\\\")->bytes.test('\\'));
  EXPECT_TRUE(parse("\\[")->bytes.test('['));
  EXPECT_TRUE(parse("\\$")->bytes.test('$'));
}

TEST(RexParser, UnknownAlphaEscapeThrows) {
  EXPECT_THROW(parse("\\q"), ParseError);
}

TEST(RexParser, DanglingBackslashThrows) {
  EXPECT_THROW(parse("abc\\"), ParseError);
}

TEST(RexParser, ClassEscapes) {
  EXPECT_EQ(parse("\\d")->bytes.count(), 10u);
  EXPECT_EQ(parse("\\D")->bytes.count(), 246u);
  EXPECT_EQ(parse("\\w")->bytes.count(), 63u);
  EXPECT_EQ(parse("\\s")->bytes.count(), 6u);
}

TEST(RexParser, SimpleClass) {
  const NodePtr n = parse("[abc]");
  EXPECT_EQ(n->bytes.count(), 3u);
  EXPECT_TRUE(n->bytes.test('a'));
  EXPECT_TRUE(n->bytes.test('c'));
}

TEST(RexParser, ClassRange) {
  const NodePtr n = parse("[0-9a-f]");
  EXPECT_EQ(n->bytes.count(), 16u);
  EXPECT_TRUE(n->bytes.test('d'));
  EXPECT_FALSE(n->bytes.test('g'));
}

TEST(RexParser, NegatedClass) {
  const NodePtr n = parse("[^0-9]");
  EXPECT_EQ(n->bytes.count(), 246u);
  EXPECT_FALSE(n->bytes.test('5'));
  EXPECT_TRUE(n->bytes.test('a'));
}

TEST(RexParser, ClassWithLeadingCloseBracket) {
  const NodePtr n = parse("[]a]");
  EXPECT_TRUE(n->bytes.test(']'));
  EXPECT_TRUE(n->bytes.test('a'));
  EXPECT_EQ(n->bytes.count(), 2u);
}

TEST(RexParser, ClassTrailingDashIsLiteral) {
  const NodePtr n = parse("[a-]");
  EXPECT_TRUE(n->bytes.test('a'));
  EXPECT_TRUE(n->bytes.test('-'));
}

TEST(RexParser, ClassHexEscapesAndRanges) {
  const NodePtr n = parse("[\\x01-\\x03\\x10]");
  EXPECT_TRUE(n->bytes.test(1));
  EXPECT_TRUE(n->bytes.test(2));
  EXPECT_TRUE(n->bytes.test(3));
  EXPECT_TRUE(n->bytes.test(0x10));
  EXPECT_EQ(n->bytes.count(), 4u);
}

TEST(RexParser, ClassPredefinedEscapeInside) {
  const NodePtr n = parse("[\\d_]");
  EXPECT_EQ(n->bytes.count(), 11u);
}

TEST(RexParser, ReversedRangeThrows) {
  EXPECT_THROW(parse("[z-a]"), ParseError);
}

TEST(RexParser, UnterminatedClassThrows) {
  EXPECT_THROW(parse("[abc"), ParseError);
}

TEST(RexParser, IgnoreCaseClass) {
  const NodePtr n = parse("[a-c]", {.ignore_case = true});
  EXPECT_TRUE(n->bytes.test('B'));
  EXPECT_EQ(n->bytes.count(), 6u);
}

TEST(RexParser, NegatedIgnoreCaseClassExcludesBothCases) {
  const NodePtr n = parse("[^a]", {.ignore_case = true});
  EXPECT_FALSE(n->bytes.test('a'));
  EXPECT_FALSE(n->bytes.test('A'));
  EXPECT_EQ(n->bytes.count(), 254u);
}

TEST(RexParser, Groups) {
  const NodePtr n = parse("(ab)+");
  ASSERT_EQ(n->kind, NodeKind::kRepeat);
  EXPECT_EQ(n->children[0]->kind, NodeKind::kConcat);
}

TEST(RexParser, NonCapturingGroupSyntax) {
  EXPECT_NO_THROW(parse("(?:abc)+"));
  EXPECT_THROW(parse("(?=abc)"), ParseError);  // lookahead unsupported
}

TEST(RexParser, UnterminatedGroupThrows) {
  EXPECT_THROW(parse("(ab"), ParseError);
}

TEST(RexParser, UnmatchedCloseThrows) {
  EXPECT_THROW(parse("ab)"), ParseError);
}

TEST(RexParser, QuantifierWithoutAtomThrows) {
  EXPECT_THROW(parse("*a"), ParseError);
  EXPECT_THROW(parse("|+"), ParseError);
}

TEST(RexParser, Anchors) {
  const NodePtr n = parse("^ab$");
  ASSERT_EQ(n->kind, NodeKind::kConcat);
  EXPECT_EQ(n->children.front()->kind, NodeKind::kAssertStart);
  EXPECT_EQ(n->children.back()->kind, NodeKind::kAssertEnd);
}

TEST(RexParser, ErrorCarriesOffset) {
  try {
    parse("ab[qq");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.offset(), 2u);
  }
}

}  // namespace
}  // namespace upbound::rex
