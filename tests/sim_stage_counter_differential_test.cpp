// Differential stage-counter regression: the batched datapath and the
// scalar batch-of-1 path must produce bit-identical stats AND bit-identical
// per-stage counters for every filter implementation, with blocklisting
// enabled so the blocklist/state stage interleaving is exercised. This
// pins the fix for the inbound pure-lookup path over-counting
// state.lookups on blocklist-dropped packets (the speculative batched
// lookup still runs for them, but the scalar path never consults the
// filter for a blocked packet, so they were counted differently).
#include <gtest/gtest.h>

#include <array>

#include "filter/aging_bloom.h"
#include "filter/bitmap_filter.h"
#include "filter/concurrent_bitmap.h"
#include "filter/filter_registry.h"
#include "filter/naive_filter.h"
#include "filter/spi_filter.h"
#include "sim/edge_router.h"
#include "trace/campus.h"

namespace upbound {
namespace {

const GeneratedTrace& shared_trace() {
  static const GeneratedTrace trace = [] {
    CampusTraceConfig config;
    config.duration = Duration::sec(25.0);
    config.connections_per_sec = 50.0;
    config.bandwidth_bps = 6e6;
    config.seed = 12;
    return generate_campus_trace(config);
  }();
  return trace;
}

std::unique_ptr<StateFilter> make_filter(const std::string& kind) {
  if (kind == "bitmap") {
    return make_state_filter(bitmap_filter_spec(BitmapFilterConfig{}));
  }
  if (kind == "bitmap-mt") {
    return make_state_filter(concurrent_bitmap_filter_spec(BitmapFilterConfig{}));
  }
  if (kind == "aging") {
    return make_state_filter(aging_filter_spec(AgingBloomConfig{}));
  }
  if (kind == "naive") {
    return make_state_filter(naive_filter_spec(NaiveFilterConfig{}));
  }
  return make_state_filter(spi_filter_spec(SpiFilterConfig{}));
}

EdgeRouter make_router(const std::string& kind) {
  EdgeRouterConfig config;
  config.network = shared_trace().network;
  // Blocklisting on, with an aggressive policy so the blocklist actually
  // populates and inbound packets hit the blocked-drop branch.
  config.track_blocked_connections = true;
  return EdgeRouter{config, make_filter(kind),
                    std::make_unique<RedDropPolicy>(5e5, 2e6)};
}

EdgeRouterStats run(const std::string& kind, std::size_t batch_size) {
  EdgeRouter router = make_router(kind);
  const Trace& trace = shared_trace().packets;
  std::array<RouterDecision, 256> decisions;
  for (std::size_t start = 0; start < trace.size(); start += batch_size) {
    const std::size_t n = std::min(batch_size, trace.size() - start);
    router.process_batch(PacketBatch{trace.data() + start, n},
                         std::span<RouterDecision>{decisions.data(), n});
  }
  return router.stats();
}

std::uint64_t counter_value(const CounterSnapshot& counters,
                            std::string_view name) {
  for (const CounterSample& sample : counters) {
    if (sample.name == name) return sample.value;
  }
  ADD_FAILURE() << "missing counter " << name;
  return 0;
}

class StageCounterDifferential
    : public ::testing::TestWithParam<const char*> {};

TEST_P(StageCounterDifferential, BatchAndScalarCountersAgreeExactly) {
  const std::string kind = GetParam();
  const EdgeRouterStats batched = run(kind, 256);
  const EdgeRouterStats scalar = run(kind, 1);

  // Blocklisting must actually fire or the regression is untested.
  ASSERT_GT(batched.blocked_drops, 0u) << kind;

  // Full stats equality covers the per-stage counter snapshot too
  // (EdgeRouterStats::operator== is defaulted over all members).
  EXPECT_EQ(batched, scalar) << kind;
}

TEST_P(StageCounterDifferential, LookupsEqualHitsPlusMisses) {
  const std::string kind = GetParam();
  for (const std::size_t batch_size : {std::size_t{1}, std::size_t{256}}) {
    const EdgeRouterStats stats = run(kind, batch_size);
    const std::uint64_t lookups =
        counter_value(stats.stage_counters, "state.lookups");
    const std::uint64_t hits =
        counter_value(stats.stage_counters, "state.hits");
    const std::uint64_t misses =
        counter_value(stats.stage_counters, "state.misses");
    EXPECT_EQ(lookups, hits + misses)
        << kind << " batch=" << batch_size;
    EXPECT_GT(lookups, 0u) << kind;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFilters, StageCounterDifferential,
                         ::testing::Values("bitmap", "bitmap-mt", "aging",
                                           "naive", "spi"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace upbound
