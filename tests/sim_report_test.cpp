#include "sim/report.h"

#include <gtest/gtest.h>

namespace upbound {
namespace {

TEST(Report, NumAndPercent) {
  EXPECT_EQ(report::num(3.14159, 2), "3.14");
  EXPECT_EQ(report::num(3.0, 0), "3");
  EXPECT_EQ(report::percent(0.4567, 1), "45.7%");
}

TEST(Report, TableAlignsColumns) {
  const std::string out = report::table({{"Protocol", "Conns", "Bytes"},
                                         {"bittorrent", "47.90%", "18%"},
                                         {"edonkey", "22.00%", "21%"}});
  EXPECT_NE(out.find("| Protocol"), std::string::npos);
  EXPECT_NE(out.find("bittorrent"), std::string::npos);
  // Separator row present after header.
  EXPECT_NE(out.find("|---"), std::string::npos);
  // All rows have the same width.
  std::size_t first_len = out.find('\n');
  std::size_t second_start = first_len + 1;
  std::size_t second_len = out.find('\n', second_start) - second_start;
  EXPECT_EQ(first_len, second_len);
}

TEST(Report, TableEmpty) {
  EXPECT_EQ(report::table({}), "");
}

TEST(Report, TableHandlesRaggedRows) {
  const std::string out = report::table({{"a", "b", "c"}, {"x"}});
  EXPECT_NE(out.find("x"), std::string::npos);
}

TEST(Report, CdfCurveShowsPercentiles) {
  CdfBuilder cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(static_cast<double>(i));
  const std::string out = report::cdf_curve(cdf, "seconds", 10);
  EXPECT_NE(out.find("seconds"), std::string::npos);
  EXPECT_NE(out.find("P50"), std::string::npos);
  EXPECT_NE(out.find("P99"), std::string::npos);
}

TEST(Report, CdfCurveEmptySafe) {
  CdfBuilder cdf;
  const std::string out = report::cdf_curve(cdf, "x");
  EXPECT_NE(out.find("no samples"), std::string::npos);
}

TEST(Report, BarScales) {
  EXPECT_EQ(report::bar(0.0, 1.0, 10), "..........");
  EXPECT_EQ(report::bar(1.0, 1.0, 10), "##########");
  EXPECT_EQ(report::bar(0.5, 1.0, 10), "#####.....");
  EXPECT_EQ(report::bar(5.0, 1.0, 10), "##########");  // clamps
  EXPECT_EQ(report::bar(1.0, 0.0, 4), "####");          // max guard
}

TEST(Report, ThroughputSeriesRendersBuckets) {
  TimeSeries a{Duration::sec(1.0)};
  TimeSeries b{Duration::sec(1.0)};
  a.add(SimTime::from_sec(0.5), 125'000.0);  // 1 Mbps bucket
  a.add(SimTime::from_sec(1.5), 250'000.0);  // 2 Mbps bucket
  b.add(SimTime::from_sec(0.5), 125'000.0);
  const std::string out = report::throughput_series(
      {{"offered", &a}, {"carried", &b}});
  EXPECT_NE(out.find("offered"), std::string::npos);
  EXPECT_NE(out.find("carried"), std::string::npos);
  EXPECT_NE(out.find("1.00"), std::string::npos);
  EXPECT_NE(out.find("2.00"), std::string::npos);
  EXPECT_NE(out.find("peak 2.00 Mbps"), std::string::npos);
}

TEST(Report, ThroughputSeriesSubsamplesLongRuns) {
  TimeSeries a{Duration::sec(1.0)};
  for (int i = 0; i < 1000; ++i) a.add(SimTime::from_sec(i + 0.5), 1000.0);
  const std::string out =
      report::throughput_series({{"x", &a}}, /*max_rows=*/50);
  // Data rows only, excluding header and footer lines.
  const std::size_t lines = std::count(out.begin(), out.end(), '\n');
  EXPECT_LE(lines, 55u);
}

}  // namespace
}  // namespace upbound
