// Telemetry layer: log-linear histogram binning and percentiles, registry
// snapshot/merge semantics, the deterministic-subset contract, and the
// canonical JSON-lines / Prometheus renderings.
#include <gtest/gtest.h>

#include "util/latency_histogram.h"
#include "util/metrics.h"
#include "util/metrics_export.h"

namespace upbound {
namespace {

TEST(LatencyHistogram, SmallValuesGetExactBins) {
  for (std::uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::bin_of(v), v);
    EXPECT_EQ(LatencyHistogram::bin_floor(LatencyHistogram::bin_of(v)), v);
  }
}

TEST(LatencyHistogram, BinFloorIsTightLowerBound) {
  // bin_floor(bin_of(v)) <= v, and within 6.25% (one sub-bucket width).
  for (const std::uint64_t v :
       {17ull, 100ull, 1000ull, 4097ull, 1'000'000ull, 123'456'789ull,
        (1ull << 40) + 12345, ~0ull}) {
    const std::size_t bin = LatencyHistogram::bin_of(v);
    const std::uint64_t floor = LatencyHistogram::bin_floor(bin);
    EXPECT_LE(floor, v);
    EXPECT_GE(static_cast<double>(floor), static_cast<double>(v) * 0.9375)
        << "v=" << v;
    // Monotone: the next bin starts above v.
    if (bin + 1 < LatencyHistogram::kBinCount) {
      EXPECT_GT(LatencyHistogram::bin_floor(bin + 1), v);
    }
  }
}

TEST(LatencyHistogram, CountSumMinMax) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min_value(), 0u);
  EXPECT_EQ(h.max_value(), 0u);
  h.record(10);
  h.record(500, 3);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 10u + 3 * 500u);
  EXPECT_EQ(h.min_value(), 10u);
  EXPECT_EQ(h.max_value(), 500u);
}

TEST(LatencyHistogram, PercentilesOnUniformRamp) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  // Bin floors quantize downward by at most 6.25%.
  EXPECT_NEAR(static_cast<double>(h.percentile(50)), 500.0, 500.0 * 0.0625);
  EXPECT_NEAR(static_cast<double>(h.percentile(90)), 900.0, 900.0 * 0.0625);
  EXPECT_NEAR(static_cast<double>(h.percentile(99)), 990.0, 990.0 * 0.0625);
  EXPECT_EQ(h.percentile(100), 1000u);  // exact max
  EXPECT_EQ(h.percentile(0), LatencyHistogram::bin_floor(
                                 LatencyHistogram::bin_of(1)));
}

TEST(LatencyHistogram, MergeEqualsCombinedRecording) {
  LatencyHistogram a, b, combined;
  for (std::uint64_t v = 1; v <= 300; ++v) {
    (v % 2 == 0 ? a : b).record(v * 7);
    combined.record(v * 7);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min_value(), combined.min_value());
  EXPECT_EQ(a.max_value(), combined.max_value());
  for (std::size_t bin = 0; bin < LatencyHistogram::kBinCount; ++bin) {
    EXPECT_EQ(a.bin_count_at(bin), combined.bin_count_at(bin));
  }
  EXPECT_EQ(a.percentile(50), combined.percentile(50));
}

TEST(MetricsRegistry, SnapshotIsNameSorted) {
  MetricsRegistry registry;
  registry.counter("zeta").inc(1);
  registry.counter("alpha").inc(2);
  registry.gauge("g2").set(2.0);
  registry.gauge("g1").set(1.0);
  registry.histogram("h.late").record(5);
  registry.histogram("h.early").record(7);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "zeta");
  ASSERT_EQ(snap.gauges.size(), 2u);
  EXPECT_EQ(snap.gauges[0].name, "g1");
  ASSERT_EQ(snap.histograms.size(), 2u);
  EXPECT_EQ(snap.histograms[0].name, "h.early");
}

TEST(MetricsRegistry, SameNameReturnsSameMetric) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("x");
  registry.gauge("x").set(4.0);
  EXPECT_EQ(g.value(), 4.0);
  EXPECT_EQ(registry.gauge_count(), 1u);
  LatencyHistogram& h = registry.histogram("y");
  registry.histogram("y").record(9);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(registry.histogram_count(), 1u);
}

TEST(MetricsSnapshot, MergeSumsAndCombines) {
  MetricsRegistry a, b;
  a.counter("c").inc(5);
  b.counter("c").inc(7);
  b.counter("only_b").inc(1);
  a.gauge("bytes").set(100.0);
  b.gauge("bytes").set(50.0);
  a.histogram("h").record(10);
  b.histogram("h").record(1000);

  MetricsSnapshot merged = a.snapshot();
  merge_metrics_snapshot(merged, b.snapshot());

  ASSERT_EQ(merged.counters.size(), 2u);
  EXPECT_EQ(merged.counters[0].name, "c");
  EXPECT_EQ(merged.counters[0].value, 12u);
  EXPECT_EQ(merged.counters[1].value, 1u);
  // Gauges sum: per-shard instantaneous values add up to the site total.
  ASSERT_EQ(merged.gauges.size(), 1u);
  EXPECT_EQ(merged.gauges[0].value, 150.0);
  ASSERT_EQ(merged.histograms.size(), 1u);
  EXPECT_EQ(merged.histograms[0].count, 2u);
  EXPECT_EQ(merged.histograms[0].min, 10u);
  EXPECT_EQ(merged.histograms[0].max, 1000u);
}

TEST(MetricsSnapshot, MergeOrderIndependentForSums) {
  MetricsRegistry a, b;
  a.histogram("h").record(3);
  a.histogram("h").record(900);
  b.histogram("h").record(47);
  MetricsSnapshot ab = a.snapshot();
  merge_metrics_snapshot(ab, b.snapshot());
  MetricsSnapshot ba = b.snapshot();
  merge_metrics_snapshot(ba, a.snapshot());
  EXPECT_EQ(ab, ba);
}

TEST(MetricsSnapshot, DeterministicStripsWallClockHistograms) {
  MetricsRegistry registry;
  registry.counter("state.lookups").inc(3);
  registry.histogram("batch.packets").record(256);
  registry.histogram("latency.state_ns").record(1234);
  const MetricsSnapshot det = registry.snapshot().deterministic();
  EXPECT_EQ(det.counters.size(), 1u);
  ASSERT_EQ(det.histograms.size(), 1u);
  EXPECT_EQ(det.histograms[0].name, "batch.packets");
}

TEST(HistogramSample, PercentileMatchesHistogram) {
  MetricsRegistry registry;
  LatencyHistogram& h = registry.histogram("h");
  for (std::uint64_t v = 1; v <= 5000; v += 3) h.record(v);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  for (const double pct : {0.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_EQ(snap.histograms[0].percentile(pct), h.percentile(pct))
        << "pct=" << pct;
  }
}

TEST(MetricsExport, JsonIsSingleCanonicalLine) {
  MetricsRegistry registry;
  registry.counter("a.count").inc(42);
  registry.gauge("b.bytes").set(4096.0);
  registry.histogram("c.packets").record(7);
  const std::string line =
      metrics_to_json(registry.snapshot(), "final", SimTime::from_usec(123));
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"schema\":\"upbound.metrics.v1\""),
            std::string::npos);
  EXPECT_NE(line.find("\"label\":\"final\""), std::string::npos);
  EXPECT_NE(line.find("\"sim_time_usec\":123"), std::string::npos);
  EXPECT_NE(line.find("\"a.count\":42"), std::string::npos);
  EXPECT_NE(line.find("\"b.bytes\":4096"), std::string::npos);
  // Same snapshot, same bytes: the rendering is canonical.
  EXPECT_EQ(line, metrics_to_json(registry.snapshot(), "final",
                                  SimTime::from_usec(123)));
}

TEST(MetricsExport, PrometheusTextTypesAndNames) {
  MetricsRegistry registry;
  registry.counter("state.lookups").inc(9);
  registry.gauge("filter.storage_bytes").set(1024.0);
  registry.histogram("latency.batch_ns").record(500);
  const std::string text = metrics_to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# TYPE upbound_state_lookups counter"),
            std::string::npos);
  EXPECT_NE(text.find("upbound_state_lookups 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE upbound_filter_storage_bytes gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE upbound_latency_batch_ns summary"),
            std::string::npos);
  EXPECT_NE(text.find("upbound_latency_batch_ns{quantile=\"0.50\"}"),
            std::string::npos);
  EXPECT_NE(text.find("upbound_latency_batch_ns_count 1"),
            std::string::npos);
}

TEST(MetricsRegistry, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry registry;
  registry.counter("c").inc(3);
  registry.gauge("g").set(5.0);
  registry.histogram("h").record(11);
  registry.reset();
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 0u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 0.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 0u);
}

}  // namespace
}  // namespace upbound
