// Telemetry determinism contract across the replay engines:
//
//   1. the deterministic subset of the merged metrics (counters, gauges,
//      simulation-domain histograms) is bitwise identical for any worker
//      thread count,
//   2. the canonical JSON rendering of that subset is byte-identical too
//      (what --metrics-out --metrics-deterministic writes),
//   3. replay_trace surfaces the router's metrics (batch/run histograms
//      populated, gauges refreshed),
//   4. stage timing can be disabled at runtime without changing decisions,
//      and the latency histograms stay empty.
#include <gtest/gtest.h>

#include "filter/bitmap_filter.h"
#include "filter/drop_policy.h"
#include "filter/filter_registry.h"
#include "sim/parallel_replay.h"
#include "sim/replay.h"
#include "trace/campus.h"
#include "util/metrics_export.h"

namespace upbound {
namespace {

const GeneratedTrace& shared_trace() {
  static const GeneratedTrace trace = [] {
    CampusTraceConfig config;
    config.duration = Duration::sec(30.0);
    config.connections_per_sec = 50.0;
    config.bandwidth_bps = 8e6;
    config.seed = 21;
    return generate_campus_trace(config);
  }();
  return trace;
}

ShardRouterFactory bitmap_factory(bool stage_timing = true) {
  return [stage_timing](const ClientNetwork& network, std::size_t shard) {
    EdgeRouterConfig config;
    config.network = network;
    config.track_blocked_connections = true;
    config.seed = shard_seed(7, shard);
    config.stage_timing = stage_timing;
    return std::make_unique<EdgeRouter>(
        config, make_state_filter(bitmap_filter_spec(BitmapFilterConfig{})),
        std::make_unique<ConstantDropPolicy>(1.0));
  };
}

const HistogramSample* find_histogram(const MetricsSnapshot& snap,
                                      std::string_view name) {
  for (const HistogramSample& hist : snap.histograms) {
    if (hist.name == name) return &hist;
  }
  return nullptr;
}

TEST(SimMetrics, ReplaySurfacesRouterMetrics) {
  const GeneratedTrace& trace = shared_trace();
  EdgeRouterConfig config;
  config.network = trace.network;
  config.track_blocked_connections = true;
  EdgeRouter router{config,
                    make_state_filter(bitmap_filter_spec(BitmapFilterConfig{})),
                    std::make_unique<ConstantDropPolicy>(1.0)};
  const ReplayResult result =
      replay_trace(trace.packets, router, trace.network);

  // Counters mirror the stats snapshot.
  EXPECT_EQ(result.metrics.counters, result.stats.stage_counters);

  // Batch-size histogram: replay drives 256-packet chunks. Histograms are
  // inert (present but empty) when telemetry is compiled out.
  const HistogramSample* batches =
      find_histogram(result.metrics, "batch.packets");
  ASSERT_NE(batches, nullptr);
  if constexpr (kTelemetryCompiled) {
    EXPECT_EQ(batches->count,
              (trace.packets.size() + 255) / 256);
    EXPECT_EQ(batches->sum, trace.packets.size());
  } else {
    EXPECT_EQ(batches->count, 0u);
  }

  const HistogramSample* runs = find_histogram(result.metrics, "run.packets");
  ASSERT_NE(runs, nullptr);
  if constexpr (kTelemetryCompiled) EXPECT_GT(runs->count, 0u);

  // Gauges are refreshed from the live structures at snapshot time.
  bool saw_storage = false;
  for (const GaugeSample& gauge : result.metrics.gauges) {
    if (gauge.name == "filter.storage_bytes") {
      saw_storage = true;
      EXPECT_EQ(gauge.value,
                static_cast<double>(router.filter().storage_bytes()));
    }
  }
  EXPECT_TRUE(saw_storage);
}

TEST(SimMetrics, WallClockHistogramsRecordedOnlyWithTiming) {
  if constexpr (!kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  const GeneratedTrace& trace = shared_trace();
  for (const bool timing : {true, false}) {
    EdgeRouterConfig config;
    config.network = trace.network;
    config.stage_timing = timing;
    EdgeRouter router{config,
                      make_state_filter(bitmap_filter_spec(BitmapFilterConfig{})),
                      std::make_unique<ConstantDropPolicy>(1.0)};
    const ReplayResult result =
        replay_trace(trace.packets, router, trace.network);
    const HistogramSample* batch_ns =
        find_histogram(result.metrics, "latency.batch_ns");
    ASSERT_NE(batch_ns, nullptr);
    if (timing) {
      EXPECT_GT(batch_ns->count, 0u);
    } else {
      EXPECT_EQ(batch_ns->count, 0u);
    }
  }
}

TEST(SimMetrics, TimingDoesNotChangeDecisionsOrStats) {
  const GeneratedTrace& trace = shared_trace();
  ReplayResult results[2]{ReplayResult{Duration::sec(1.0)},
                          ReplayResult{Duration::sec(1.0)}};
  for (const bool timing : {false, true}) {
    EdgeRouterConfig config;
    config.network = trace.network;
    config.track_blocked_connections = true;
    config.stage_timing = timing;
    EdgeRouter router{config,
                      make_state_filter(bitmap_filter_spec(BitmapFilterConfig{})),
                      std::make_unique<ConstantDropPolicy>(1.0)};
    results[timing ? 1 : 0] =
        replay_trace(trace.packets, router, trace.network);
  }
  // Purity: the clock is read but never branched on.
  EXPECT_TRUE(results[0] == results[1]);
  EXPECT_EQ(results[0].metrics.deterministic(),
            results[1].metrics.deterministic());
}

TEST(SimMetrics, DeterministicSubsetInvariantUnderThreadCount) {
  const GeneratedTrace& trace = shared_trace();
  ParallelReplayConfig config;
  config.shards = 8;

  config.threads = 1;
  const ParallelReplayResult reference =
      parallel_replay(trace.packets, trace.network, bitmap_factory(), config);
  const MetricsSnapshot ref_det = reference.merged.metrics.deterministic();
  ASSERT_FALSE(ref_det.counters.empty());
  ASSERT_NE(find_histogram(ref_det, "batch.packets"), nullptr);
  // Wall-clock histograms really are stripped.
  EXPECT_EQ(find_histogram(ref_det, "latency.batch_ns"), nullptr);
  ASSERT_NE(find_histogram(reference.merged.metrics, "latency.batch_ns"),
            nullptr);

  const std::string ref_json =
      metrics_to_json(ref_det, "final", SimTime::origin());

  for (const std::size_t threads : {2u, 8u}) {
    config.threads = threads;
    const ParallelReplayResult result =
        parallel_replay(trace.packets, trace.network, bitmap_factory(),
                        config);
    const MetricsSnapshot det = result.merged.metrics.deterministic();
    // Bitwise-identical deterministic subset, and byte-identical export.
    EXPECT_EQ(det, ref_det) << "threads=" << threads;
    EXPECT_EQ(metrics_to_json(det, "final", SimTime::origin()), ref_json)
        << "threads=" << threads;
  }
}

TEST(SimMetrics, MergedGaugesSumOverShards) {
  const GeneratedTrace& trace = shared_trace();
  ParallelReplayConfig config;
  config.shards = 4;
  config.threads = 2;
  const ParallelReplayResult result =
      parallel_replay(trace.packets, trace.network, bitmap_factory(), config);

  double expected = 0.0;
  for (const std::size_t bytes : result.shard_filter_bytes) {
    expected += static_cast<double>(bytes);
  }
  bool found = false;
  for (const GaugeSample& gauge : result.merged.metrics.gauges) {
    if (gauge.name == "filter.storage_bytes") {
      found = true;
      EXPECT_EQ(gauge.value, expected);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace upbound
