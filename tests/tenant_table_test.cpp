#include "tenant/tenant_table.h"

#include <gtest/gtest.h>

namespace upbound {
namespace {

TEST(TenantTable, PerSubscriberMapsEachAddressToItself) {
  TenantTable table{TenantTableConfig{TenantMode::kPerSubscriber}};
  const Ipv4Addr a{10, 40, 1, 7};
  const Ipv4Addr b{10, 40, 1, 8};
  EXPECT_NE(table.tenant_of(a), table.tenant_of(b));
  EXPECT_EQ(table.tenant_of(a), a.value());
}

TEST(TenantTable, PerPrefix24AggregatesTheLastOctet) {
  TenantTable table{TenantTableConfig{TenantMode::kPerPrefix24}};
  const Ipv4Addr a{10, 40, 1, 7};
  const Ipv4Addr b{10, 40, 1, 200};
  const Ipv4Addr c{10, 40, 2, 7};
  EXPECT_EQ(table.tenant_of(a), table.tenant_of(b));
  EXPECT_NE(table.tenant_of(a), table.tenant_of(c));
  EXPECT_EQ(table.tenant_of(a) & 0xffu, 0u);
}

TEST(TenantTable, DirectionalHelpersPickTheClientSide) {
  TenantTable table{TenantTableConfig{TenantMode::kPerSubscriber}};
  const FiveTuple out{Protocol::kUdp, Ipv4Addr{10, 40, 0, 2}, 4000,
                      Ipv4Addr{198, 18, 0, 1}, 6881};
  EXPECT_EQ(table.tenant_of_outbound(out), Ipv4Addr(10, 40, 0, 2).value());
  EXPECT_EQ(table.tenant_of_inbound(out.inverse()),
            Ipv4Addr(10, 40, 0, 2).value());
}

TEST(TenantTable, LabelsAreHumanReadable) {
  TenantTable sub{TenantTableConfig{TenantMode::kPerSubscriber}};
  EXPECT_EQ(sub.label(sub.tenant_of(Ipv4Addr{10, 40, 1, 7})), "10.40.1.7");
  TenantTable pfx{TenantTableConfig{TenantMode::kPerPrefix24}};
  EXPECT_EQ(pfx.label(pfx.tenant_of(Ipv4Addr{10, 40, 1, 7})),
            "10.40.1.0/24");
}

TEST(TenantTable, ModeNamesRoundTrip) {
  EXPECT_STREQ(tenant_mode_name(TenantMode::kPerSubscriber), "subscriber");
  EXPECT_STREQ(tenant_mode_name(TenantMode::kPerPrefix24), "prefix24");
  EXPECT_EQ(parse_tenant_mode("subscriber"), TenantMode::kPerSubscriber);
  EXPECT_EQ(parse_tenant_mode("prefix24"), TenantMode::kPerPrefix24);
  EXPECT_FALSE(parse_tenant_mode("household").has_value());
}

}  // namespace
}  // namespace upbound
