// Unit-level behaviour of the attack evaluation harness: blend merging,
// tally arithmetic, upload attribution, and the JSONL report contract.
#include <gtest/gtest.h>

#include "attack/evaluator.h"
#include "attack/scenario.h"
#include "trace/campus.h"

namespace upbound {
namespace {

ClientNetwork campus_network() {
  ClientNetwork network;
  network.add_prefix(*Cidr::parse("140.112.30.0/24"));
  return network;
}

Trace tiny_campus() {
  CampusTraceConfig config;
  config.duration = Duration::sec(16.0);
  config.connections_per_sec = 25.0;
  config.bandwidth_bps = 2e6;
  config.seed = 42;
  config.network.client_prefix = campus_network().prefixes().front();
  return generate_campus_trace(config).packets;
}

AttackEvaluatorConfig tiny_config() {
  AttackEvaluatorConfig config;
  config.attack.bitmap.log2_bits = 12;
  config.attack.bitmap.vector_count = 4;
  config.attack.bitmap.hash_count = 3;
  config.attack.bitmap.rotate_interval = Duration::sec(1.0);
  config.attack.seed = 42;
  config.attack.spi_idle_timeout = Duration::sec(30.0);
  config.seed = 42;
  return config;
}

PacketRecord packet_at(double t_sec, std::uint16_t src_port) {
  PacketRecord pkt;
  pkt.timestamp = SimTime::from_sec(t_sec);
  pkt.tuple = FiveTuple{Protocol::kUdp, Ipv4Addr{140, 112, 30, 1}, src_port,
                        Ipv4Addr{8, 8, 8, 8}, 53};
  return pkt;
}

TEST(AttackBlendTest, MergePreservesOrderAndLabels) {
  Trace legit;
  legit.push_back(packet_at(1.0, 1000));
  legit.push_back(packet_at(2.0, 1001));
  legit.push_back(packet_at(3.0, 1002));

  AttackTraffic attack;
  attack.packets.push_back(packet_at(0.5, 2000));
  attack.packets.push_back(packet_at(2.0, 2001));  // ties a legit packet
  attack.packets.push_back(packet_at(4.0, 2002));
  attack.labels = {AttackLabel::kSupport, AttackLabel::kProbe,
                   AttackLabel::kUpload};

  const AttackBlend blend = blend_with_legit(legit, attack);
  ASSERT_EQ(blend.packets.size(), 6u);
  ASSERT_EQ(blend.labels.size(), 6u);
  for (std::size_t i = 1; i < blend.packets.size(); ++i) {
    EXPECT_LE(blend.packets[i - 1].timestamp, blend.packets[i].timestamp);
  }
  // The tie at t=2.0: the legit packet comes first.
  EXPECT_EQ(blend.packets[2].tuple.src_port, 1001);
  EXPECT_EQ(blend.labels[2], AttackLabel::kLegit);
  EXPECT_EQ(blend.packets[3].tuple.src_port, 2001);
  EXPECT_EQ(blend.labels[3], AttackLabel::kProbe);
  EXPECT_EQ(blend.labels[0], AttackLabel::kSupport);
  EXPECT_EQ(blend.labels[5], AttackLabel::kUpload);
  EXPECT_EQ(blend.first_time(), SimTime::from_sec(0.5));
  EXPECT_EQ(blend.last_time(), SimTime::from_sec(4.0));
}

TEST(AttackBlendTest, GeneratorsArePureFunctions) {
  const Trace legit = tiny_campus();
  AttackScenarioParams params;
  params.bitmap = tiny_config().attack.bitmap;
  params.seed = 42;
  for (const AttackScenarioKind kind : all_attack_scenarios()) {
    const AttackTraffic a =
        generate_attack(kind, legit, campus_network(), params);
    const AttackTraffic b =
        generate_attack(kind, legit, campus_network(), params);
    ASSERT_FALSE(a.packets.empty()) << attack_scenario_name(kind);
    ASSERT_EQ(a.packets.size(), a.labels.size());
    ASSERT_EQ(a.packets.size(), b.packets.size());
    for (std::size_t i = 0; i < a.packets.size(); ++i) {
      ASSERT_EQ(a.packets[i].timestamp, b.packets[i].timestamp);
      ASSERT_EQ(a.packets[i].tuple, b.packets[i].tuple);
      ASSERT_EQ(a.labels[i], b.labels[i]);
    }
    // Time-sorted, as the blend merge requires.
    for (std::size_t i = 1; i < a.packets.size(); ++i) {
      ASSERT_LE(a.packets[i - 1].timestamp, a.packets[i].timestamp);
    }
  }
}

TEST(AttackTallyTest, MergeSumsEveryField) {
  AttackTally a;
  a.probe_packets = 10;
  a.probe_admitted = 3;
  a.legit_inbound_packets = 100;
  a.legit_inbound_dropped = 7;
  a.upload_bytes = 1400;
  a.achieved_upload_bytes = 700;
  AttackTally b = a;
  a.merge(b);
  EXPECT_EQ(a.probe_packets, 20u);
  EXPECT_EQ(a.probe_admitted, 6u);
  EXPECT_EQ(a.legit_inbound_dropped, 14u);
  EXPECT_EQ(a.achieved_upload_bytes, 1400u);
  EXPECT_DOUBLE_EQ(a.bypass_rate(), 0.3);
  EXPECT_DOUBLE_EQ(a.legit_drop_rate(), 0.07);
  EXPECT_DOUBLE_EQ(AttackTally{}.bypass_rate(), 0.0);
}

TEST(AttackEvaluatorTest, ForgeryUploadsAreAttributedToAdmittedProbes) {
  const Trace legit = tiny_campus();
  const AttackScenarioKind scenarios[] = {AttackScenarioKind::kTriggerForgery};
  const AttackReport report = evaluate_attacks(legit, campus_network(),
                                               scenarios, tiny_config());
  for (const AttackOutcome& outcome : report.outcomes) {
    if (outcome.scenario != "trigger-forgery") continue;
    EXPECT_GT(outcome.tally.upload_bytes, 0u) << outcome.filter;
    // Achieved upload only counts bytes whose triggering request got in.
    EXPECT_LE(outcome.tally.achieved_upload_bytes, outcome.tally.upload_bytes);
    EXPECT_GT(outcome.tally.probe_admitted, 0u) << outcome.filter;
    EXPECT_GT(outcome.tally.achieved_upload_bytes, 0u) << outcome.filter;
    EXPECT_GT(outcome.upload_vs_bound, 0.0) << outcome.filter;
  }
}

TEST(AttackEvaluatorTest, ReportShapeAndJsonlContract) {
  const Trace legit = tiny_campus();
  const AttackScenarioKind scenarios[] = {
      AttackScenarioKind::kCollisionProbing,
      AttackScenarioKind::kRotationTiming};
  AttackEvaluatorConfig config = tiny_config();
  config.filters = {"bitmap", "spi"};
  const AttackReport report =
      evaluate_attacks(legit, campus_network(), scenarios, config);

  // (baseline + 2 scenarios) x 2 filters, scenario-major, baseline first.
  ASSERT_EQ(report.outcomes.size(), 6u);
  EXPECT_EQ(report.outcomes[0].scenario, "baseline");
  EXPECT_EQ(report.outcomes[0].filter, "bitmap");
  EXPECT_EQ(report.outcomes[1].filter, "spi");
  EXPECT_EQ(report.outcomes[2].scenario, "collision-probing");
  EXPECT_EQ(report.outcomes[4].scenario, "rotation-timing");

  const std::string jsonl = report.to_jsonl();
  std::size_t lines = 0;
  for (const char c : jsonl) lines += c == '\n';
  EXPECT_EQ(lines, report.outcomes.size());
  EXPECT_NE(jsonl.find("\"schema\":\"upbound.metrics.v1\""),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"label\":\"attack:collision-probing:bitmap\""),
            std::string::npos);
  EXPECT_NE(jsonl.find("attack.bypass_rate"), std::string::npos);
  EXPECT_NE(jsonl.find("attack.occupancy_peak"), std::string::npos);
  // Counters stay empty so the cross-line monotonicity rule of the
  // metrics schema holds for any line ordering.
  EXPECT_NE(jsonl.find("\"counters\":{}"), std::string::npos);

  // The baseline run of each filter is its collateral reference.
  for (const AttackOutcome& outcome : report.outcomes) {
    const AttackOutcome& base =
        outcome.filter == "bitmap" ? report.outcomes[0] : report.outcomes[1];
    EXPECT_DOUBLE_EQ(outcome.baseline_legit_drop_rate,
                     base.tally.legit_drop_rate());
  }
}

TEST(AttackEvaluatorTest, ShardedRunsAreReproducible) {
  const Trace legit = tiny_campus();
  const AttackScenarioKind scenarios[] = {
      AttackScenarioKind::kSaturationFlooding};
  AttackEvaluatorConfig config = tiny_config();
  config.shards = 2;
  const AttackReport a =
      evaluate_attacks(legit, campus_network(), scenarios, config);
  config.threads = 3;
  const AttackReport b =
      evaluate_attacks(legit, campus_network(), scenarios, config);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.to_jsonl(), b.to_jsonl());
}

TEST(AttackEvaluatorTest, UnknownFilterNameThrows) {
  const Trace legit = tiny_campus();
  const AttackScenarioKind scenarios[] = {
      AttackScenarioKind::kCollisionProbing};
  AttackEvaluatorConfig config = tiny_config();
  config.filters = {"bitmap", "chrome"};
  EXPECT_THROW(evaluate_attacks(legit, campus_network(), scenarios, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace upbound
