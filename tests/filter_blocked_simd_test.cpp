// The blocked bitmap + SIMD batch-hash contract, and the bugfix pins that
// ride with it:
//   - the short-key batch hasher is bit-identical to murmur3_x64_128 for
//     every length it claims to cover, SIMD on or off;
//   - every registry backend advertising kCapSimdBatch produces bitwise
//     identical verdicts with the kernel enabled and disabled;
//   - the hash family never loses the no-false-negative root property,
//     including non-power-of-two table sizes (the `% bits_` fallback) and
//     hash_count 1..8;
//   - the blocked layout's false-positive rate stays within its budget;
//   - clock-step catch-up rotates in O(k), with exact rotation counts;
//   - RotationSchedule::set_interval clamps re-anchoring to the observed
//     clock (the control-socket shrink bug);
//   - counting's bakeoff collateral outlier is delete-on-close semantics,
//     not hashing: without close-deletes it is bit-identical to the bitmap.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "filter/bitmap_filter.h"
#include "filter/blocked_bitmap.h"
#include "filter/counting_filter.h"
#include "filter/filter_registry.h"
#include "filter/hash_family.h"
#include "filter/rotation_schedule.h"
#include "util/hash.h"
#include "util/rng.h"

namespace upbound {
namespace {

/// Save/restore the process-global SIMD switch around a test body.
class SimdGuard {
 public:
  explicit SimdGuard(bool enabled) : prev_(set_simd_hash_enabled(enabled)) {}
  ~SimdGuard() { set_simd_hash_enabled(prev_); }
  SimdGuard(const SimdGuard&) = delete;
  SimdGuard& operator=(const SimdGuard&) = delete;

 private:
  bool prev_;
};

FiveTuple random_tuple(Rng& rng, Protocol proto) {
  const auto octet = [&rng] {
    return static_cast<std::uint8_t>(rng.next_below(256));
  };
  return FiveTuple{proto, Ipv4Addr{10, octet(), octet(), octet()},
                   static_cast<std::uint16_t>(rng.next_range(1024, 65535)),
                   Ipv4Addr{octet(), octet(), octet(), octet()},
                   static_cast<std::uint16_t>(rng.next_range(1, 65535))};
}

TEST(ShortBatchHash, MatchesScalarMurmurForEveryCoveredLength) {
  Rng rng{0x5eedULL};
  for (const bool simd : {false, true}) {
    SimdGuard guard{simd};
    for (std::size_t len = 0; len <= 15; ++len) {
      // Counts straddle the 4-lane group size so both the AVX2 groups and
      // the scalar tail run.
      for (const std::size_t count : {std::size_t{1}, std::size_t{3},
                                      std::size_t{4}, std::size_t{7},
                                      std::size_t{16}, std::size_t{21}}) {
        std::vector<std::uint8_t> keys(count * kHashKeyStride, 0);
        for (std::size_t i = 0; i < count; ++i) {
          for (std::size_t b = 0; b < len; ++b) {
            keys[i * kHashKeyStride + b] =
                static_cast<std::uint8_t>(rng.next_below(256));
          }
        }
        const std::uint64_t seed = rng.next_u64();
        std::vector<Hash128> got(count);
        murmur3_x64_128_short_batch(keys.data(), len, count, seed,
                                    got.data());
        for (std::size_t i = 0; i < count; ++i) {
          const Hash128 want = murmur3_x64_128(
              std::span<const std::uint8_t>{keys.data() + i * kHashKeyStride,
                                            len},
              seed);
          ASSERT_EQ(got[i], want)
              << "len=" << len << " count=" << count << " i=" << i
              << " simd=" << simd;
        }
      }
    }
  }
}

TEST(ShortBatchHash, DisableReportsPreviousStateAndSticksWhenUnavailable) {
  const bool prev = set_simd_hash_enabled(false);
  EXPECT_FALSE(simd_hash_enabled());
  EXPECT_FALSE(set_simd_hash_enabled(true));  // returns the value we set
  // Forcing on only takes effect where the kernel can actually run.
  EXPECT_EQ(simd_hash_enabled(), simd_hash_available());
  set_simd_hash_enabled(prev);
}

// Registry-enumerated differential: every backend that advertises
// kCapSimdBatch must produce bitwise identical verdicts, rotation counts,
// and occupancy with the kernel on and off. New batch-capable backends are
// enrolled automatically.
TEST(SimdDifferential, RegistryBackendsAreKernelInvariant) {
  MapFilterArgs args;
  args.set("bits", "12").set("k", "4").set("m", "3").set("dt", "5");
  for (const BackendDescriptor& backend :
       FilterRegistry::instance().descriptors()) {
    if (!backend.has(kCapSimdBatch)) continue;
    const FilterSpec spec = backend.parse(args);

    // One deterministic workload: outbound marks with rising timestamps
    // crossing several rotation boundaries, probes mixing echoes of
    // marked tuples with never-marked ones.
    Rng rng{0xd1fULL};
    std::vector<PacketRecord> marks;
    std::vector<PacketRecord> probes;
    for (std::size_t i = 0; i < 1024; ++i) {
      PacketRecord out;
      out.timestamp = SimTime::from_sec(0.03 * static_cast<double>(i));
      out.tuple = random_tuple(rng, i % 2 ? Protocol::kTcp : Protocol::kUdp);
      marks.push_back(out);
      PacketRecord in;
      in.timestamp = out.timestamp;
      in.tuple = rng.next_bool(0.5) ? out.tuple.inverse()
                                    : random_tuple(rng, Protocol::kUdp);
      probes.push_back(in);
    }

    const auto run = [&](bool simd) {
      SimdGuard guard{simd};
      const std::unique_ptr<StateFilter> filter = make_state_filter(spec);
      std::vector<bool> admits(probes.size());
      constexpr std::size_t kStep = 96;  // off the batch-chunk alignment
      for (std::size_t i = 0; i < marks.size(); i += kStep) {
        const std::size_t n = std::min(kStep, marks.size() - i);
        filter->record_outbound_batch(PacketBatch{marks.data() + i, n});
        bool chunk[kStep] = {};
        filter->admits_inbound_batch(PacketBatch{probes.data() + i, n},
                                     std::span<bool>{chunk, n});
        for (std::size_t p = 0; p < n; ++p) admits[i + p] = chunk[p];
      }
      return std::pair{admits,
                       std::pair{filter->expiry_generations(),
                                 filter->occupancy_fraction()}};
    };

    const auto off = run(false);
    const auto on = run(true);
    EXPECT_EQ(off.first, on.first) << backend.name;
    EXPECT_EQ(off.second.first, on.second.first) << backend.name;
    EXPECT_EQ(off.second.second, on.second.second) << backend.name;
  }
}

// The root no-false-negative property of the hash family: the inverse of
// an inbound tuple keys to exactly the indexes its outbound twin marked.
// Sweeps non-power-of-two sizes (the `% bits_` fallback path) and the
// whole supported hash_count range, in both key modes, and checks the
// batch digest path agrees with the scalar one.
TEST(HashFamilyProperty, NoFalseNegativesAcrossGeometriesAndKeyModes) {
  Rng rng{0xfeedULL};
  for (const std::size_t bits : {std::size_t{1000}, std::size_t{12345},
                                 std::size_t{1} << 16}) {
    for (unsigned m = 1; m <= 8; ++m) {
      BloomHashFamily family{bits, m};
      std::vector<std::size_t> out_idx(m);
      std::vector<std::size_t> in_idx(m);
      for (const KeyMode mode :
           {KeyMode::kFullTuple, KeyMode::kHolePunching}) {
        std::vector<PacketRecord> pkts(64);
        for (auto& pkt : pkts) {
          pkt.tuple = random_tuple(rng, Protocol::kTcp);
        }
        std::vector<std::uint8_t> key_scratch(
            pkts.size() * BloomHashFamily::kKeyStride);
        std::vector<Hash128> digests(pkts.size());
        family.outbound_hash_batch(PacketBatch{pkts.data(), pkts.size()},
                                   mode, key_scratch, digests);
        for (std::size_t i = 0; i < pkts.size(); ++i) {
          const FiveTuple& t = pkts[i].tuple;
          family.outbound_indexes(t, mode, out_idx);
          family.inbound_indexes(t.inverse(), mode, in_idx);
          ASSERT_EQ(out_idx, in_idx) << "bits=" << bits << " m=" << m;
          for (const std::size_t idx : out_idx) ASSERT_LT(idx, bits);
          // Batch digest == scalar digest == the digest behind the
          // indexes.
          ASSERT_EQ(digests[i], family.outbound_hash(t, mode));
          ASSERT_EQ(digests[i], family.inbound_hash(t.inverse(), mode));
          family.indexes_from_hash(digests[i], in_idx);
          ASSERT_EQ(out_idx, in_idx);
        }
      }
    }
  }
}

TEST(BlockedBitmap, NoFalseNegativesAndBoundedFalsePositives) {
  BitmapFilterConfig config;
  config.log2_bits = 16;
  config.vector_count = 4;
  config.hash_count = 3;
  config.rotate_interval = Duration::sec(1e6);  // no rotation mid-test
  BlockedBitmapFilter filter{config};

  Rng rng{0xb10cULL};
  std::vector<PacketRecord> inserted(2000);
  const SimTime now = SimTime::from_sec(1.0);
  for (auto& pkt : inserted) {
    pkt.timestamp = now;
    pkt.tuple = random_tuple(rng, Protocol::kUdp);
  }
  filter.advance_time(now);
  filter.record_outbound_batch(
      PacketBatch{inserted.data(), inserted.size()});

  for (const auto& pkt : inserted) {
    PacketRecord probe = pkt;
    probe.tuple = pkt.tuple.inverse();
    ASSERT_TRUE(filter.admits_inbound(probe));
  }

  // All m probes share one 512-bit block, so the blocked layout pays a
  // modest variance penalty over the flat bitmap's Eq. 3 rate. At this
  // load (6000 set bits in 65536) the flat rate is ~7e-4; budget an order
  // of magnitude for blocking skew and seed luck.
  std::size_t false_positives = 0;
  const std::size_t kProbes = 20000;
  for (std::size_t i = 0; i < kProbes; ++i) {
    PacketRecord probe;
    probe.timestamp = now;
    probe.tuple = random_tuple(rng, Protocol::kTcp);  // disjoint from inserts
    false_positives += filter.admits_inbound(probe) ? 1 : 0;
  }
  EXPECT_LT(static_cast<double>(false_positives) /
                static_cast<double>(kProbes),
            0.01);
}

// Satellite bugfix 1: a clock step of S seconds used to spin S/dt rotate()
// calls. The catch-up is now O(k) with exact arithmetic: the test jumps
// 1e15 intervals and must (a) finish instantly and (b) report the exact
// rotation count.
TEST(ClockStepCatchUp, RotationCountStaysExactAcrossHugeJumps) {
  const auto check = [](StateFilter& filter) {
    PacketRecord pkt;
    pkt.timestamp = SimTime::from_usec(1);
    pkt.tuple = FiveTuple{Protocol::kUdp, Ipv4Addr{10, 0, 0, 1}, 5000,
                          Ipv4Addr{8, 8, 8, 8}, 53};
    filter.advance_time(pkt.timestamp);
    const std::uint64_t before = filter.expiry_generations();
    filter.record_outbound(pkt);

    const std::int64_t kJumpUsec = 1'000'000'000'000'000;  // ~31 years
    filter.advance_time(SimTime::from_usec(kJumpUsec));
    // dt = 1us, first boundary at t=1us, one rotation per elapsed
    // interval: exactly kJumpUsec boundaries passed since construction.
    EXPECT_EQ(filter.expiry_generations(),
              before + static_cast<std::uint64_t>(kJumpUsec) - 1);
    PacketRecord probe = pkt;
    probe.timestamp = SimTime::from_usec(kJumpUsec);
    probe.tuple = pkt.tuple.inverse();
    EXPECT_FALSE(filter.admits_inbound(probe));

    // The boundary arithmetic stays exact after the jump: the next
    // boundary is one interval later, not dt-aligned drift away.
    filter.advance_time(SimTime::from_usec(kJumpUsec));  // no-op
    const std::uint64_t after = filter.expiry_generations();
    filter.advance_time(SimTime::from_usec(kJumpUsec + 1));
    EXPECT_EQ(filter.expiry_generations(), after + 1);
  };

  BitmapFilterConfig bitmap_config;
  bitmap_config.log2_bits = 10;
  bitmap_config.rotate_interval = Duration::usec(1);
  BitmapFilter bitmap{bitmap_config};
  check(bitmap);

  bitmap_config.log2_bits = 10;
  BlockedBitmapFilter blocked{bitmap_config};
  check(blocked);

  CountingFilterConfig counting_config;
  counting_config.log2_cells = 10;
  counting_config.rotate_interval = Duration::usec(1);
  CountingFilter counting{counting_config};
  check(counting);
}

TEST(RotationSchedule, AdvanceCountsEveryElapsedBoundaryExactly) {
  RotationSchedule schedule{SimTime::from_sec(5.0), Duration::sec(5.0)};
  EXPECT_EQ(schedule.advance(SimTime::from_sec(4.9)), 0u);
  EXPECT_EQ(schedule.advance(SimTime::from_sec(5.0)), 1u);
  EXPECT_EQ(schedule.next_boundary(), SimTime::from_sec(10.0));
  EXPECT_EQ(schedule.advance(SimTime::from_sec(27.0)), 4u);
  EXPECT_EQ(schedule.next_boundary(), SimTime::from_sec(30.0));
}

// Satellite bugfix 2: re-anchoring on `next_ - old_interval` after a
// control-socket dt change could put the next boundary in the past (a
// rotation burst on the next packet) or skip the clamp entirely. The
// schedule now lands the first new boundary strictly after the last
// observed clock value.
TEST(RotationSchedule, SetIntervalClampsReAnchorToObservedClock) {
  RotationSchedule schedule{SimTime::from_sec(5.0), Duration::sec(5.0)};
  EXPECT_EQ(schedule.advance(SimTime::from_sec(12.0)), 2u);
  EXPECT_EQ(schedule.next_boundary(), SimTime::from_sec(15.0));

  // Shrink: anchor 10s + 1s = 11s is already behind the clock (12s);
  // clamp forward to the first 1s-grid point after it.
  schedule.set_interval(Duration::sec(1.0));
  EXPECT_EQ(schedule.next_boundary(), SimTime::from_sec(13.0));
  EXPECT_EQ(schedule.advance(SimTime::from_sec(12.5)), 0u);
  EXPECT_EQ(schedule.advance(SimTime::from_sec(13.0)), 1u);

  // Grow: the re-anchored boundary is already in the future; no clamp.
  schedule.set_interval(Duration::sec(100.0));
  EXPECT_EQ(schedule.next_boundary(), SimTime::from_sec(113.0));

  // Extreme shrink long before the first boundary ever fired.
  RotationSchedule idle{SimTime::from_sec(1000.0), Duration::sec(1000.0)};
  EXPECT_EQ(idle.advance(SimTime::from_sec(999.0)), 0u);
  idle.set_interval(Duration::sec(1.0));
  EXPECT_EQ(idle.next_boundary(), SimTime::from_sec(1000.0));
  EXPECT_EQ(idle.advance(SimTime::from_sec(999.5)), 0u);
}

// Satellite bugfix 3 (the BENCH_6 outlier, pinned): counting's ~100x
// collateral-drop outlier against bitmap in the bakeoff is delete-on-close
// semantics, not hashing or geometry. With close-deletes off, counting is
// bit-identical to the bitmap on any workload: insert-if-absent makes
// "all m cells nonzero" coincide exactly with "all m bits set" under the
// same hash family, seed, and rotation schedule.
TEST(CountingCollateral, WithoutCloseDeleteCountingMatchesBitmapBitwise) {
  BitmapFilterConfig bitmap_config;
  bitmap_config.log2_bits = 14;
  BitmapFilter bitmap{bitmap_config};

  CountingFilterConfig counting_config;
  counting_config.log2_cells = 14;
  counting_config.delete_on_close = false;
  CountingFilter counting{counting_config};

  Rng rng{0xc0117ULL};
  std::vector<FiveTuple> pool(600);
  for (auto& tuple : pool) tuple = random_tuple(rng, Protocol::kTcp);

  for (std::size_t step = 0; step < 4000; ++step) {
    const SimTime now = SimTime::from_sec(0.01 * static_cast<double>(step));
    bitmap.advance_time(now);
    counting.advance_time(now);
    PacketRecord out;
    out.timestamp = now;
    out.tuple = pool[rng.next_below(pool.size())];
    // FIN/RST outbound packets are plain marks when close-deletes are
    // off -- both filters must treat them identically.
    out.flags.fin = rng.next_bool(0.1);
    out.flags.rst = rng.next_bool(0.02);
    bitmap.record_outbound(out);
    counting.record_outbound(out);

    PacketRecord probe;
    probe.timestamp = now;
    probe.tuple = rng.next_bool(0.7)
                      ? pool[rng.next_below(pool.size())].inverse()
                      : random_tuple(rng, Protocol::kUdp);
    ASSERT_EQ(bitmap.admits_inbound(probe), counting.admits_inbound(probe))
        << "step=" << step;
  }
  EXPECT_EQ(bitmap.rotations(), counting.rotations());
  // Nonzero-cell <=> set-bit carries over to the occupancy signal too.
  EXPECT_EQ(bitmap.occupancy_fraction(), counting.occupancy_fraction());
}

// The collateral itself, documented: after an outbound FIN the bitmap
// keeps admitting return traffic until rotation retires it (the paper's
// Te window), while delete-on-close counting drops it immediately. The
// bakeoff's exact-state reference admits for the full window, so every
// such post-close inbound packet scores as a collateral drop for
// counting -- the documented price of fast state reclamation, not a bug.
TEST(CountingCollateral, DeleteOnCloseDropsPostFinInboundBitmapAdmits) {
  BitmapFilterConfig bitmap_config;
  bitmap_config.log2_bits = 14;
  BitmapFilter bitmap{bitmap_config};

  CountingFilterConfig counting_config;
  counting_config.log2_cells = 14;
  counting_config.delete_on_close = true;
  CountingFilter counting{counting_config};

  PacketRecord data;
  data.timestamp = SimTime::from_sec(1.0);
  data.tuple = FiveTuple{Protocol::kTcp, Ipv4Addr{10, 0, 0, 7}, 40000,
                         Ipv4Addr{93, 184, 216, 34}, 443};
  bitmap.advance_time(data.timestamp);
  counting.advance_time(data.timestamp);
  bitmap.record_outbound(data);
  counting.record_outbound(data);

  PacketRecord reply = data;
  reply.timestamp = SimTime::from_sec(2.0);
  reply.tuple = data.tuple.inverse();
  EXPECT_TRUE(bitmap.admits_inbound(reply));
  EXPECT_TRUE(counting.admits_inbound(reply));

  PacketRecord fin = data;
  fin.timestamp = SimTime::from_sec(3.0);
  fin.flags.fin = true;
  bitmap.record_outbound(fin);
  counting.record_outbound(fin);
  EXPECT_EQ(counting.deletes_applied(), 1u);

  reply.timestamp = SimTime::from_sec(4.0);
  EXPECT_TRUE(bitmap.admits_inbound(reply));    // admits until rotation
  EXPECT_FALSE(counting.admits_inbound(reply));  // reclaimed at close
}

}  // namespace
}  // namespace upbound
