// Loopback conformance harness: replays a trace through the live tap
// datapath -- real UDP sockets, real epoll, the real event loop -- and
// returns the same ReplayResult offline replay produces, so tests can
// assert byte-identity between the two paths.
//
// Determinism contract: the tap runs in kFromFrames mode (the router
// sees the trace's own timestamps), the datapath clock is a VirtualClock
// pinned at/behind the last processed packet time (tick-driven
// advance_clock calls are no-ops), and the sender runs in lockstep --
// each burst is fully received and processed before the next is sent, so
// loopback UDP never drops under socket-buffer pressure and frame order
// matches trace order.
#pragma once

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>

#include "net/live/event_loop.h"
#include "net/live/live_datapath.h"
#include "net/live/udp_tap.h"
#include "sim/replay.h"
#include "trace/campus.h"
#include "util/clock.h"

namespace upbound::live::testing {

struct LiveRunOptions {
  std::size_t batch_max = 256;
  /// Sender lockstep burst. Kept well under the loopback socket-buffer
  /// budget so a stalled receiver can never overflow it.
  std::size_t burst = 48;
  bool policy_red = true;
  double policy_low = 3e6;
  double policy_high = 6e6;
  double policy_pd = 1.0;
  bool blocklist = true;
  std::uint64_t seed = 7;
  /// Wall-clock failsafe for the pump loop; expiring it fails the test
  /// rather than hanging the suite.
  std::chrono::seconds deadline{10};
};

struct LiveRunOutput {
  ReplayResult result{Duration::sec(1.0)};
  LiveStats stats;
  EdgeRouterStats router_stats;
  std::string report;  // conformance_report over the live result
  std::uint64_t datagrams_sent = 0;
};

/// Builds the router config both the live and the offline run share.
inline EdgeRouterConfig conformance_router_config(
    const ClientNetwork& network, const LiveRunOptions& options) {
  EdgeRouterConfig config;
  config.network = network;
  config.track_blocked_connections = options.blocklist;
  config.seed = options.seed;
  return config;
}

/// The offline reference: plain replay_trace through an identically
/// configured router, reported with the same conformance encoder.
inline LiveRunOutput run_offline(const Trace& trace,
                                 const ClientNetwork& network,
                                 const FilterSpec& spec,
                                 const LiveRunOptions& options) {
  std::unique_ptr<DropPolicy> policy;
  if (options.policy_red) {
    policy = std::make_unique<RedDropPolicy>(options.policy_low,
                                             options.policy_high);
  } else {
    policy = std::make_unique<ConstantDropPolicy>(options.policy_pd);
  }
  EdgeRouter router{conformance_router_config(network, options),
                    make_state_filter(spec), std::move(policy)};
  LiveRunOutput out;
  out.result = replay_trace(trace, router, network);
  out.router_stats = router.stats();
  const SimTime end =
      trace.empty() ? SimTime::origin() : trace.back().timestamp;
  out.report = conformance_report(out.result, end);
  return out;
}

/// The live run: the trace goes out a real UDP socket datagram by
/// datagram and comes back through the tap + event loop + datapath.
inline LiveRunOutput run_live_tap(const Trace& trace,
                                  const ClientNetwork& network,
                                  const FilterSpec& spec,
                                  const LiveRunOptions& options) {
  VirtualClock clock;
  EventLoop loop;

  UdpTapSource::Config tap_config;
  tap_config.port = 0;  // ephemeral: parallel test binaries never collide
  tap_config.timestamp_mode = TapTimestampMode::kFromFrames;
  auto source = std::make_unique<UdpTapSource>(tap_config);
  const std::uint16_t port = source->local_port();

  LiveConfig config;
  config.router = conformance_router_config(network, options);
  config.policy_red = options.policy_red;
  config.policy_low = options.policy_low;
  config.policy_high = options.policy_high;
  config.policy_pd = options.policy_pd;
  config.batch_max = options.batch_max;
  config.clock = &clock;

  LiveRunOutput out;
  {
    LiveDatapath datapath{config, spec, std::move(source), loop};
    UdpTapSender sender{port};

    const auto deadline =
        std::chrono::steady_clock::now() + options.deadline;
    const auto pump_until = [&](std::uint64_t target_frames) {
      while (datapath.source().frames_received() < target_frames) {
        loop.poll_once(1);
        if (std::chrono::steady_clock::now() > deadline) {
          ADD_FAILURE() << "live harness deadline: "
                        << datapath.source().frames_received() << "/"
                        << target_frames << " frames after "
                        << options.deadline.count() << "s";
          return false;
        }
      }
      return true;
    };

    std::uint64_t sent = 0;
    for (std::size_t start = 0; start < trace.size();
         start += options.burst) {
      const std::size_t n = std::min(options.burst, trace.size() - start);
      for (std::size_t p = 0; p < n; ++p) {
        sender.send_packet(trace[start + p]);
      }
      sent += n;
      if (!pump_until(sent)) break;
      // The burst is fully processed; the virtual clock may now catch up
      // to it. advance_clock at the last packet time is a no-op, which is
      // exactly what keeps the live run byte-identical to replay.
      clock.advance_to(trace[start + n - 1].timestamp);
    }
    out.datagrams_sent = sender.datagrams_sent();

    datapath.finalize();
    out.result = datapath.result();
    out.stats = datapath.stats();
    out.router_stats = datapath.router().stats();
    const SimTime end =
        trace.empty() ? SimTime::origin() : trace.back().timestamp;
    out.report = conformance_report(out.result, end);
  }
  return out;
}

/// A small calibrated trace shared by the conformance tests.
inline const GeneratedTrace& conformance_trace() {
  static const GeneratedTrace trace = [] {
    CampusTraceConfig config;
    config.duration = Duration::sec(15.0);
    config.connections_per_sec = 50.0;
    config.bandwidth_bps = 8e6;
    config.seed = 11;
    return generate_campus_trace(config);
  }();
  return trace;
}

}  // namespace upbound::live::testing
