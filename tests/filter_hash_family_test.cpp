#include "filter/hash_family.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.h"

namespace upbound {
namespace {

FiveTuple out_tuple(std::uint16_t sport = 40000, std::uint16_t dport = 6881) {
  return FiveTuple{Protocol::kTcp, Ipv4Addr{10, 0, 0, 5}, sport,
                   Ipv4Addr{61, 2, 3, 4}, dport};
}

TEST(BloomHashFamily, IndexesWithinRange) {
  BloomHashFamily family{1000, 8};
  std::vector<std::size_t> idx(8);
  family.outbound_indexes(out_tuple(), KeyMode::kFullTuple, idx);
  for (std::size_t i : idx) EXPECT_LT(i, 1000u);
}

TEST(BloomHashFamily, DeterministicForSameTuple) {
  BloomHashFamily family{1 << 20, 3};
  std::vector<std::size_t> a(3), b(3);
  family.outbound_indexes(out_tuple(), KeyMode::kFullTuple, a);
  family.outbound_indexes(out_tuple(), KeyMode::kFullTuple, b);
  EXPECT_EQ(a, b);
}

TEST(BloomHashFamily, InboundInverseHitsOutboundBits) {
  BloomHashFamily family{1 << 20, 4};
  std::vector<std::size_t> out(4), in(4);
  const FiveTuple sigma_out = out_tuple();
  family.outbound_indexes(sigma_out, KeyMode::kFullTuple, out);
  // The inbound packet of the same connection carries the inverse tuple.
  family.inbound_indexes(sigma_out.inverse(), KeyMode::kFullTuple, in);
  EXPECT_EQ(out, in);
}

TEST(BloomHashFamily, DifferentTuplesDiverge) {
  BloomHashFamily family{1 << 20, 3};
  std::vector<std::size_t> a(3), b(3);
  family.outbound_indexes(out_tuple(1000), KeyMode::kFullTuple, a);
  family.outbound_indexes(out_tuple(1001), KeyMode::kFullTuple, b);
  EXPECT_NE(a, b);
}

TEST(BloomHashFamily, SeedSeparatesFamilies) {
  BloomHashFamily f1{1 << 20, 3, 1};
  BloomHashFamily f2{1 << 20, 3, 2};
  std::vector<std::size_t> a(3), b(3);
  f1.outbound_indexes(out_tuple(), KeyMode::kFullTuple, a);
  f2.outbound_indexes(out_tuple(), KeyMode::kFullTuple, b);
  EXPECT_NE(a, b);
}

TEST(BloomHashFamily, HolePunchingIgnoresExternalPort) {
  BloomHashFamily family{1 << 20, 3};
  std::vector<std::size_t> a(3), b(3);
  // Outbound to two different ports of the same external host.
  family.outbound_indexes(out_tuple(40000, 6881), KeyMode::kHolePunching, a);
  family.outbound_indexes(out_tuple(40000, 9999), KeyMode::kHolePunching, b);
  EXPECT_EQ(a, b);

  // Full-tuple mode distinguishes them.
  family.outbound_indexes(out_tuple(40000, 6881), KeyMode::kFullTuple, a);
  family.outbound_indexes(out_tuple(40000, 9999), KeyMode::kFullTuple, b);
  EXPECT_NE(a, b);
}

TEST(BloomHashFamily, HolePunchingInboundFromAnySourcePort) {
  BloomHashFamily family{1 << 20, 3};
  std::vector<std::size_t> marked(3), probe(3);
  const FiveTuple sigma_out = out_tuple(40000, 6881);
  family.outbound_indexes(sigma_out, KeyMode::kHolePunching, marked);

  // An inbound connection from the same external host, arbitrary source
  // port, to the same internal address/port.
  FiveTuple inbound = sigma_out.inverse();
  inbound.src_port = 12345;
  family.inbound_indexes(inbound, KeyMode::kHolePunching, probe);
  EXPECT_EQ(marked, probe);
}

TEST(BloomHashFamily, HolePunchingStillKeyedOnInternalPort) {
  BloomHashFamily family{1 << 20, 3};
  std::vector<std::size_t> a(3), b(3);
  family.outbound_indexes(out_tuple(40000, 6881), KeyMode::kHolePunching, a);
  family.outbound_indexes(out_tuple(40001, 6881), KeyMode::kHolePunching, b);
  EXPECT_NE(a, b);
}

TEST(BloomHashFamily, IndexDistributionRoughlyUniform) {
  constexpr std::size_t kBits = 1 << 12;
  BloomHashFamily family{kBits, 1};
  std::vector<int> counts(kBits, 0);
  Rng rng{5};
  std::vector<std::size_t> idx(1);
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    FiveTuple t = out_tuple();
    t.src_port = static_cast<std::uint16_t>(rng.next_u64());
    t.src_addr = Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())};
    family.outbound_indexes(t, KeyMode::kFullTuple, idx);
    ++counts[idx[0]];
  }
  // Chi-square-ish sanity: each bucket expectation is ~48.8; flag any
  // bucket more than 3x off.
  const double expected = static_cast<double>(n) / kBits;
  for (int c : counts) {
    EXPECT_LT(c, expected * 3.0);
  }
}

TEST(BloomHashFamily, ProbesDistinctForSmallTables) {
  // Double hashing with odd step must cycle through distinct slots of a
  // power-of-two table (up to table size).
  BloomHashFamily family{64, 32};
  std::vector<std::size_t> idx(32);
  family.outbound_indexes(out_tuple(), KeyMode::kFullTuple, idx);
  const std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_GT(unique.size(), 16u);
}

TEST(BloomHashFamily, InvalidConstruction) {
  EXPECT_THROW(BloomHashFamily(0, 3), std::invalid_argument);
  EXPECT_THROW(BloomHashFamily(100, 0), std::invalid_argument);
}

}  // namespace
}  // namespace upbound
