// Crash-consistent snapshot persistence: save_snapshot_file round-trips
// through the atomic tmp+rename path, leaves no debris, and the payload
// CRC turns silent on-disk corruption into a typed corrupt-crc rejection.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "filter/snapshot.h"
#include "util/rng.h"

namespace upbound {
namespace {

class FaultRecovery : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "upbound_fault_recovery";
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "state.bin").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::vector<std::uint8_t> read_file(const std::string& path) {
    std::ifstream in{path, std::ios::binary};
    return std::vector<std::uint8_t>{std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>()};
  }

  std::vector<std::uint8_t> sample_snapshot() {
    BitmapFilterConfig config;
    config.log2_bits = 12;
    config.vector_count = 4;
    config.hash_count = 3;
    BitmapFilter filter{config};
    Rng fill{3};
    for (int i = 0; i < 400; ++i) {
      PacketRecord pkt;
      pkt.timestamp = SimTime::from_sec(static_cast<double>(i) * 0.01);
      pkt.tuple = FiveTuple{Protocol::kTcp,
                            Ipv4Addr{static_cast<std::uint32_t>(
                                0x0a000000u + fill.next_below(512))},
                            static_cast<std::uint16_t>(1024 + i),
                            Ipv4Addr{8, 8, 8, 8}, 80};
      filter.record_outbound(pkt);
    }
    return snapshot_bitmap_filter(filter, SimTime::from_sec(4.0));
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(FaultRecovery, SaveRoundTripsAndLeavesNoDebris) {
  const auto snapshot = sample_snapshot();
  save_snapshot_file(path_, snapshot);

  EXPECT_EQ(read_file(path_), snapshot);
  const auto restored = restore_bitmap_filter_checked(read_file(path_));
  EXPECT_TRUE(restored.ok());

  // The atomic-rename protocol must not leave its temp file behind.
  std::size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST_F(FaultRecovery, SaveReplacesExistingFileAtomically) {
  {
    std::ofstream junk{path_, std::ios::binary};
    junk << "stale garbage from a previous run";
  }
  const auto snapshot = sample_snapshot();
  save_snapshot_file(path_, snapshot);
  EXPECT_EQ(read_file(path_), snapshot);
  EXPECT_TRUE(restore_bitmap_filter_checked(read_file(path_)).ok());
}

TEST_F(FaultRecovery, SaveIntoMissingDirectoryThrows) {
  const auto snapshot = sample_snapshot();
  const std::string bad =
      (dir_ / "no-such-subdir" / "state.bin").string();
  EXPECT_THROW(save_snapshot_file(bad, snapshot), std::exception);
  EXPECT_FALSE(std::filesystem::exists(bad));
}

TEST_F(FaultRecovery, TornPayloadIsATypedCrcFailure) {
  auto snapshot = sample_snapshot();
  save_snapshot_file(path_, snapshot);

  // Simulate bit rot / a torn write in the vector payload, past the
  // structured header: without the CRC this would restore silently.
  auto bytes = read_file(path_);
  ASSERT_GT(bytes.size(), 100u);
  bytes[90] ^= 0x01;
  const auto result = restore_bitmap_filter_checked(bytes);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error, SnapshotRestoreError::kCorruptCrc);
  EXPECT_STREQ(snapshot_restore_error_name(result.error), "corrupt-crc");
}

TEST_F(FaultRecovery, EveryPayloadByteIsCovered) {
  const auto base = sample_snapshot();
  Rng rng{77};
  for (int trial = 0; trial < 200; ++trial) {
    auto bytes = base;
    // Flip one random bit anywhere after the magic/version prefix.
    const std::size_t i = 8 + rng.next_below(bytes.size() - 8);
    bytes[i] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    const auto result = restore_bitmap_filter_checked(bytes);
    ASSERT_FALSE(result.ok()) << "byte " << i;
  }
}

}  // namespace
}  // namespace upbound
