#include "util/time.h"

#include <gtest/gtest.h>

namespace upbound {
namespace {

TEST(Duration, FactoryUnitsAgree) {
  EXPECT_EQ(Duration::usec(1'000'000), Duration::sec(1.0));
  EXPECT_EQ(Duration::msec(1000), Duration::sec(1.0));
  EXPECT_EQ(Duration::minutes(2), Duration::sec(120.0));
  EXPECT_EQ(Duration::hours(1), Duration::minutes(60));
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::sec(1.5);
  const Duration b = Duration::msec(500);
  EXPECT_EQ((a + b).to_sec(), 2.0);
  EXPECT_EQ((a - b).to_sec(), 1.0);
  EXPECT_EQ((a * 2).to_sec(), 3.0);
  EXPECT_EQ((a / 3).count_usec(), 500'000);
  EXPECT_DOUBLE_EQ(a / b, 3.0);
  EXPECT_EQ((-a).count_usec(), -1'500'000);
}

TEST(Duration, CompoundAssignment) {
  Duration d = Duration::sec(1.0);
  d += Duration::sec(0.5);
  EXPECT_DOUBLE_EQ(d.to_sec(), 1.5);
  d -= Duration::sec(1.0);
  EXPECT_DOUBLE_EQ(d.to_sec(), 0.5);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(Duration::msec(999), Duration::sec(1.0));
  EXPECT_GT(Duration::minutes(1), Duration::sec(59.9));
  EXPECT_LE(Duration::usec(0), Duration{});
  EXPECT_TRUE(Duration{}.is_zero());
  EXPECT_TRUE((Duration::usec(0) - Duration::usec(1)).is_negative());
}

TEST(Duration, ScaleByDouble) {
  EXPECT_EQ((Duration::sec(10.0) * 0.5).to_sec(), 5.0);
}

TEST(Duration, ToStringPicksUnit) {
  EXPECT_EQ(Duration::usec(12).to_string(), "12us");
  EXPECT_NE(Duration::msec(3).to_string().find("ms"), std::string::npos);
  EXPECT_NE(Duration::sec(45.84).to_string().find("s"), std::string::npos);
}

TEST(SimTime, OriginAndOffsets) {
  const SimTime t0 = SimTime::origin();
  EXPECT_EQ(t0.usec(), 0);
  const SimTime t1 = t0 + Duration::sec(2.5);
  EXPECT_DOUBLE_EQ(t1.sec(), 2.5);
  EXPECT_EQ(t1 - t0, Duration::sec(2.5));
  EXPECT_EQ(t1 - Duration::sec(2.5), t0);
}

TEST(SimTime, InfiniteOrdersAfterEverything) {
  EXPECT_LT(SimTime::from_sec(1e12), SimTime::infinite());
}

TEST(SimTime, CompoundAdd) {
  SimTime t = SimTime::from_sec(1.0);
  t += Duration::sec(1.0);
  EXPECT_DOUBLE_EQ(t.sec(), 2.0);
}

TEST(SimTime, RoundTripUsec) {
  const SimTime t = SimTime::from_usec(123456789);
  EXPECT_EQ(t.usec(), 123456789);
  EXPECT_DOUBLE_EQ(t.sec(), 123.456789);
}

}  // namespace
}  // namespace upbound
