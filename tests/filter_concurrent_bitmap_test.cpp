#include "filter/concurrent_bitmap.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "net/packet_batch.h"
#include "util/rng.h"

namespace upbound {
namespace {

BitmapFilterConfig small_config() {
  BitmapFilterConfig config;
  config.log2_bits = 16;
  config.vector_count = 4;
  config.hash_count = 3;
  config.rotate_interval = Duration::sec(5.0);
  return config;
}

FiveTuple tuple_n(std::uint32_t n) {
  return FiveTuple{Protocol::kTcp, Ipv4Addr{0x0a000000u + n},
                   static_cast<std::uint16_t>(1024 + n % 60000),
                   Ipv4Addr{0x3d000000u + n * 2654435761u},
                   static_cast<std::uint16_t>(80 + n % 40000)};
}

PacketRecord pkt_of(const FiveTuple& t, double t_sec = 0.0) {
  PacketRecord pkt;
  pkt.timestamp = SimTime::from_sec(t_sec);
  pkt.tuple = t;
  return pkt;
}

TEST(ConcurrentBitmap, SingleThreadSemanticsMatchSequentialFilter) {
  // Identical config and seed: decisions must agree with BitmapFilter on
  // a random single-threaded workload.
  BitmapFilter sequential{small_config()};
  ConcurrentBitmapFilter concurrent{small_config()};
  Rng rng{5};
  double t = 0.0;
  for (int step = 0; step < 20'000; ++step) {
    t += rng.exponential(0.01);
    const SimTime now = SimTime::from_sec(t);
    sequential.advance_time(now);
    concurrent.advance_time(now);
    const FiveTuple tuple = tuple_n(rng.next_below(500));
    if (rng.next_bool(0.5)) {
      sequential.record_outbound(pkt_of(tuple, t));
      concurrent.record_outbound(pkt_of(tuple, t));
    } else {
      PacketRecord probe = pkt_of(tuple, t);
      probe.tuple = probe.tuple.inverse();
      ASSERT_EQ(sequential.admits_inbound(probe),
                concurrent.admits_inbound(probe))
          << "divergence at t=" << t;
    }
  }
  EXPECT_EQ(sequential.rotations(), concurrent.rotations());
}

TEST(ConcurrentBitmap, ParallelMarkersAllVisible) {
  ConcurrentBitmapFilter filter{small_config()};
  constexpr int kThreads = 8;
  constexpr std::uint32_t kPerThread = 2'000;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&filter, w] {
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        filter.record_outbound(
            pkt_of(tuple_n(static_cast<std::uint32_t>(w) * kPerThread + i)));
      }
    });
  }
  for (auto& worker : workers) worker.join();

  // Every mark from every thread must be visible.
  for (std::uint32_t n = 0; n < kThreads * kPerThread; ++n) {
    PacketRecord probe = pkt_of(tuple_n(n));
    probe.tuple = probe.tuple.inverse();
    ASSERT_TRUE(filter.admits_inbound(probe)) << "lost mark " << n;
  }
}

TEST(ConcurrentBitmap, ReadersWritersAndRotatorDoNotLoseFreshMarks) {
  ConcurrentBitmapFilter filter{small_config()};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> false_negatives{0};
  std::atomic<double> sim_now{0.0};

  // Rotator: advances simulated time continuously.
  std::thread rotator{[&] {
    double t = 0.0;
    while (!stop.load(std::memory_order_relaxed)) {
      t += 0.37;
      sim_now.store(t, std::memory_order_relaxed);
      filter.advance_time(SimTime::from_sec(t));
      std::this_thread::yield();
    }
  }};

  // Workers: mark then immediately probe their own tuples; a mark made
  // "now" is within Te by construction, so a miss is a real lost update
  // (modulo the documented one-rotation race, which cannot happen here
  // because the probe follows the mark within far less than dt).
  std::vector<std::thread> workers;
  for (int w = 0; w < 6; ++w) {
    workers.emplace_back([&, w] {
      Rng rng{static_cast<std::uint64_t>(w) + 100};
      while (!stop.load(std::memory_order_relaxed)) {
        const FiveTuple tuple =
            tuple_n(static_cast<std::uint32_t>(rng.next_below(100'000)));
        const double t = sim_now.load(std::memory_order_relaxed);
        filter.record_outbound(pkt_of(tuple, t));
        PacketRecord probe = pkt_of(tuple, t);
        probe.tuple = probe.tuple.inverse();
        if (!filter.admits_inbound(probe)) {
          false_negatives.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& worker : workers) worker.join();
  rotator.join();

  // Mark->probe spans at most a few microseconds; a rotation in between
  // could legitimately eat the mark only if it were the k-th rotation
  // since marking -- impossible here. Allow a whisper of slack for the
  // explicitly documented publish-then-clear straggler window.
  EXPECT_LE(false_negatives.load(), 2u);
  EXPECT_GT(filter.rotations(), 0u);
}

TEST(ConcurrentBitmap, ParallelBatchMarkersAllVisibleToBatchLookup) {
  // The batch entry points keep their hash scratch on the stack, so
  // concurrent batch calls from many threads must neither race nor lose
  // marks. Threads mark disjoint tuple ranges in chunks through
  // record_outbound_batch; afterwards a batched lookup must admit all.
  ConcurrentBitmapFilter filter{small_config()};
  constexpr int kThreads = 8;
  constexpr std::uint32_t kPerThread = 2'000;
  constexpr std::size_t kChunk = 64;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&filter, w] {
      Trace chunk;
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        chunk.push_back(
            pkt_of(tuple_n(static_cast<std::uint32_t>(w) * kPerThread + i)));
        if (chunk.size() == kChunk || i + 1 == kPerThread) {
          filter.record_outbound_batch(PacketBatch{chunk});
          chunk.clear();
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();

  Trace probes;
  for (std::uint32_t n = 0; n < kThreads * kPerThread; ++n) {
    PacketRecord probe = pkt_of(tuple_n(n));
    probe.tuple = probe.tuple.inverse();
    probes.push_back(probe);
  }
  std::unique_ptr<bool[]> admits{new bool[probes.size()]};
  filter.admits_inbound_batch(PacketBatch{probes},
                              std::span<bool>{admits.get(), probes.size()});
  for (std::size_t n = 0; n < probes.size(); ++n) {
    ASSERT_TRUE(admits[n]) << "lost batched mark " << n;
  }
}

TEST(ConcurrentBitmap, StorageMatchesSequential) {
  EXPECT_EQ(ConcurrentBitmapFilter{small_config()}.storage_bytes(),
            BitmapFilter{small_config()}.storage_bytes());
}

TEST(ConcurrentBitmap, InvalidConfigRejected) {
  BitmapFilterConfig config;
  config.vector_count = 1;
  EXPECT_THROW(ConcurrentBitmapFilter{config}, std::invalid_argument);
}

}  // namespace
}  // namespace upbound
