// Tests for the two comparator filters: the naive exact-timer solution and
// the SPI baseline.
#include <gtest/gtest.h>

#include "filter/naive_filter.h"
#include "filter/spi_filter.h"

namespace upbound {
namespace {

FiveTuple conn(std::uint16_t sport = 40000, std::uint16_t dport = 80) {
  return FiveTuple{Protocol::kTcp, Ipv4Addr{10, 0, 0, 1}, sport,
                   Ipv4Addr{8, 8, 8, 8}, dport};
}

PacketRecord pkt_out(const FiveTuple& t, double t_sec, TcpFlags flags = {}) {
  PacketRecord pkt;
  pkt.timestamp = SimTime::from_sec(t_sec);
  pkt.tuple = t;
  pkt.flags = flags;
  return pkt;
}

PacketRecord pkt_in(const FiveTuple& t, double t_sec, TcpFlags flags = {}) {
  PacketRecord pkt;
  pkt.timestamp = SimTime::from_sec(t_sec);
  pkt.tuple = t.inverse();
  pkt.flags = flags;
  return pkt;
}

// ---------------- NaiveFilter ----------------

TEST(NaiveFilter, AdmitsWithinTimeout) {
  NaiveFilter filter{{.state_timeout = Duration::sec(20.0)}};
  filter.record_outbound(pkt_out(conn(), 0.0));
  EXPECT_TRUE(filter.admits_inbound(pkt_in(conn(), 19.99)));
}

TEST(NaiveFilter, RejectsAfterTimeout) {
  NaiveFilter filter{{.state_timeout = Duration::sec(20.0)}};
  filter.record_outbound(pkt_out(conn(), 0.0));
  EXPECT_FALSE(filter.admits_inbound(pkt_in(conn(), 20.0)));
}

TEST(NaiveFilter, RejectsUnknownConnection) {
  NaiveFilter filter{{}};
  filter.record_outbound(pkt_out(conn(1000), 0.0));
  EXPECT_FALSE(filter.admits_inbound(pkt_in(conn(1001), 0.1)));
}

TEST(NaiveFilter, OutboundRefreshResetsTimer) {
  NaiveFilter filter{{.state_timeout = Duration::sec(20.0)}};
  filter.record_outbound(pkt_out(conn(), 0.0));
  filter.record_outbound(pkt_out(conn(), 15.0));
  EXPECT_TRUE(filter.admits_inbound(pkt_in(conn(), 30.0)));
  EXPECT_FALSE(filter.admits_inbound(pkt_in(conn(), 35.0)));
}

TEST(NaiveFilter, AdvanceTimeEvictsExpiredPairs) {
  NaiveFilter filter{{.state_timeout = Duration::sec(20.0)}};
  for (std::uint16_t p = 1000; p < 1100; ++p) {
    filter.record_outbound(pkt_out(conn(p), 0.0));
  }
  EXPECT_EQ(filter.active_pairs(), 100u);
  filter.advance_time(SimTime::from_sec(10.0));
  EXPECT_EQ(filter.active_pairs(), 100u);
  filter.advance_time(SimTime::from_sec(20.0));
  EXPECT_EQ(filter.active_pairs(), 0u);
}

TEST(NaiveFilter, RefreshedPairSurvivesSweep) {
  NaiveFilter filter{{.state_timeout = Duration::sec(20.0)}};
  filter.record_outbound(pkt_out(conn(), 0.0));
  filter.record_outbound(pkt_out(conn(), 10.0));
  filter.advance_time(SimTime::from_sec(20.0));  // first entry expires
  EXPECT_EQ(filter.active_pairs(), 1u);
  EXPECT_TRUE(filter.admits_inbound(pkt_in(conn(), 25.0)));
  filter.advance_time(SimTime::from_sec(30.0));
  EXPECT_EQ(filter.active_pairs(), 0u);
}

TEST(NaiveFilter, StorageGrowsWithActivePairs) {
  NaiveFilter filter{{}};
  const std::size_t empty = filter.storage_bytes();
  for (std::uint16_t p = 1000; p < 2000; ++p) {
    filter.record_outbound(pkt_out(conn(p), 0.0));
  }
  EXPECT_GT(filter.storage_bytes(), empty + 1000 * sizeof(FiveTuple));
}

TEST(NaiveFilter, HolePunchingMode) {
  NaiveFilter filter{{.state_timeout = Duration::sec(20.0),
                      .key_mode = KeyMode::kHolePunching}};
  filter.record_outbound(pkt_out(conn(40000, 6881), 0.0));
  // Inbound from another port of the same host is admitted.
  FiveTuple from_other_port = conn(40000, 9999);
  EXPECT_TRUE(filter.admits_inbound(pkt_in(from_other_port, 1.0)));
  // Different external host still rejected.
  FiveTuple other = conn(40000, 6881);
  other.dst_addr = Ipv4Addr{9, 9, 9, 9};
  EXPECT_FALSE(filter.admits_inbound(pkt_in(other, 1.0)));
}

TEST(NaiveFilter, InvalidTimeoutThrows) {
  EXPECT_THROW(NaiveFilter({.state_timeout = Duration::sec(0.0)}),
               std::invalid_argument);
}

TEST(NaiveFilter, UdpTracked) {
  NaiveFilter filter{{}};
  FiveTuple u = conn();
  u.protocol = Protocol::kUdp;
  filter.record_outbound(pkt_out(u, 0.0));
  EXPECT_TRUE(filter.admits_inbound(pkt_in(u, 1.0)));
  // The TCP tuple with identical endpoints is distinct state.
  EXPECT_FALSE(filter.admits_inbound(pkt_in(conn(), 1.0)));
}

// ---------------- SpiFilter ----------------

TEST(SpiFilter, OutboundCreatesFlowInboundAdmitted) {
  SpiFilter filter{{}};
  filter.record_outbound(pkt_out(conn(), 0.0, {.syn = true}));
  EXPECT_TRUE(filter.admits_inbound(pkt_in(conn(), 0.05, {.syn = true,
                                                          .ack = true})));
  EXPECT_EQ(filter.tracked_flows(), 1u);
  EXPECT_EQ(filter.flows_created(), 1u);
}

TEST(SpiFilter, UnsolicitedInboundRejected) {
  SpiFilter filter{{}};
  EXPECT_FALSE(filter.admits_inbound(pkt_in(conn(), 0.0, {.syn = true})));
}

TEST(SpiFilter, IdleTimeoutExpiresFlow) {
  SpiFilter filter{{.idle_timeout = Duration::sec(240.0)}};
  filter.record_outbound(pkt_out(conn(), 0.0, {.syn = true}));
  // Expired on access even before a sweep runs.
  EXPECT_FALSE(filter.admits_inbound(pkt_in(conn(), 240.0)));
  EXPECT_EQ(filter.tracked_flows(), 0u);
}

TEST(SpiFilter, TrafficInEitherDirectionRefreshesIdleTimer) {
  SpiFilter filter{{.idle_timeout = Duration::sec(240.0)}};
  filter.record_outbound(pkt_out(conn(), 0.0, {.syn = true}));
  EXPECT_TRUE(filter.admits_inbound(pkt_in(conn(), 200.0)));  // refresh
  EXPECT_TRUE(filter.admits_inbound(pkt_in(conn(), 439.0)));  // alive
  EXPECT_FALSE(filter.admits_inbound(pkt_in(conn(), 680.0)));
}

TEST(SpiFilter, FinClosesFlowImmediatelyWithZeroLinger) {
  SpiFilter filter{{.close_linger = Duration::sec(0.0)}};
  filter.record_outbound(pkt_out(conn(), 0.0, {.syn = true}));
  filter.record_outbound(pkt_out(conn(), 1.0, {.ack = true, .fin = true}));
  EXPECT_EQ(filter.tracked_flows(), 0u);
  EXPECT_FALSE(filter.admits_inbound(pkt_in(conn(), 1.1)));
}

TEST(SpiFilter, RstFromOutsideClosesFlow) {
  SpiFilter filter{{.close_linger = Duration::sec(0.0)}};
  filter.record_outbound(pkt_out(conn(), 0.0, {.syn = true}));
  // The RST itself belongs to the tracked flow and passes...
  EXPECT_TRUE(filter.admits_inbound(pkt_in(conn(), 0.5, {.rst = true})));
  // ...but the flow is gone afterwards.
  EXPECT_FALSE(filter.admits_inbound(pkt_in(conn(), 0.6)));
}

TEST(SpiFilter, CloseLingerKeepsFlowBriefly) {
  SpiFilter filter{{.close_linger = Duration::sec(2.0)}};
  filter.record_outbound(pkt_out(conn(), 0.0, {.syn = true}));
  filter.record_outbound(pkt_out(conn(), 1.0, {.fin = true}));
  EXPECT_TRUE(filter.admits_inbound(pkt_in(conn(), 2.5)));   // still lingering
  EXPECT_FALSE(filter.admits_inbound(pkt_in(conn(), 3.1)));  // gone
}

TEST(SpiFilter, StrayFinDoesNotCreateState) {
  SpiFilter filter{{}};
  filter.record_outbound(pkt_out(conn(), 0.0, {.fin = true}));
  EXPECT_EQ(filter.tracked_flows(), 0u);
  EXPECT_EQ(filter.flows_created(), 0u);
}

TEST(SpiFilter, SweepReclaimsIdleFlows) {
  SpiFilter filter{{.idle_timeout = Duration::sec(240.0)}};
  for (std::uint16_t p = 1000; p < 1500; ++p) {
    filter.record_outbound(pkt_out(conn(p), 0.0, {.syn = true}));
  }
  EXPECT_EQ(filter.tracked_flows(), 500u);
  filter.advance_time(SimTime::from_sec(239.0));
  EXPECT_EQ(filter.tracked_flows(), 500u);
  filter.advance_time(SimTime::from_sec(240.0));
  EXPECT_EQ(filter.tracked_flows(), 0u);
  EXPECT_EQ(filter.flows_expired(), 500u);
}

TEST(SpiFilter, StorageScalesWithFlows) {
  // The O(n) storage the paper calls out as the SPI weakness.
  SpiFilter filter{{}};
  filter.advance_time(SimTime::origin());
  const std::size_t base = filter.storage_bytes();
  for (std::uint32_t i = 0; i < 10'000; ++i) {
    FiveTuple t = conn(static_cast<std::uint16_t>(1024 + (i % 60000)));
    t.src_addr = Ipv4Addr{0x0a000000u + i / 60000};
    t.dst_addr = Ipv4Addr{0x08080808u + i};
    filter.record_outbound(pkt_out(t, 0.0, {.syn = true}));
  }
  EXPECT_GT(filter.storage_bytes(), base + 10'000 * sizeof(FiveTuple));
}

TEST(SpiFilter, UdpFlowsTracked) {
  SpiFilter filter{{}};
  FiveTuple u = conn(50000, 53);
  u.protocol = Protocol::kUdp;
  filter.record_outbound(pkt_out(u, 0.0));
  EXPECT_TRUE(filter.admits_inbound(pkt_in(u, 0.02)));
  EXPECT_EQ(filter.tracked_flows(), 1u);
}

TEST(SpiFilter, InvalidConfigThrows) {
  EXPECT_THROW(SpiFilter({.idle_timeout = Duration::sec(0.0)}),
               std::invalid_argument);
  EXPECT_THROW(SpiFilter({.close_linger = Duration::sec(-1.0)}),
               std::invalid_argument);
}

TEST(SpiFilter, ReopenAfterCloseCreatesFreshFlow) {
  SpiFilter filter{{.close_linger = Duration::sec(0.0)}};
  filter.record_outbound(pkt_out(conn(), 0.0, {.syn = true}));
  filter.record_outbound(pkt_out(conn(), 1.0, {.fin = true}));
  EXPECT_EQ(filter.tracked_flows(), 0u);
  filter.record_outbound(pkt_out(conn(), 2.0, {.syn = true}));
  EXPECT_EQ(filter.tracked_flows(), 1u);
  EXPECT_TRUE(filter.admits_inbound(pkt_in(conn(), 2.1)));
  EXPECT_EQ(filter.flows_created(), 2u);
}

}  // namespace
}  // namespace upbound
