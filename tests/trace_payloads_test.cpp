// Payload synthesizers must emit bytes the Table 1 signatures recognize.
#include <gtest/gtest.h>

#include "rex/regex.h"
#include "trace/payloads.h"

namespace upbound {
namespace {

using payloads::Bytes;

std::span<const std::uint8_t> as_span(const Bytes& b) {
  return {b.data(), b.size()};
}

TEST(Payloads, BittorrentHandshakeShape) {
  Rng rng{1};
  const Bytes hs = payloads::bittorrent_handshake(rng);
  ASSERT_EQ(hs.size(), 68u);
  EXPECT_EQ(hs[0], 0x13);
  EXPECT_EQ(std::string(hs.begin() + 1, hs.begin() + 20),
            "BitTorrent protocol");
}

TEST(Payloads, BittorrentHandshakeMatchesSignature) {
  Rng rng{2};
  const rex::Regex sig{"^\\x13bittorrent protocol", {.ignore_case = true}};
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(sig.search(as_span(payloads::bittorrent_handshake(rng))));
  }
}

TEST(Payloads, ScrapeRequestMatchesSignature) {
  Rng rng{3};
  const rex::Regex sig{"^get /scrape\\?info_hash=", {.ignore_case = true}};
  EXPECT_TRUE(sig.search(as_span(payloads::bittorrent_scrape_request(rng))));
}

TEST(Payloads, EdonkeyHelloMatchesMarker) {
  Rng rng{4};
  const rex::Regex sig{"^[\\xc5\\xd4\\xe3-\\xe5]"};
  const Bytes hello = payloads::edonkey_hello(rng);
  EXPECT_TRUE(sig.search(as_span(hello)));
  EXPECT_EQ(hello[0], 0xe3);
  // Little-endian length field covers the remaining payload.
  const std::uint32_t len = hello[1] | (hello[2] << 8) |
                            (static_cast<std::uint32_t>(hello[3]) << 16) |
                            (static_cast<std::uint32_t>(hello[4]) << 24);
  EXPECT_EQ(len, hello.size() - 5);
}

TEST(Payloads, EdonkeyUdpPingMatchesMarker) {
  Rng rng{5};
  const rex::Regex sig{"^[\\xc5\\xd4\\xe3-\\xe5]"};
  EXPECT_TRUE(sig.search(as_span(payloads::edonkey_udp_ping(rng))));
}

TEST(Payloads, GnutellaHandshakesMatchSignature) {
  const rex::Regex sig{"^gnutella (connect/[012]\\.[0-9]|/[012]\\.[0-9])",
                       {.ignore_case = true}};
  EXPECT_TRUE(sig.search(as_span(payloads::gnutella_connect())));
  const rex::Regex ok{"^gnutella/[012]\\.[0-9] [1-5][0-9][0-9]",
                      {.ignore_case = true}};
  EXPECT_TRUE(ok.search(as_span(payloads::gnutella_ok())));
}

TEST(Payloads, HttpRequestResponseMatchSignatures) {
  const rex::Regex req{
      "^(get|post|head) [\\x09-\\x0d -~]* http/(0\\.9|1\\.0|1\\.1)",
      {.ignore_case = true}};
  EXPECT_TRUE(
      req.search(as_span(payloads::http_get("example.com", "/index.html"))));
  const rex::Regex resp{"^http/(0\\.9|1\\.0|1\\.1) [1-5][0-9][0-9]",
                        {.ignore_case = true}};
  EXPECT_TRUE(resp.search(as_span(payloads::http_response(200, 1234))));
  EXPECT_TRUE(resp.search(as_span(payloads::http_response(404, 0))));
}

TEST(Payloads, HttpResponseAnnouncesContentLength) {
  const Bytes resp = payloads::http_response(200, 98765);
  const std::string text(resp.begin(), resp.end());
  EXPECT_NE(text.find("Content-Length: 98765"), std::string::npos);
}

TEST(Payloads, FtpBannerMatchesSignature) {
  const rex::Regex sig{"^220[\\x09-\\x0d -~]*ftp", {.ignore_case = true}};
  EXPECT_TRUE(sig.search(as_span(payloads::ftp_banner())));
}

TEST(Payloads, FtpPasvResponseEncodesHostPort) {
  const Bytes resp =
      payloads::ftp_pasv_response(Ipv4Addr{192, 0, 2, 17}, 51234);
  const std::string text(resp.begin(), resp.end());
  // 51234 = 200*256 + 34.
  EXPECT_NE(text.find("(192,0,2,17,200,34)"), std::string::npos);
  EXPECT_EQ(text.substr(0, 4), "227 ");
}

TEST(Payloads, FtpPortCommandEncodesHostPort) {
  const Bytes cmd = payloads::ftp_port_command(Ipv4Addr{10, 1, 2, 3}, 256);
  const std::string text(cmd.begin(), cmd.end());
  EXPECT_EQ(text, "PORT 10,1,2,3,1,0\r\n");
}

TEST(Payloads, FtpCommandFormatting) {
  const Bytes with_arg = payloads::ftp_command("USER", "anonymous");
  EXPECT_EQ(std::string(with_arg.begin(), with_arg.end()),
            "USER anonymous\r\n");
  const Bytes bare = payloads::ftp_command("PASV");
  EXPECT_EQ(std::string(bare.begin(), bare.end()), "PASV\r\n");
}

TEST(Payloads, DnsQueryWellFormed) {
  Rng rng{6};
  const Bytes q = payloads::dns_query(rng);
  ASSERT_GT(q.size(), 16u);
  EXPECT_EQ(q[4], 0x00);  // QDCOUNT
  EXPECT_EQ(q[5], 0x01);
  // Terminal bytes: QTYPE A, QCLASS IN.
  EXPECT_EQ(q[q.size() - 4], 0x00);
  EXPECT_EQ(q[q.size() - 3], 0x01);
  EXPECT_EQ(q[q.size() - 2], 0x00);
  EXPECT_EQ(q[q.size() - 1], 0x01);
}

TEST(Payloads, DnsResponseLargerThanQueryWithAnswer) {
  Rng rng{7};
  const Bytes q = payloads::dns_query(rng);
  const Bytes r = payloads::dns_response(rng);
  EXPECT_GT(r.size(), q.size());
  EXPECT_EQ(r[2] & 0x80, 0x80);  // QR bit set
  EXPECT_EQ(r[7], 0x01);         // ANCOUNT
}

TEST(Payloads, DhtQueryMatchesBittorrentSignature) {
  // The Table 1 bittorrent pattern includes the DHT opener d1:ad2:id20:.
  Rng rng{8};
  const rex::Regex sig{"^d1:ad2:id20:"};
  payloads::Bytes out = payloads::from_string("d1:ad2:id20:");
  const payloads::Bytes id = payloads::random_bytes(rng, 20);
  out.insert(out.end(), id.begin(), id.end());
  EXPECT_TRUE(sig.search(as_span(out)));
}

TEST(Payloads, RandomBytesAreSeededAndSized) {
  Rng a{9};
  Rng b{9};
  const Bytes x = payloads::random_bytes(a, 64);
  const Bytes y = payloads::random_bytes(b, 64);
  EXPECT_EQ(x, y);
  EXPECT_EQ(x.size(), 64u);
  Rng c{10};
  EXPECT_NE(payloads::random_bytes(c, 64), x);
}

TEST(Payloads, RandomBytesDoNotMatchP2pSignatures) {
  // Encrypted P2P must evade all Table 1 signatures (that is its point).
  Rng rng{11};
  const rex::Regex bt{"^\\x13bittorrent protocol", {.ignore_case = true}};
  const rex::Regex gn{"^gnutella connect", {.ignore_case = true}};
  int ed_hits = 0;
  const rex::Regex ed{"^[\\xc5\\xd4\\xe3-\\xe5]"};
  for (int i = 0; i < 200; ++i) {
    const Bytes r = payloads::random_bytes(rng, 64);
    EXPECT_FALSE(bt.search(as_span(r)));
    EXPECT_FALSE(gn.search(as_span(r)));
    if (ed.search(as_span(r))) ++ed_hits;
  }
  // The eDonkey marker is a 4/256 first-byte check; random data hits it
  // occasionally but rarely.
  EXPECT_LT(ed_hits, 12);
}

}  // namespace
}  // namespace upbound
