// Tests for RED drop policy (Eq. 1), the bandwidth meter, and the
// blocked-connection store.
#include <gtest/gtest.h>

#include "filter/bandwidth_meter.h"
#include "filter/blocklist.h"
#include "filter/drop_policy.h"

namespace upbound {
namespace {

// ---------------- RedDropPolicy (paper Eq. 1) ----------------

TEST(RedDropPolicy, ZeroBelowLow) {
  RedDropPolicy red{50e6, 100e6};
  EXPECT_DOUBLE_EQ(red.drop_probability(0.0), 0.0);
  EXPECT_DOUBLE_EQ(red.drop_probability(49.9e6), 0.0);
  EXPECT_DOUBLE_EQ(red.drop_probability(50e6), 0.0);  // b <= L
}

TEST(RedDropPolicy, OneAboveHigh) {
  RedDropPolicy red{50e6, 100e6};
  EXPECT_DOUBLE_EQ(red.drop_probability(100e6), 1.0);  // b >= H
  EXPECT_DOUBLE_EQ(red.drop_probability(500e6), 1.0);
}

TEST(RedDropPolicy, LinearRampBetween) {
  RedDropPolicy red{50e6, 100e6};
  EXPECT_DOUBLE_EQ(red.drop_probability(75e6), 0.5);
  EXPECT_DOUBLE_EQ(red.drop_probability(60e6), 0.2);
  EXPECT_DOUBLE_EQ(red.drop_probability(95e6), 0.9);
}

TEST(RedDropPolicy, RampIsMonotone) {
  RedDropPolicy red{10e6, 20e6};
  double prev = -1.0;
  for (double b = 0; b <= 30e6; b += 1e6) {
    const double p = red.drop_probability(b);
    EXPECT_GE(p, prev);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST(RedDropPolicy, InvalidThresholdsThrow) {
  EXPECT_THROW(RedDropPolicy(100e6, 50e6), std::invalid_argument);
  EXPECT_THROW(RedDropPolicy(50e6, 50e6), std::invalid_argument);
  EXPECT_THROW(RedDropPolicy(-1.0, 50e6), std::invalid_argument);
}

TEST(ConstantDropPolicy, FixedProbability) {
  ConstantDropPolicy p{0.25};
  EXPECT_DOUBLE_EQ(p.drop_probability(0.0), 0.25);
  EXPECT_DOUBLE_EQ(p.drop_probability(1e12), 0.25);
  EXPECT_THROW(ConstantDropPolicy{1.5}, std::invalid_argument);
  EXPECT_THROW(ConstantDropPolicy{-0.1}, std::invalid_argument);
}

// ---------------- BandwidthMeter ----------------

TEST(BandwidthMeter, SimpleRate) {
  BandwidthMeter meter{Duration::sec(1.0), 10};
  // 125 KB in one second = 1 Mbps.
  for (int i = 0; i < 10; ++i) {
    meter.add(SimTime::from_sec(i * 0.1), 12'500);
  }
  EXPECT_DOUBLE_EQ(meter.bits_per_sec(SimTime::from_sec(0.95)), 1e6);
}

TEST(BandwidthMeter, OldTrafficAges) {
  BandwidthMeter meter{Duration::sec(1.0), 10};
  meter.add(SimTime::from_sec(0.0), 100'000);
  EXPECT_GT(meter.bits_per_sec(SimTime::from_sec(0.5)), 0.0);
  // After the window passes, the burst no longer counts.
  EXPECT_DOUBLE_EQ(meter.bits_per_sec(SimTime::from_sec(1.5)), 0.0);
}

TEST(BandwidthMeter, PartialAging) {
  BandwidthMeter meter{Duration::sec(1.0), 10};
  meter.add(SimTime::from_sec(0.05), 1000);
  meter.add(SimTime::from_sec(0.95), 1000);
  // At t=1.04 the first slot (t in [0, 0.1)) has expired, the second has
  // not.
  const double rate = meter.bits_per_sec(SimTime::from_sec(1.04));
  EXPECT_DOUBLE_EQ(rate, 1000 * 8.0);
}

TEST(BandwidthMeter, LongGapZeroesEverything) {
  BandwidthMeter meter{Duration::sec(1.0), 10};
  for (int i = 0; i < 100; ++i) meter.add(SimTime::from_sec(i * 0.01), 500);
  EXPECT_GT(meter.bits_per_sec(SimTime::from_sec(1.0)), 0.0);
  EXPECT_DOUBLE_EQ(meter.bits_per_sec(SimTime::from_sec(100.0)), 0.0);
}

TEST(BandwidthMeter, AccumulatesWithinSlot) {
  BandwidthMeter meter{Duration::sec(1.0), 10};
  meter.add(SimTime::from_sec(0.01), 100);
  meter.add(SimTime::from_sec(0.02), 100);
  meter.add(SimTime::from_sec(0.03), 100);
  EXPECT_DOUBLE_EQ(meter.bits_per_sec(SimTime::from_sec(0.05)), 300 * 8.0);
}

TEST(BandwidthMeter, InvalidConfigThrows) {
  EXPECT_THROW(BandwidthMeter(Duration::sec(0.0), 10), std::invalid_argument);
  EXPECT_THROW(BandwidthMeter(Duration::sec(1.0), 0), std::invalid_argument);
  // 1 s not divisible into 7 equal microsecond slots.
  EXPECT_THROW(BandwidthMeter(Duration::usec(1'000'003), 7),
               std::invalid_argument);
}

TEST(BandwidthMeter, NegativeTimestampsUseFloorSlots) {
  // Regression: slot indexing used truncating division/modulo, which maps
  // pre-origin times (negative usec, legal SimTime values) to the wrong
  // slot -- e.g. t=-0.05s truncates to slot 0 alongside t=+0.05s -- and
  // produces negative (out-of-range) array indexes in add(). With floor
  // semantics the window behaves identically on both sides of the origin.
  BandwidthMeter meter{Duration::sec(1.0), 10};
  meter.add(SimTime::from_sec(-2.0), 100'000);
  // Still inside the 1 s window at t=-1.5...
  EXPECT_GT(meter.bits_per_sec(SimTime::from_sec(-1.5)), 0.0);
  // ...fully aged out once the window has passed, before the origin.
  EXPECT_DOUBLE_EQ(meter.bits_per_sec(SimTime::from_sec(-0.5)), 0.0);
}

TEST(BandwidthMeter, CrossOriginWindowAgesSlotBySlot) {
  BandwidthMeter meter{Duration::sec(1.0), 10};
  meter.add(SimTime::from_sec(-0.55), 1000);  // slot [-0.6, -0.5)
  meter.add(SimTime::from_sec(-0.05), 1000);  // slot [-0.1, 0.0)
  // At t=0.04 both contributions are inside the window.
  EXPECT_DOUBLE_EQ(meter.bits_per_sec(SimTime::from_sec(0.04)), 2000 * 8.0);
  // At t=0.44 the first slot has expired, the second has not.
  EXPECT_DOUBLE_EQ(meter.bits_per_sec(SimTime::from_sec(0.44)), 1000 * 8.0);
  // At t=0.94 everything pre-origin has aged out.
  EXPECT_DOUBLE_EQ(meter.bits_per_sec(SimTime::from_sec(0.94)), 0.0);
}

TEST(BandwidthMeter, RegressedTimestampsClampToHighWater) {
  // Regression: a backwards timestamp (clock fault, merge artifact) used
  // to rewind the window cursor, which could misattribute bytes to slots
  // already aged out or spuriously zero live slots. Regressions now clamp
  // to the high-water mark and are counted.
  BandwidthMeter meter{Duration::sec(1.0), 10};
  meter.add(SimTime::from_sec(5.0), 1000);
  EXPECT_EQ(meter.clamp_events(), 0u);

  meter.add(SimTime::from_sec(4.2), 500);  // regressed: lands at t=5.0
  EXPECT_EQ(meter.clamp_events(), 1u);
  EXPECT_DOUBLE_EQ(meter.bits_per_sec(SimTime::from_sec(5.0)), 1500 * 8.0);

  // A regressed read also clamps instead of aging the window backwards,
  // but is NOT counted: only data-bearing add() regressions are the clock
  // anomaly the health monitor watches for (live mode polls the meter on
  // a tick cadence, and a poll racing a just-metered packet must not
  // register as a fault).
  EXPECT_DOUBLE_EQ(meter.bits_per_sec(SimTime::from_sec(1.0)), 1500 * 8.0);
  EXPECT_EQ(meter.clamp_events(), 1u);

  // Monotonic progress resumes from the high-water mark, not the
  // regressed value: the traffic ages out on the original schedule.
  EXPECT_DOUBLE_EQ(meter.bits_per_sec(SimTime::from_sec(6.5)), 0.0);
}

TEST(BandwidthMeter, AdvanceAgesWithoutBooking) {
  BandwidthMeter meter{Duration::sec(1.0), 10};
  meter.add(SimTime::from_sec(0.0), 1000);
  // Mid-window advance keeps the traffic; regressed advance is a silent
  // clamp; past-window advance decays everything out.
  meter.advance(SimTime::from_sec(0.5));
  EXPECT_DOUBLE_EQ(meter.bits_per_sec(SimTime::from_sec(0.5)), 1000 * 8.0);
  meter.advance(SimTime::from_sec(0.2));
  EXPECT_EQ(meter.clamp_events(), 0u);
  meter.advance(SimTime::from_sec(2.0));
  EXPECT_DOUBLE_EQ(meter.bits_per_sec(SimTime::from_sec(2.0)), 0.0);
  // A later add() must land in the advanced head slot, not a stale one.
  meter.add(SimTime::from_sec(2.0), 500);
  EXPECT_DOUBLE_EQ(meter.bits_per_sec(SimTime::from_sec(2.0)), 500 * 8.0);
}

TEST(BandwidthMeter, FirstCallNeverCountsAsClamp) {
  BandwidthMeter meter{Duration::sec(1.0), 10};
  // Pre-origin first touch: nothing to clamp against yet.
  meter.add(SimTime::from_sec(-3.0), 100);
  EXPECT_EQ(meter.clamp_events(), 0u);
}

TEST(BandwidthMeter, NegativeMirrorsPositiveBehaviour) {
  // The same offered pattern shifted by a whole number of windows must
  // yield the same estimates, whether it straddles the origin or not.
  BandwidthMeter positive{Duration::sec(1.0), 10};
  BandwidthMeter negative{Duration::sec(1.0), 10};
  const Duration shift = Duration::sec(5.0);
  for (int i = 0; i < 30; ++i) {
    const SimTime t = SimTime::from_sec(i * 0.1);
    positive.add(t, 2500);
    negative.add(t - shift, 2500);
  }
  for (double probe = 0.05; probe < 3.0; probe += 0.3) {
    EXPECT_DOUBLE_EQ(
        positive.bits_per_sec(SimTime::from_sec(probe)),
        negative.bits_per_sec(SimTime::from_sec(probe) - shift))
        << "probe=" << probe;
  }
}

TEST(BandwidthMeter, SteadyStateMatchesOfferedLoad) {
  BandwidthMeter meter{Duration::sec(2.0), 20};
  // Offer 8 Mbps for 10 seconds in 10 ms packets of 10 KB.
  for (int i = 0; i < 1000; ++i) {
    meter.add(SimTime::from_sec(i * 0.01), 10'000);
  }
  const double rate = meter.bits_per_sec(SimTime::from_sec(9.99));
  EXPECT_NEAR(rate, 8e6, 8e6 * 0.02);
}

// ---------------- BlockList ----------------

FiveTuple sigma() {
  return FiveTuple{Protocol::kTcp, Ipv4Addr{61, 1, 1, 1}, 12345,
                   Ipv4Addr{140, 112, 30, 5}, 6881};
}

TEST(BlockList, BlocksBothDirections) {
  BlockList list;
  list.block(sigma(), SimTime::origin());
  EXPECT_TRUE(list.is_blocked(sigma(), SimTime::from_sec(1.0)));
  EXPECT_TRUE(list.is_blocked(sigma().inverse(), SimTime::from_sec(1.0)));
  EXPECT_EQ(list.size(), 1u);
}

TEST(BlockList, UnrelatedTupleNotBlocked) {
  BlockList list;
  list.block(sigma(), SimTime::origin());
  FiveTuple other = sigma();
  other.src_port = 54321;
  EXPECT_FALSE(list.is_blocked(other, SimTime::from_sec(1.0)));
}

TEST(BlockList, DoubleBlockCountsOnce) {
  BlockList list;
  list.block(sigma(), SimTime::origin());
  list.block(sigma().inverse(), SimTime::from_sec(1.0));
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.total_blocked(), 1u);
}

TEST(BlockList, ZeroTtlNeverExpires) {
  BlockList list{Duration{}};
  list.block(sigma(), SimTime::origin());
  EXPECT_TRUE(list.is_blocked(sigma(), SimTime::from_sec(1e6)));
}

TEST(BlockList, TtlExpiresSilentPeers) {
  BlockList list{Duration::sec(60.0)};
  list.block(sigma(), SimTime::origin());
  EXPECT_TRUE(list.is_blocked(sigma(), SimTime::from_sec(59.0)));
  EXPECT_FALSE(list.is_blocked(sigma(), SimTime::from_sec(125.0)));
  EXPECT_EQ(list.size(), 0u);
}

TEST(BlockList, RetriesKeepBlockAlive) {
  BlockList list{Duration::sec(60.0)};
  list.block(sigma(), SimTime::origin());
  // A retry every 30 s keeps refreshing the TTL.
  for (int i = 1; i <= 10; ++i) {
    EXPECT_TRUE(list.is_blocked(sigma(), SimTime::from_sec(i * 30.0)));
  }
  // Silence for > TTL finally clears it.
  EXPECT_FALSE(list.is_blocked(sigma(), SimTime::from_sec(10 * 30.0 + 61.0)));
}

TEST(BlockList, TotalBlockedCountsDistinctConnections) {
  BlockList list;
  for (std::uint16_t p = 1; p <= 50; ++p) {
    FiveTuple t = sigma();
    t.src_port = p;
    list.block(t, SimTime::origin());
  }
  EXPECT_EQ(list.total_blocked(), 50u);
  EXPECT_EQ(list.size(), 50u);
}

}  // namespace
}  // namespace upbound
