#include "filter/bitvector.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace upbound {
namespace {

TEST(BitVector, StartsAllZero) {
  BitVector v{1024};
  EXPECT_EQ(v.popcount(), 0u);
  for (std::size_t i = 0; i < 1024; i += 37) EXPECT_FALSE(v.test(i));
}

TEST(BitVector, SetAndTest) {
  BitVector v{256};
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(255);
  EXPECT_TRUE(v.test(0));
  EXPECT_TRUE(v.test(63));
  EXPECT_TRUE(v.test(64));
  EXPECT_TRUE(v.test(255));
  EXPECT_FALSE(v.test(1));
  EXPECT_FALSE(v.test(128));
  EXPECT_EQ(v.popcount(), 4u);
}

TEST(BitVector, SetIsIdempotent) {
  BitVector v{64};
  v.set(7);
  v.set(7);
  EXPECT_EQ(v.popcount(), 1u);
}

TEST(BitVector, ClearZeroesEverything) {
  BitVector v{512};
  Rng rng{3};
  for (int i = 0; i < 200; ++i) v.set(rng.next_below(512));
  EXPECT_GT(v.popcount(), 0u);
  v.clear();
  EXPECT_EQ(v.popcount(), 0u);
  for (std::size_t i = 0; i < 512; ++i) EXPECT_FALSE(v.test(i));
}

TEST(BitVector, NonWordAlignedSize) {
  BitVector v{100};  // not a multiple of 64
  v.set(99);
  EXPECT_TRUE(v.test(99));
  EXPECT_EQ(v.popcount(), 1u);
  EXPECT_EQ(v.storage_bytes(), 16u);  // two 64-bit words
}

TEST(BitVector, UtilizationFraction) {
  BitVector v{100};
  for (std::size_t i = 0; i < 25; ++i) v.set(i);
  EXPECT_DOUBLE_EQ(v.utilization(), 0.25);
}

TEST(BitVector, StorageBytesMatchesSize) {
  EXPECT_EQ(BitVector{1 << 20}.storage_bytes(), (1u << 20) / 8);
  EXPECT_EQ(BitVector{64}.storage_bytes(), 8u);
  EXPECT_EQ(BitVector{65}.storage_bytes(), 16u);
}

TEST(BitVector, ZeroSizeThrows) {
  EXPECT_THROW(BitVector{0}, std::invalid_argument);
}

TEST(BitVector, RandomSetTestProperty) {
  Rng rng{99};
  BitVector v{4096};
  std::vector<bool> shadow(4096, false);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t idx = rng.next_below(4096);
    v.set(idx);
    shadow[idx] = true;
  }
  std::size_t expected = 0;
  for (std::size_t i = 0; i < 4096; ++i) {
    EXPECT_EQ(v.test(i), shadow[i]);
    if (shadow[i]) ++expected;
  }
  EXPECT_EQ(v.popcount(), expected);
}

}  // namespace
}  // namespace upbound
