#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace upbound {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng{7};
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextRangeInclusive) {
  Rng rng{7};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, NextRangeBadArgsThrow) {
  Rng rng{7};
  EXPECT_THROW(rng.next_range(1, 0), std::invalid_argument);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng{11};
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequencyTracksProbability) {
  Rng rng{13};
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.next_bool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerateProbabilities) {
  Rng rng{13};
  EXPECT_FALSE(rng.next_bool(0.0));
  EXPECT_TRUE(rng.next_bool(1.0));
  EXPECT_FALSE(rng.next_bool(-1.0));
  EXPECT_TRUE(rng.next_bool(2.0));
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng{17};
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.5);
  EXPECT_NEAR(sum / n, 3.5, 0.05);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng{17};
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng{19};
  const int n = 200'000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng{23};
  const int n = 100'001;
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.lognormal(1.0, 0.75);
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], std::exp(1.0), 0.1);
}

TEST(Rng, ParetoRespectsScaleAndTail) {
  Rng rng{29};
  const int n = 100'000;
  int above_double = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.pareto(2.0, 1.5);
    EXPECT_GE(x, 2.0);
    if (x > 4.0) ++above_double;
  }
  // P(X > 2*xm) = (1/2)^alpha = 0.3536 for alpha = 1.5.
  EXPECT_NEAR(static_cast<double>(above_double) / n, std::pow(0.5, 1.5), 0.01);
}

TEST(Rng, ParetoRejectsBadParams) {
  Rng rng{29};
  EXPECT_THROW(rng.pareto(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.pareto(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng parent1{31};
  Rng parent2{31};
  Rng child1 = parent1.fork(5);
  Rng child2 = parent2.fork(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());

  Rng parent3{31};
  Rng other = parent3.fork(6);
  Rng child3 = Rng{31}.fork(5);
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (other.next_u64() == child3.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(ZipfSampler, RankZeroDominates) {
  Rng rng{37};
  ZipfSampler zipf{100, 1.0};
  std::vector<int> counts(100, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
  // Harmonic weight of rank 1 over H(100) ~ 0.1928.
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1928, 0.01);
}

TEST(ZipfSampler, RejectsEmpty) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

TEST(DiscreteSampler, FrequenciesMatchWeights) {
  Rng rng{41};
  DiscreteSampler sampler{{1.0, 3.0, 6.0}};
  std::vector<int> counts(3, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.6, 0.01);
}

TEST(DiscreteSampler, ProbabilityAccessor) {
  DiscreteSampler sampler{{2.0, 2.0, 4.0}};
  EXPECT_DOUBLE_EQ(sampler.probability(0), 0.25);
  EXPECT_DOUBLE_EQ(sampler.probability(1), 0.25);
  EXPECT_DOUBLE_EQ(sampler.probability(2), 0.5);
}

TEST(DiscreteSampler, ZeroWeightCategoryNeverSampled) {
  Rng rng{43};
  DiscreteSampler sampler{{1.0, 0.0, 1.0}};
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_NE(sampler.sample(rng), 1u);
  }
}

TEST(DiscreteSampler, RejectsInvalidWeights) {
  EXPECT_THROW(DiscreteSampler({}), std::invalid_argument);
  EXPECT_THROW(DiscreteSampler({-1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(DiscreteSampler({0.0, 0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace upbound
