// End-to-end golden regression: a FilterBank guarding one campus site,
// driven over a fixed-seed calibrated trace. The metrics below were
// produced by this exact configuration and are locked; a change in any
// layer underneath (trace generator, hashing, filter, meter, policy, RNG,
// batching) that shifts aggregate behaviour shows up here as a diff.
//
// Exact-integer quantities (packet conservation, decision totals) are
// asserted exactly; byte-level quantities get a narrow relative tolerance
// so a deliberate, behaviour-preserving change (e.g. a header-size
// accounting tweak) reads as a small drift, not an avalanche of failures.
#include "sim/filter_bank.h"

#include <gtest/gtest.h>

#include <array>

#include "trace/campus.h"

namespace upbound {
namespace {

constexpr double kRedLow = 3e6;
constexpr double kRedHigh = 6e6;

const GeneratedTrace& golden_trace() {
  static const GeneratedTrace trace = [] {
    CampusTraceConfig config;
    config.duration = Duration::sec(40.0);
    config.connections_per_sec = 60.0;
    config.bandwidth_bps = 12e6;
    config.seed = 11;
    return generate_campus_trace(config);
  }();
  return trace;
}

struct GoldenMetrics {
  std::uint64_t total_packets = 0;
  std::uint64_t passed_outbound = 0;
  std::uint64_t passed_inbound = 0;
  std::uint64_t dropped = 0;  // policy + blocklist drops
  std::uint64_t ignored = 0;  // suppressed at the router or unguarded
  std::uint64_t outbound_bytes = 0;
  std::uint64_t inbound_passed_bytes = 0;
  std::uint64_t inbound_dropped_bytes = 0;
  double drop_rate = 0.0;
};

GoldenMetrics run_bank(bool batched) {
  const GeneratedTrace& trace = golden_trace();
  FilterBank bank;
  bank.add_bitmap_site("campus", trace.network, BitmapFilterConfig{}, kRedLow,
                       kRedHigh);

  GoldenMetrics m;
  m.total_packets = trace.packets.size();
  std::array<std::uint64_t, 5> decisions{};
  if (batched) {
    constexpr std::size_t kBatch = 256;
    std::array<RouterDecision, kBatch> buf;
    for (std::size_t start = 0; start < trace.packets.size();
         start += kBatch) {
      const std::size_t n = std::min(kBatch, trace.packets.size() - start);
      bank.process_batch(PacketBatch{trace.packets.data() + start, n},
                         std::span<RouterDecision>{buf.data(), n});
      for (std::size_t i = 0; i < n; ++i) {
        ++decisions[static_cast<std::size_t>(buf[i])];
      }
    }
  } else {
    for (const PacketRecord& pkt : trace.packets) {
      ++decisions[static_cast<std::size_t>(bank.process(pkt))];
    }
  }
  m.passed_outbound =
      decisions[static_cast<std::size_t>(RouterDecision::kPassedOutbound)];
  m.passed_inbound =
      decisions[static_cast<std::size_t>(RouterDecision::kPassedInbound)];
  m.dropped =
      decisions[static_cast<std::size_t>(RouterDecision::kDroppedByPolicy)] +
      decisions[static_cast<std::size_t>(RouterDecision::kDroppedBlocked)];
  m.ignored = decisions[static_cast<std::size_t>(RouterDecision::kIgnored)];

  const EdgeRouterStats stats = bank.site_router(0).stats();
  m.outbound_bytes = stats.outbound_bytes;
  m.inbound_passed_bytes = stats.inbound_passed_bytes;
  m.inbound_dropped_bytes = stats.inbound_dropped_bytes;
  m.drop_rate = stats.inbound_drop_rate();
  return m;
}

// --- The golden values (locked from a reference run of this test) ---
constexpr std::uint64_t kGoldenTotalPackets = 84'155;
constexpr std::uint64_t kGoldenPassedOutbound = 34'928;
constexpr std::uint64_t kGoldenPassedInbound = 25'812;
constexpr std::uint64_t kGoldenDropped = 23'415;
constexpr std::uint64_t kGoldenOutboundBytes = 33'090'216;
constexpr std::uint64_t kGoldenInboundPassedBytes = 6'548'099;
constexpr double kGoldenDropRate = 0.261818;

TEST(SimGoldenRegression, BatchedBankMatchesLockedMetrics) {
  const GoldenMetrics m = run_bank(/*batched=*/true);
  std::printf("golden actuals: total=%llu out=%llu in=%llu drop=%llu "
              "ignored=%llu outB=%llu inB=%llu dropB=%llu rate=%.6f\n",
              (unsigned long long)m.total_packets,
              (unsigned long long)m.passed_outbound,
              (unsigned long long)m.passed_inbound,
              (unsigned long long)m.dropped, (unsigned long long)m.ignored,
              (unsigned long long)m.outbound_bytes,
              (unsigned long long)m.inbound_passed_bytes,
              (unsigned long long)m.inbound_dropped_bytes, m.drop_rate);

  // Conservation is exact by construction.
  EXPECT_EQ(m.passed_outbound + m.passed_inbound + m.dropped + m.ignored,
            m.total_packets);

  // Locked counts: the trace and every decision above it are fixed-seed
  // deterministic, so these are exact on a healthy build.
  EXPECT_EQ(m.total_packets, kGoldenTotalPackets);
  EXPECT_EQ(m.passed_outbound, kGoldenPassedOutbound);
  EXPECT_EQ(m.passed_inbound, kGoldenPassedInbound);
  EXPECT_EQ(m.dropped, kGoldenDropped);

  // Byte totals with a 0.5% relative band, drop rate within one point.
  EXPECT_NEAR(static_cast<double>(m.outbound_bytes),
              static_cast<double>(kGoldenOutboundBytes),
              0.005 * static_cast<double>(kGoldenOutboundBytes));
  EXPECT_NEAR(static_cast<double>(m.inbound_passed_bytes),
              static_cast<double>(kGoldenInboundPassedBytes),
              0.005 * static_cast<double>(kGoldenInboundPassedBytes));
  EXPECT_NEAR(m.drop_rate, kGoldenDropRate, 0.01);

  // The RED limiter must be visibly active on this overloaded site but far
  // from starving it.
  EXPECT_GT(m.drop_rate, 0.0);
  EXPECT_LT(m.drop_rate, 0.9);
}

// --- Locked per-stage counters (same reference run; exact) ---
// These pin the datapath's internal event accounting, not just its
// outcomes: a refactor that preserves decisions but changes how often a
// stage fires (e.g. counting speculative filter lookups the scalar path
// never performs) shows up here. state.lookups counts only packets that
// survive the blocklist, so lookups == hits + misses by construction.
constexpr std::uint64_t kGoldenStateLookups = 26'227;
constexpr std::uint64_t kGoldenStateHits = 25'050;
constexpr std::uint64_t kGoldenStateMisses = 1'177;
constexpr std::uint64_t kGoldenStateMarks = 34'928;
constexpr std::uint64_t kGoldenBlocklistHits = 23'000;
constexpr std::uint64_t kGoldenPolicyDrops = 415;

TEST(SimGoldenRegression, StageCountersMatchLockedSnapshot) {
  const GeneratedTrace& trace = golden_trace();
  FilterBank bank;
  bank.add_bitmap_site("campus", trace.network, BitmapFilterConfig{},
                       kRedLow, kRedHigh);
  constexpr std::size_t kBatch = 256;
  std::array<RouterDecision, kBatch> buf;
  for (std::size_t start = 0; start < trace.packets.size(); start += kBatch) {
    const std::size_t n = std::min(kBatch, trace.packets.size() - start);
    bank.process_batch(PacketBatch{trace.packets.data() + start, n},
                       std::span<RouterDecision>{buf.data(), n});
  }

  const CounterSnapshot counters =
      bank.site_router(0).stats().stage_counters;
  const auto value = [&counters](std::string_view name) -> std::uint64_t {
    for (const CounterSample& sample : counters) {
      if (sample.name == name) return sample.value;
    }
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  std::printf("golden stage counters:\n");
  for (const CounterSample& sample : counters) {
    std::printf("  %-28s %llu\n", sample.name.c_str(),
                (unsigned long long)sample.value);
  }

  EXPECT_EQ(value("state.lookups"), kGoldenStateLookups);
  EXPECT_EQ(value("state.hits"), kGoldenStateHits);
  EXPECT_EQ(value("state.misses"), kGoldenStateMisses);
  EXPECT_EQ(value("state.marks"), kGoldenStateMarks);
  EXPECT_EQ(value("blocklist.hits"), kGoldenBlocklistHits);
  EXPECT_EQ(value("policy.drops"), kGoldenPolicyDrops);

  // Structural invariants, independent of the locked values.
  EXPECT_EQ(value("state.lookups"),
            value("state.hits") + value("state.misses"));
  EXPECT_EQ(value("policy.evaluations"),
            value("policy.drops") + value("policy.passes"));
  EXPECT_LE(value("blocklist.hits"), value("blocklist.lookups"));
}

TEST(SimGoldenRegression, ScalarAndBatchedBankAgreeExactly) {
  const GoldenMetrics batched = run_bank(/*batched=*/true);
  const GoldenMetrics scalar = run_bank(/*batched=*/false);
  EXPECT_EQ(batched.passed_outbound, scalar.passed_outbound);
  EXPECT_EQ(batched.passed_inbound, scalar.passed_inbound);
  EXPECT_EQ(batched.dropped, scalar.dropped);
  EXPECT_EQ(batched.ignored, scalar.ignored);
  EXPECT_EQ(batched.outbound_bytes, scalar.outbound_bytes);
  EXPECT_EQ(batched.inbound_passed_bytes, scalar.inbound_passed_bytes);
  EXPECT_EQ(batched.inbound_dropped_bytes, scalar.inbound_dropped_bytes);
}

}  // namespace
}  // namespace upbound
