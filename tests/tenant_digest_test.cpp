#include "tenant/state_digest.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace upbound {
namespace {

FiveTuple conn(std::uint16_t sport) {
  return FiveTuple{Protocol::kUdp, Ipv4Addr{10, 40, 0, 2}, sport,
                   Ipv4Addr{198, 18, 0, 1}, 6881};
}

StateDigest sample_digest(TenantId tenant = 42, std::uint64_t epoch = 3) {
  StateDigest digest{tenant, epoch, StateDigestConfig{}};
  for (std::uint16_t p = 1000; p < 1032; ++p) {
    digest.insert_outbound(conn(p));
  }
  return digest;
}

TEST(StateDigest, InsertedKeysAreContained) {
  const StateDigest digest = sample_digest();
  EXPECT_GT(digest.set_bits(), 0u);
  for (std::uint16_t p = 1000; p < 1032; ++p) {
    EXPECT_TRUE(digest.contains_inbound(conn(p).inverse()));
  }
}

TEST(StateDigest, SerializeParseRoundTrips) {
  const StateDigest digest = sample_digest();
  const std::vector<std::uint8_t> wire = digest.serialize();
  const DigestParseResult parsed = StateDigest::parse(wire);
  ASSERT_EQ(parsed.error, DigestError::kNone);
  ASSERT_TRUE(parsed.digest.has_value());
  EXPECT_EQ(*parsed.digest, digest);
  // Canonical encoding: re-serializing the parsed digest is byte-equal.
  EXPECT_EQ(parsed.digest->serialize(), wire);
}

TEST(StateDigest, MergeIsUnionAndOrderIndependent) {
  StateDigest a{7, 1, StateDigestConfig{}};
  StateDigest b{7, 1, StateDigestConfig{}};
  a.insert_outbound(conn(1));
  b.insert_outbound(conn(2));

  StateDigest ab = a;
  ASSERT_EQ(ab.try_merge(b), DigestError::kNone);
  StateDigest ba = b;
  ASSERT_EQ(ba.try_merge(a), DigestError::kNone);

  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab.serialize(), ba.serialize());
  EXPECT_TRUE(ab.contains_inbound(conn(1).inverse()));
  EXPECT_TRUE(ab.contains_inbound(conn(2).inverse()));
}

TEST(StateDigest, TwoRoutersConvergeByteIdentically) {
  // The gossip loop: each router merges the other's export; after one
  // exchange both hold the same union, byte for byte.
  StateDigest router_a{9, 5, StateDigestConfig{}};
  StateDigest router_b{9, 5, StateDigestConfig{}};
  for (std::uint16_t p = 100; p < 120; ++p) router_a.insert_outbound(conn(p));
  for (std::uint16_t p = 115; p < 140; ++p) router_b.insert_outbound(conn(p));

  const std::vector<std::uint8_t> a_wire = router_a.serialize();
  const std::vector<std::uint8_t> b_wire = router_b.serialize();
  ASSERT_EQ(router_a.try_merge(*StateDigest::parse(b_wire).digest),
            DigestError::kNone);
  ASSERT_EQ(router_b.try_merge(*StateDigest::parse(a_wire).digest),
            DigestError::kNone);

  EXPECT_EQ(router_a, router_b);
  EXPECT_EQ(router_a.serialize(), router_b.serialize());
}

TEST(StateDigest, MergeMismatchesAreTyped) {
  StateDigest base{7, 1, StateDigestConfig{}};
  StateDigest other_tenant{8, 1, StateDigestConfig{}};
  StateDigest other_epoch{7, 2, StateDigestConfig{}};
  StateDigestConfig wide;
  wide.log2_bits = 14;
  StateDigest other_config{7, 1, wide};

  EXPECT_EQ(base.try_merge(other_tenant), DigestError::kTenantMismatch);
  EXPECT_EQ(base.try_merge(other_epoch), DigestError::kEpochMismatch);
  EXPECT_EQ(base.try_merge(other_config), DigestError::kConfigMismatch);
  EXPECT_THROW(base.merge(other_tenant), std::invalid_argument);
}

TEST(StateDigest, ClearAdoptsTheNewEpoch) {
  StateDigest digest = sample_digest(42, 3);
  digest.clear(4);
  EXPECT_EQ(digest.epoch(), 4u);
  EXPECT_EQ(digest.set_bits(), 0u);
}

TEST(StateDigest, ParseRejectsTruncation) {
  const std::vector<std::uint8_t> wire = sample_digest().serialize();
  for (const std::size_t keep : {std::size_t{0}, std::size_t{3},
                                 std::size_t{10}, wire.size() - 1}) {
    const DigestParseResult parsed =
        StateDigest::parse(std::span{wire.data(), keep});
    EXPECT_FALSE(parsed.digest.has_value());
    EXPECT_NE(parsed.error, DigestError::kNone);
  }
}

TEST(StateDigest, ParseRejectsBadMagicVersionCrcAndTrailing) {
  const std::vector<std::uint8_t> wire = sample_digest().serialize();

  std::vector<std::uint8_t> bad_magic = wire;
  bad_magic[0] ^= 0xff;
  EXPECT_EQ(StateDigest::parse(bad_magic).error, DigestError::kBadMagic);

  std::vector<std::uint8_t> bad_version = wire;
  bad_version[4] = 0x7f;
  EXPECT_EQ(StateDigest::parse(bad_version).error, DigestError::kBadVersion);

  std::vector<std::uint8_t> bad_crc = wire;
  bad_crc[wire.size() / 2] ^= 0x01;
  EXPECT_EQ(StateDigest::parse(bad_crc).error, DigestError::kBadCrc);

  std::vector<std::uint8_t> trailing = wire;
  trailing.push_back(0x00);
  EXPECT_EQ(StateDigest::parse(trailing).error, DigestError::kTrailingBytes);
}

TEST(StateDigest, ParseRejectsOutOfRangeGeometryBeforeAllocating) {
  std::vector<std::uint8_t> wire = sample_digest().serialize();
  // The log2_bits byte sits right after magic+version; force it absurd so
  // a naive decoder would try to allocate 2^255 bits.
  wire[6] = 0xff;
  const DigestParseResult parsed = StateDigest::parse(wire);
  EXPECT_FALSE(parsed.digest.has_value());
  EXPECT_TRUE(parsed.error == DigestError::kBadConfig ||
              parsed.error == DigestError::kBadCrc)
      << digest_error_name(parsed.error);
}

TEST(StateDigest, FuzzedInputsNeverParseToSuccessLies) {
  // Random mutations of a valid wire image and pure garbage: parse must
  // never crash, and whenever it claims success the digest must
  // re-serialize to a well-formed image.
  const std::vector<std::uint8_t> wire = sample_digest().serialize();
  Rng rng{0x646967657374ULL};
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> mutated = wire;
    const std::size_t flips = 1 + rng.next_below(8);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t at = rng.next_below(mutated.size());
      mutated[at] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    if (rng.next_bool(0.3)) {
      mutated.resize(rng.next_below(mutated.size() + 1));
    }
    const DigestParseResult parsed = StateDigest::parse(mutated);
    if (parsed.error == DigestError::kNone) {
      ASSERT_TRUE(parsed.digest.has_value());
      const DigestParseResult again =
          StateDigest::parse(parsed.digest->serialize());
      EXPECT_EQ(again.error, DigestError::kNone);
    } else {
      EXPECT_FALSE(parsed.digest.has_value());
    }
  }
  for (int round = 0; round < 500; ++round) {
    std::vector<std::uint8_t> garbage(rng.next_below(256));
    for (auto& byte : garbage) {
      byte = static_cast<std::uint8_t>(rng.next_below(256));
    }
    const DigestParseResult parsed = StateDigest::parse(garbage);
    EXPECT_TRUE(parsed.error != DigestError::kNone ||
                parsed.digest.has_value());
  }
}

}  // namespace
}  // namespace upbound
