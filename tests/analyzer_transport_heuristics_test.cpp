#include "analyzer/transport_heuristics.h"

#include <gtest/gtest.h>

#include "trace/campus.h"

namespace upbound {
namespace {

PacketRecord pkt(Protocol proto, Ipv4Addr src, std::uint16_t sport,
                 Ipv4Addr dst, std::uint16_t dport) {
  PacketRecord p;
  p.tuple = FiveTuple{proto, src, sport, dst, dport};
  return p;
}

const Ipv4Addr kHostA{10, 0, 0, 1};
const Ipv4Addr kHostB{61, 2, 3, 4};

TEST(TransportHeuristics, TcpUdpPairFlagsP2p) {
  TransportHeuristics h;
  h.observe(pkt(Protocol::kTcp, kHostA, 40000, kHostB, 31337));
  EXPECT_FALSE(h.pair_uses_both_protocols(kHostA, kHostB));
  h.observe(pkt(Protocol::kUdp, kHostA, 40001, kHostB, 31338));
  EXPECT_TRUE(h.pair_uses_both_protocols(kHostA, kHostB));
  // Symmetric and direction-independent.
  EXPECT_TRUE(h.pair_uses_both_protocols(kHostB, kHostA));
}

TEST(TransportHeuristics, DnsPairNotFlagged) {
  TransportHeuristics h;
  // DNS over both protocols is a legitimate dual-protocol service.
  h.observe(pkt(Protocol::kUdp, kHostA, 40000, kHostB, 53));
  h.observe(pkt(Protocol::kTcp, kHostA, 40001, kHostB, 53));
  EXPECT_FALSE(h.pair_uses_both_protocols(kHostA, kHostB));
}

TEST(TransportHeuristics, P2pEndpointSpreadDetected) {
  TransportHeuristics h;
  // Six peers, one connection each from fresh ephemeral ports.
  for (std::uint32_t i = 0; i < 6; ++i) {
    h.observe(pkt(Protocol::kTcp, Ipv4Addr{0x3d000000u + i},
                  static_cast<std::uint16_t>(50000 + i), kHostA, 31337));
  }
  EXPECT_TRUE(h.endpoint_looks_p2p(kHostA, 31337, Protocol::kTcp));
}

TEST(TransportHeuristics, WebServerSpreadNotDetected) {
  TransportHeuristics h;
  // Two clients opening many parallel connections each: ports >> IPs.
  for (std::uint16_t p = 0; p < 8; ++p) {
    h.observe(pkt(Protocol::kTcp, Ipv4Addr{192, 0, 2, 1},
                  static_cast<std::uint16_t>(40000 + p), kHostB, 80));
    h.observe(pkt(Protocol::kTcp, Ipv4Addr{192, 0, 2, 2},
                  static_cast<std::uint16_t>(41000 + p), kHostB, 80));
  }
  EXPECT_FALSE(h.endpoint_looks_p2p(kHostB, 80, Protocol::kTcp));
}

TEST(TransportHeuristics, MinPeersGate) {
  TransportHeuristics h{{.min_peers = 10}};
  for (std::uint32_t i = 0; i < 6; ++i) {
    h.observe(pkt(Protocol::kTcp, Ipv4Addr{0x3d000000u + i},
                  static_cast<std::uint16_t>(50000 + i), kHostA, 31337));
  }
  EXPECT_FALSE(h.endpoint_looks_p2p(kHostA, 31337, Protocol::kTcp));
}

TEST(TransportHeuristics, IsP2pChecksBothEndpointsAndPair) {
  TransportHeuristics h;
  for (std::uint32_t i = 0; i < 6; ++i) {
    h.observe(pkt(Protocol::kTcp, Ipv4Addr{0x3d000000u + i},
                  static_cast<std::uint16_t>(50000 + i), kHostA, 31337));
  }
  // A connection TOWARD the flagged endpoint.
  EXPECT_TRUE(h.is_p2p(FiveTuple{Protocol::kTcp, kHostB, 12345, kHostA,
                                 31337}));
  // And one FROM it (source endpoint flagged).
  EXPECT_TRUE(h.is_p2p(FiveTuple{Protocol::kTcp, kHostA, 31337, kHostB,
                                 12345}));
  // Unrelated connection: no flag.
  EXPECT_FALSE(h.is_p2p(FiveTuple{Protocol::kTcp, kHostB, 1, kHostB, 2}));
}

TEST(TransportHeuristics, StorageGrowsWithState) {
  TransportHeuristics h;
  const std::size_t before = h.storage_bytes();
  for (std::uint32_t i = 0; i < 1000; ++i) {
    h.observe(pkt(Protocol::kTcp, Ipv4Addr{0x0a000000u + i},
                  static_cast<std::uint16_t>(1024 + (i % 60000)),
                  Ipv4Addr{0x3d000000u + i}, 31337));
  }
  EXPECT_GT(h.storage_bytes(), before + 1000 * 8);
  EXPECT_GT(h.tracked_pairs(), 900u);
}

TEST(TransportHeuristics, CampusTracePrecisionRecall) {
  // Run the PTP-style identifier over the calibrated trace and score it
  // against ground truth. The paper's related-work framing: "performs
  // well on identification of unknown peer-to-peer traffic".
  CampusTraceConfig config;
  config.duration = Duration::sec(20.0);
  config.connections_per_sec = 60.0;
  config.bandwidth_bps = 6e6;
  config.seed = 3;
  const GeneratedTrace trace = generate_campus_trace(config);

  TransportHeuristics h;
  for (const PacketRecord& pkt : trace.packets) h.observe(pkt);

  std::size_t true_pos = 0, false_pos = 0, false_neg = 0;
  for (const auto& [tuple, app] : trace.truth) {
    // Ground truth P2P includes the encrypted/unknown class: it IS P2P
    // in the generator (which is the scenario where transport-layer
    // identification earns its keep -- payloads are useless there).
    const bool truth_p2p = is_p2p(app) || app == AppProtocol::kUnknown;
    const bool flagged = h.is_p2p(tuple);
    if (flagged && truth_p2p) ++true_pos;
    if (flagged && !truth_p2p) ++false_pos;
    if (!flagged && truth_p2p) ++false_neg;
  }
  const double precision =
      static_cast<double>(true_pos) /
      static_cast<double>(std::max<std::size_t>(1, true_pos + false_pos));
  const double recall =
      static_cast<double>(true_pos) /
      static_cast<double>(std::max<std::size_t>(1, true_pos + false_neg));
  // Transport heuristics are coarse; require usefully-high precision and
  // a majority recall (the PTP paper reports ~90%/95% on real traces
  // with more heuristics layered on).
  EXPECT_GT(precision, 0.9);
  EXPECT_GT(recall, 0.5);
}

}  // namespace
}  // namespace upbound
