// Determinism contract of the sharded parallel replay engine:
//
//   1. shard placement is connection-stable (a tuple and its inverse share
//      a shard),
//   2. the merged result is byte-identical for any worker thread count,
//   3. it equals driving the same shard routers through the sequential
//      replay_trace path (sharded_replay_reference),
//   4. with S = 1 it collapses to the plain single-router replay exactly,
//   5. merged offered load equals the trace's offered load,
//   6. shared-filter mode conserves packets even though its decisions are
//      run-dependent.
#include "filter/filter_registry.h"
#include "sim/parallel_replay.h"

#include <gtest/gtest.h>

#include "filter/bitmap_filter.h"
#include "filter/concurrent_bitmap.h"
#include "filter/drop_policy.h"
#include "trace/campus.h"
#include "util/rng.h"

namespace upbound {
namespace {

const GeneratedTrace& shared_trace() {
  static const GeneratedTrace trace = [] {
    CampusTraceConfig config;
    config.duration = Duration::sec(40.0);
    config.connections_per_sec = 60.0;
    config.bandwidth_bps = 12e6;
    config.seed = 3;
    return generate_campus_trace(config);
  }();
  return trace;
}

EdgeRouterConfig shard_config(const ClientNetwork& network, std::size_t shard,
                              bool blocklist) {
  EdgeRouterConfig config;
  config.network = network;
  config.track_blocked_connections = blocklist;
  config.seed = shard_seed(7, shard);
  return config;
}

ShardRouterFactory bitmap_factory(bool blocklist = true) {
  return [blocklist](const ClientNetwork& network, std::size_t shard) {
    return std::make_unique<EdgeRouter>(
        shard_config(network, shard, blocklist),
        make_state_filter(bitmap_filter_spec(BitmapFilterConfig{})),
        std::make_unique<ConstantDropPolicy>(1.0));
  };
}

std::uint64_t total_packets(const EdgeRouterStats& stats) {
  return stats.outbound_packets + stats.inbound_passed_packets +
         stats.inbound_dropped_packets + stats.suppressed_outbound_packets +
         stats.ignored_packets;
}

TEST(ParallelReplay, ShardPlacementIsConnectionStable) {
  Rng rng{99};
  for (int i = 0; i < 2000; ++i) {
    FiveTuple t;
    t.protocol = rng.next_bool(0.5) ? Protocol::kTcp : Protocol::kUdp;
    t.src_addr = Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())};
    t.dst_addr = Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())};
    t.src_port = static_cast<std::uint16_t>(rng.next_below(65536));
    t.dst_port = static_cast<std::uint16_t>(rng.next_below(65536));
    for (const std::size_t shards : {1u, 2u, 8u, 13u}) {
      const std::size_t s = shard_of(t, shards);
      ASSERT_LT(s, shards);
      // The inverse direction of the same connection must land in the same
      // shard, or marks and lookups would be split across filters.
      ASSERT_EQ(s, shard_of(t.inverse(), shards));
    }
  }
}

TEST(ParallelReplay, ShardSeedsAreDistinct) {
  EXPECT_NE(shard_seed(7, 0), shard_seed(7, 1));
  EXPECT_NE(shard_seed(7, 0), shard_seed(8, 0));
  EXPECT_NE(shard_seed(7, 1), shard_seed(7, 2));
}

TEST(ParallelReplay, NullFactoryThrows) {
  const ShardRouterFactory broken = [](const ClientNetwork&, std::size_t) {
    return std::unique_ptr<EdgeRouter>{};
  };
  EXPECT_THROW(parallel_replay(shared_trace().packets, shared_trace().network,
                               broken),
               std::invalid_argument);
}

TEST(ParallelReplay, MergedResultInvariantUnderThreadCount) {
  const GeneratedTrace& trace = shared_trace();
  ParallelReplayConfig config;
  config.shards = 8;

  const ParallelReplayResult reference = sharded_replay_reference(
      trace.packets, trace.network, bitmap_factory(), config);
  ASSERT_GT(trace.packets.size(), 0u);

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    config.threads = threads;
    const ParallelReplayResult result =
        parallel_replay(trace.packets, trace.network, bitmap_factory(), config);

    EXPECT_EQ(result.shards, 8u) << "threads=" << threads;
    // Byte-identical merge: stats, per-stage counters, and every series
    // bucket, regardless of worker scheduling.
    EXPECT_TRUE(result.merged == reference.merged) << "threads=" << threads;
    EXPECT_EQ(result.shard_stats, reference.shard_stats)
        << "threads=" << threads;
    EXPECT_EQ(result.shard_packets, reference.shard_packets)
        << "threads=" << threads;
    EXPECT_EQ(result.shard_filter_bytes, reference.shard_filter_bytes)
        << "threads=" << threads;
  }
}

TEST(ParallelReplay, ChunkSizeDoesNotChangeResults) {
  const GeneratedTrace& trace = shared_trace();
  ParallelReplayConfig config;
  config.shards = 4;
  config.threads = 2;

  config.chunk_packets = 256;
  const ParallelReplayResult big =
      parallel_replay(trace.packets, trace.network, bitmap_factory(), config);
  config.chunk_packets = 7;  // odd and tiny: lots of ring traffic
  config.ring_chunks = 3;
  const ParallelReplayResult small =
      parallel_replay(trace.packets, trace.network, bitmap_factory(), config);
  EXPECT_TRUE(big.merged == small.merged);
  EXPECT_EQ(big.shard_stats, small.shard_stats);
}

TEST(ParallelReplay, SingleShardEqualsPlainSequentialReplay) {
  const GeneratedTrace& trace = shared_trace();

  EdgeRouter router{shard_config(trace.network, 0, true),
                    make_state_filter(bitmap_filter_spec(BitmapFilterConfig{})),
                    std::make_unique<ConstantDropPolicy>(1.0)};
  const ReplayResult sequential =
      replay_trace(trace.packets, router, trace.network);

  ParallelReplayConfig config;
  config.shards = 1;
  config.threads = 4;  // clamped to 1 worker; semantics unchanged
  const ParallelReplayResult parallel =
      parallel_replay(trace.packets, trace.network, bitmap_factory(), config);

  EXPECT_EQ(parallel.threads, 1u);
  EXPECT_TRUE(parallel.merged == sequential);
}

TEST(ParallelReplay, MergedOfferedLoadMatchesTrace) {
  const GeneratedTrace& trace = shared_trace();
  ParallelReplayConfig config;
  config.threads = 4;
  const ParallelReplayResult result =
      parallel_replay(trace.packets, trace.network, bitmap_factory(), config);
  const ReplayResult offered = offered_load(trace.packets, trace.network);

  // Partitioning only reshuffles which shard accounts a packet; the merged
  // offered series must reproduce the whole-trace accounting bucket for
  // bucket (integer byte counts, so double sums are exact).
  EXPECT_TRUE(result.merged.offered_outbound == offered.offered_outbound);
  EXPECT_TRUE(result.merged.offered_inbound == offered.offered_inbound);
  EXPECT_DOUBLE_EQ(result.merged.offered_outbound.total(),
                   static_cast<double>(trace.outbound_bytes));

  std::uint64_t shard_total = 0;
  for (const std::uint64_t count : result.shard_packets) shard_total += count;
  EXPECT_EQ(shard_total, trace.packets.size());
  EXPECT_EQ(total_packets(result.merged.stats), trace.packets.size());
}

TEST(ParallelReplay, SharedFilterModeConservesPackets) {
  const GeneratedTrace& trace = shared_trace();

  ConcurrentBitmapFilter shared{BitmapFilterConfig{}};
  const ShardRouterFactory factory = [&shared](const ClientNetwork& network,
                                               std::size_t shard) {
    return std::make_unique<EdgeRouter>(
        shard_config(network, shard, false),
        std::make_unique<SharedFilterView>(shared),
        std::make_unique<ConstantDropPolicy>(1.0));
  };

  ParallelReplayConfig config;
  config.threads = 4;
  const ParallelReplayResult result =
      parallel_replay(trace.packets, trace.network, factory, config);

  EXPECT_EQ(total_packets(result.merged.stats), trace.packets.size());
  EXPECT_EQ(result.merged.stats.outbound_packets +
                result.merged.stats.suppressed_outbound_packets,
            [&] {
              std::uint64_t outbound = 0;
              for (const PacketRecord& pkt : trace.packets) {
                if (trace.network.classify(pkt) == Direction::kOutbound) {
                  ++outbound;
                }
              }
              return outbound;
            }());
  // The shared filter still admits solicited traffic: the drop rate stays
  // in the same regime as the per-shard run (racing rotations may perturb
  // individual verdicts but not the aggregate behaviour).
  EXPECT_LT(result.merged.stats.inbound_drop_rate(), 0.30);
  EXPECT_EQ(result.filter_name, "bitmap-concurrent-shared");
}

}  // namespace
}  // namespace upbound
