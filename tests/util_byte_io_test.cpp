#include "util/byte_io.h"

#include <gtest/gtest.h>

namespace upbound {
namespace {

TEST(ByteWriter, BigEndianLayout) {
  std::vector<std::uint8_t> buf;
  ByteWriter w{buf};
  w.u16be(0x1234);
  w.u32be(0xdeadbeef);
  ASSERT_EQ(buf.size(), 6u);
  EXPECT_EQ(buf[0], 0x12);
  EXPECT_EQ(buf[1], 0x34);
  EXPECT_EQ(buf[2], 0xde);
  EXPECT_EQ(buf[3], 0xad);
  EXPECT_EQ(buf[4], 0xbe);
  EXPECT_EQ(buf[5], 0xef);
}

TEST(ByteWriter, LittleEndianLayout) {
  std::vector<std::uint8_t> buf;
  ByteWriter w{buf};
  w.u16le(0x1234);
  w.u32le(0xdeadbeef);
  ASSERT_EQ(buf.size(), 6u);
  EXPECT_EQ(buf[0], 0x34);
  EXPECT_EQ(buf[1], 0x12);
  EXPECT_EQ(buf[2], 0xef);
  EXPECT_EQ(buf[3], 0xbe);
  EXPECT_EQ(buf[4], 0xad);
  EXPECT_EQ(buf[5], 0xde);
}

TEST(ByteWriter, AppendsToExistingContent) {
  std::vector<std::uint8_t> buf{0xff};
  ByteWriter w{buf};
  w.u8(0x01);
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf[0], 0xff);
  EXPECT_EQ(buf[1], 0x01);
}

TEST(ByteReaderWriter, RoundTripAllWidths) {
  std::vector<std::uint8_t> buf;
  ByteWriter w{buf};
  w.u8(0xab);
  w.u16be(0xbeef);
  w.u32be(0x01020304);
  w.u16le(0xcafe);
  w.u32le(0x05060708);
  const std::uint8_t blob[] = {9, 8, 7};
  w.bytes(blob);

  ByteReader r{buf};
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16be(), 0xbeef);
  EXPECT_EQ(r.u32be(), 0x01020304u);
  EXPECT_EQ(r.u16le(), 0xcafe);
  EXPECT_EQ(r.u32le(), 0x05060708u);
  const auto tail = r.bytes(3);
  EXPECT_EQ(tail[0], 9);
  EXPECT_EQ(tail[2], 7);
  EXPECT_TRUE(r.empty());
}

TEST(ByteReader, UnderflowThrows) {
  const std::uint8_t data[] = {1, 2};
  ByteReader r{data};
  EXPECT_THROW(r.u32be(), ByteUnderflow);
  // Failed read must not consume.
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_EQ(r.u16be(), 0x0102);
}

TEST(ByteReader, SkipAndPosition) {
  const std::uint8_t data[] = {1, 2, 3, 4, 5};
  ByteReader r{data};
  r.skip(2);
  EXPECT_EQ(r.position(), 2u);
  EXPECT_EQ(r.u8(), 3);
  EXPECT_THROW(r.skip(3), ByteUnderflow);
}

}  // namespace
}  // namespace upbound
