#include "util/counters.h"

#include <gtest/gtest.h>

namespace upbound {
namespace {

TEST(Counters, StartAtZeroAndAccumulate) {
  CounterRegistry registry;
  StageCounter& hits = registry.counter("state.hits");
  EXPECT_EQ(hits.value(), 0u);
  hits.inc();
  hits.inc(41);
  EXPECT_EQ(hits.value(), 42u);
  EXPECT_EQ(registry.value("state.hits"), 42u);
}

TEST(Counters, LookupIsIdempotentAndReferencesAreStable) {
  CounterRegistry registry;
  StageCounter& first = registry.counter("a");
  // Registering many more counters must not invalidate `first`.
  for (int i = 0; i < 100; ++i) {
    registry.counter("filler." + std::to_string(i)).inc();
  }
  StageCounter& again = registry.counter("a");
  EXPECT_EQ(&first, &again);
  first.inc(7);
  EXPECT_EQ(registry.value("a"), 7u);
  EXPECT_EQ(registry.size(), 101u);
}

TEST(Counters, UnknownNameReadsZero) {
  CounterRegistry registry;
  EXPECT_EQ(registry.value("never.registered"), 0u);
  EXPECT_EQ(registry.size(), 0u);
}

TEST(Counters, SnapshotIsNameSortedAndComparable) {
  CounterRegistry registry;
  registry.counter("zeta").inc(3);
  registry.counter("alpha").inc(1);
  registry.counter("mid").inc(2);

  const CounterSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0], (CounterSample{"alpha", 1}));
  EXPECT_EQ(snap[1], (CounterSample{"mid", 2}));
  EXPECT_EQ(snap[2], (CounterSample{"zeta", 3}));

  CounterRegistry other;
  other.counter("alpha").inc(1);
  other.counter("zeta").inc(3);
  other.counter("mid").inc(2);
  EXPECT_EQ(snap, other.snapshot());  // registration order is irrelevant
}

TEST(Counters, ResetZeroesValuesButKeepsRegistrations) {
  CounterRegistry registry;
  StageCounter& drops = registry.counter("policy.drops");
  drops.inc(9);
  registry.reset();
  EXPECT_EQ(drops.value(), 0u);
  EXPECT_EQ(registry.size(), 1u);
  drops.inc();
  EXPECT_EQ(registry.value("policy.drops"), 1u);
}

}  // namespace
}  // namespace upbound
