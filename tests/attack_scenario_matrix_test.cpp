// Scenario-matrix properties of the adversarial workload engine: every
// attack must be bit-deterministic under a fixed seed (including across
// thread counts), and the exact-state baselines must order the way the
// paper argues -- the naive timer (refreshed only by outbound) admits
// strictly fewer attack probes than stateful inspection (refreshed by
// either direction), for every scenario.
#include <gtest/gtest.h>

#include "attack/evaluator.h"
#include "attack/scenario.h"
#include "trace/campus.h"

namespace upbound {
namespace {

BitmapFilterConfig small_bitmap() {
  BitmapFilterConfig config;
  config.log2_bits = 12;
  config.vector_count = 4;
  config.hash_count = 3;
  config.rotate_interval = Duration::sec(1.0);  // T_e = 4 s
  return config;
}

ClientNetwork campus_network() {
  ClientNetwork network;
  network.add_prefix(*Cidr::parse("140.112.30.0/24"));
  return network;
}

Trace small_campus() {
  CampusTraceConfig config;
  config.duration = Duration::sec(24.0);
  config.connections_per_sec = 40.0;
  config.bandwidth_bps = 4e6;
  config.seed = 42;
  config.network.client_prefix = campus_network().prefixes().front();
  return generate_campus_trace(config).packets;
}

AttackEvaluatorConfig small_config() {
  AttackEvaluatorConfig config;
  config.attack.bitmap = small_bitmap();
  config.attack.seed = 42;
  config.attack.spi_idle_timeout = Duration::sec(30.0);
  config.seed = 42;
  return config;
}

const AttackOutcome& find(const AttackReport& report,
                          const std::string& scenario,
                          const std::string& filter) {
  for (const AttackOutcome& outcome : report.outcomes) {
    if (outcome.scenario == scenario && outcome.filter == filter) {
      return outcome;
    }
  }
  ADD_FAILURE() << "missing outcome " << scenario << "/" << filter;
  static const AttackOutcome missing{};
  return missing;
}

TEST(AttackMatrix, DeterministicUnderFixedSeed) {
  const Trace legit = small_campus();
  const auto scenarios = all_attack_scenarios();
  const AttackEvaluatorConfig config = small_config();

  const AttackReport a =
      evaluate_attacks(legit, campus_network(), scenarios, config);
  const AttackReport b =
      evaluate_attacks(legit, campus_network(), scenarios, config);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.to_jsonl(), b.to_jsonl());
}

TEST(AttackMatrix, ThreadCountNeverChangesTheReport) {
  const Trace legit = small_campus();
  const auto scenarios = all_attack_scenarios();
  AttackEvaluatorConfig config = small_config();

  const AttackReport one =
      evaluate_attacks(legit, campus_network(), scenarios, config);
  config.threads = 4;
  const AttackReport four =
      evaluate_attacks(legit, campus_network(), scenarios, config);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one.to_jsonl(), four.to_jsonl());
}

TEST(AttackMatrix, NaiveAdmitsStrictlyFewerProbesThanSpi) {
  const Trace legit = small_campus();
  const auto scenarios = all_attack_scenarios();
  const AttackReport report = evaluate_attacks(legit, campus_network(),
                                               scenarios, small_config());

  for (const AttackScenarioKind kind : scenarios) {
    const std::string name = attack_scenario_name(kind);
    const AttackOutcome& naive = find(report, name, "naive");
    const AttackOutcome& spi = find(report, name, "spi");
    ASSERT_GT(naive.tally.probe_packets, 0u) << name;
    EXPECT_EQ(naive.tally.probe_packets, spi.tally.probe_packets) << name;
    // The attacks are built to separate the baselines: stale replays and
    // quiet gaps sit inside (T_e, spi_idle), where the outbound-only
    // naive timer has expired but inbound-refreshed SPI state survives.
    EXPECT_LT(naive.tally.probe_admitted, spi.tally.probe_admitted) << name;
  }
}

TEST(AttackMatrix, RotationScheduleLeakIsWorthBypass) {
  const Trace legit = small_campus();
  const AttackScenarioKind scenarios[] = {AttackScenarioKind::kRotationTiming};
  AttackEvaluatorConfig config = small_config();

  const AttackReport timed =
      evaluate_attacks(legit, campus_network(), scenarios, config);
  config.attack.rotation_mistimed = true;
  const AttackReport mistimed =
      evaluate_attacks(legit, campus_network(), scenarios, config);

  // Keepalives placed just after each boundary ride the full k*dt mark
  // lifetime; just before, only (k-1)*dt. Knowing the schedule must buy
  // the attacker a strictly higher bitmap bypass rate.
  const auto& good = find(timed, "rotation-timing", "bitmap");
  const auto& bad = find(mistimed, "rotation-timing", "bitmap");
  EXPECT_EQ(good.tally.probe_packets, bad.tally.probe_packets);
  EXPECT_GT(good.tally.probe_admitted, bad.tally.probe_admitted);
}

TEST(AttackMatrix, SaturationDrivesOccupancyAboveBaseline) {
  const Trace legit = small_campus();
  const AttackScenarioKind scenarios[] = {
      AttackScenarioKind::kSaturationFlooding};
  AttackEvaluatorConfig config = small_config();
  config.attack.saturation_occupancy = 0.6;

  const AttackReport report =
      evaluate_attacks(legit, campus_network(), scenarios, config);
  const auto& baseline = find(report, "baseline", "bitmap");
  const auto& flooded = find(report, "saturation-flooding", "bitmap");
  ASSERT_FALSE(baseline.occupancy_permille.empty());
  ASSERT_FALSE(flooded.occupancy_permille.empty());
  EXPECT_GT(flooded.occupancy_peak_permille(),
            baseline.occupancy_peak_permille());
  // Non-bitmap filters have no occupancy trajectory.
  EXPECT_TRUE(
      find(report, "saturation-flooding", "spi").occupancy_permille.empty());
}

TEST(AttackMatrix, CollisionProbesBeatTheBitmapOnly) {
  const Trace legit = small_campus();
  const AttackScenarioKind scenarios[] = {
      AttackScenarioKind::kCollisionProbing};
  const AttackReport report = evaluate_attacks(legit, campus_network(),
                                               scenarios, small_config());

  // Mined false positives ride marks legit traffic left in the shared
  // Bloom vectors; exact per-tuple state (naive) has nothing to collide
  // with, so its bypass comes only from the stale-replay tail (zero
  // inside T_e).
  const auto& bitmap = find(report, "collision-probing", "bitmap");
  const auto& naive = find(report, "collision-probing", "naive");
  EXPECT_GT(bitmap.tally.probe_admitted, naive.tally.probe_admitted);
}

TEST(AttackMatrix, ScenarioNamesRoundTrip) {
  for (const AttackScenarioKind kind : all_attack_scenarios()) {
    AttackScenarioKind parsed;
    ASSERT_TRUE(parse_attack_scenario(attack_scenario_name(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  AttackScenarioKind parsed;
  EXPECT_TRUE(parse_attack_scenario("collision", &parsed));
  EXPECT_EQ(parsed, AttackScenarioKind::kCollisionProbing);
  EXPECT_TRUE(parse_attack_scenario("forgery", &parsed));
  EXPECT_EQ(parsed, AttackScenarioKind::kTriggerForgery);
  EXPECT_FALSE(parse_attack_scenario("ddos", &parsed));
}

}  // namespace
}  // namespace upbound
