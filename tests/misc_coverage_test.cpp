// Coverage for the smaller public surfaces not exercised elsewhere:
// analyzer stats helpers, the regex disassembler, and logging.
#include <gtest/gtest.h>

#include "analyzer/stats.h"
#include "rex/regex.h"
#include "util/logging.h"

namespace upbound {
namespace {

TEST(PortClass, MappingMatchesPaperClasses) {
  EXPECT_EQ(port_class_of(AppProtocol::kBitTorrent), PortClass::kP2p);
  EXPECT_EQ(port_class_of(AppProtocol::kEdonkey), PortClass::kP2p);
  EXPECT_EQ(port_class_of(AppProtocol::kGnutella), PortClass::kP2p);
  EXPECT_EQ(port_class_of(AppProtocol::kHttp), PortClass::kNonP2p);
  EXPECT_EQ(port_class_of(AppProtocol::kFtp), PortClass::kNonP2p);
  EXPECT_EQ(port_class_of(AppProtocol::kDns), PortClass::kNonP2p);
  EXPECT_EQ(port_class_of(AppProtocol::kOther), PortClass::kNonP2p);
  EXPECT_EQ(port_class_of(AppProtocol::kUnknown), PortClass::kUnknown);
}

TEST(PortClass, Names) {
  EXPECT_STREQ(port_class_name(PortClass::kAll), "ALL");
  EXPECT_STREQ(port_class_name(PortClass::kP2p), "P2P");
  EXPECT_STREQ(port_class_name(PortClass::kNonP2p), "Non-P2P");
  EXPECT_STREQ(port_class_name(PortClass::kUnknown), "UNKNOWN");
}

TEST(AnalyzerReport, ShareOfThrowsForMissingApp) {
  AnalyzerReport report;
  EXPECT_THROW(report.share_of(AppProtocol::kHttp), std::out_of_range);
}

TEST(AnalyzerReport, UploadFractionEmptyIsZero) {
  AnalyzerReport report;
  EXPECT_DOUBLE_EQ(report.upload_fraction(), 0.0);
}

TEST(AnalyzerReport, ProtocolTableEmptyStillRendersHeader) {
  AnalyzerReport report;
  const std::string table = report.protocol_table();
  EXPECT_NE(table.find("Protocol"), std::string::npos);
  EXPECT_NE(table.find("Utilization"), std::string::npos);
}

TEST(AppProtocolName, AllValuesNamed) {
  for (const AppProtocol app : kAllAppProtocols) {
    EXPECT_STRNE(app_protocol_name(app), "?");
  }
}

TEST(AppProtocolIsP2p, OnlyThreeProtocols) {
  int count = 0;
  for (const AppProtocol app : kAllAppProtocols) {
    if (is_p2p(app)) ++count;
  }
  EXPECT_EQ(count, 3);
}

TEST(RexDisassemble, ListsInstructions) {
  const rex::Regex re{"^ab|c*"};
  const std::string listing = re.disassemble();
  EXPECT_NE(listing.find("assert ^"), std::string::npos);
  EXPECT_NE(listing.find("split"), std::string::npos);
  EXPECT_NE(listing.find("byteset"), std::string::npos);
  EXPECT_NE(listing.find("match"), std::string::npos);
  EXPECT_GT(re.program_size(), 4u);
}

TEST(RexDisassemble, AnyAndJump) {
  const rex::Regex re{".+"};
  const std::string listing = re.disassemble();
  EXPECT_NE(listing.find("any"), std::string::npos);
  EXPECT_NE(listing.find("jump"), std::string::npos);
}

TEST(RexRegex, PatternAccessorRoundTrip) {
  const rex::Regex re{"abc[0-9]"};
  EXPECT_EQ(re.pattern(), "abc[0-9]");
}

TEST(Logging, LevelGateHoldsMessages) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below the gate: the statement must not evaluate its stream (the
  // side-effect-free guard), and must not crash.
  UPBOUND_LOG(kDebug) << "dropped " << 42;
  UPBOUND_LOG(kError) << "emitted " << 43;
  set_log_level(LogLevel::kOff);
  UPBOUND_LOG(kError) << "also dropped";
  set_log_level(saved);
}

}  // namespace
}  // namespace upbound
