// Cross-thread torture for the two concurrent primitives the parallel
// replay engine leans on: the SPSC ring and the shared
// ConcurrentBitmapFilter. These tests are meaningful in any build but are
// written to be driven under ThreadSanitizer:
//
//   cmake -B build-tsan -S . -DUPBOUND_TSAN=ON
//   cmake --build build-tsan -j && ctest --test-dir build-tsan \
//       -R 'concurrency_stress|util_spsc_ring' --output-on-failure
//
// plus an end-to-end shared-filter parallel replay, which exercises the
// full producer/worker/merge machinery under the race detector.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "filter/concurrent_bitmap.h"
#include "filter/drop_policy.h"
#include "sim/parallel_replay.h"
#include "trace/campus.h"
#include "util/rng.h"
#include "util/spsc_ring.h"

namespace upbound {
namespace {

TEST(ConcurrencyStress, SpscRingBurstyProducerConsumer) {
  // Bursty schedules shake out ordering bugs that a steady hand-off can
  // hide: the producer sleeps and floods, the consumer drains in gulps.
  constexpr std::size_t kItems = 300'000;
  SpscRing<std::size_t> ring{16};
  std::atomic<bool> mismatch{false};

  std::thread producer([&] {
    Rng rng{1};
    std::size_t sent = 0;
    while (sent < kItems) {
      const std::size_t burst = 1 + rng.next_below(64);
      for (std::size_t i = 0; i < burst && sent < kItems; ++i) {
        while (!ring.try_push(sent)) std::this_thread::yield();
        ++sent;
      }
      if (rng.next_bool(0.2)) std::this_thread::yield();
    }
  });

  std::size_t expect = 0;
  std::size_t value = 0;
  Rng rng{2};
  while (expect < kItems) {
    const std::size_t gulp = 1 + rng.next_below(64);
    for (std::size_t i = 0; i < gulp && expect < kItems; ++i) {
      while (!ring.try_pop(value)) std::this_thread::yield();
      if (value != expect) {
        mismatch.store(true);
        expect = kItems;
        break;
      }
      ++expect;
    }
  }
  producer.join();
  EXPECT_FALSE(mismatch.load());
}

TEST(ConcurrencyStress, ConcurrentBitmapSharedByManyThreads) {
  // Four threads hammer one filter with interleaved marks, lookups, and
  // time advances (which trigger racing rotations). The assertable
  // property under races is crash-/race-freedom plus the one-rotation
  // approximation: a flow marked continuously is always admitted, because
  // its marks are re-written every step and lookups only consult the
  // current vector.
  BitmapFilterConfig config;
  config.log2_bits = 14;
  config.rotate_interval = Duration::msec(50);
  ConcurrentBitmapFilter filter{config};

  constexpr int kThreads = 4;
  constexpr int kSteps = 20'000;
  std::atomic<std::uint64_t> rejected_hot{0};

  auto worker = [&](int id) {
    Rng rng{static_cast<std::uint64_t>(id) + 17};
    PacketRecord pkt;
    pkt.payload_size = 64;
    // Each thread owns one hot flow it re-marks before every probe.
    FiveTuple hot;
    hot.src_addr = Ipv4Addr{10, 0, 0, static_cast<std::uint8_t>(id + 1)};
    hot.src_port = static_cast<std::uint16_t>(20'000 + id);
    hot.dst_addr = Ipv4Addr{61, 1, 2, 3};
    hot.dst_port = 6881;
    for (int step = 0; step < kSteps; ++step) {
      const SimTime now =
          SimTime::from_usec(static_cast<std::int64_t>(step) * 100);
      filter.advance_time(now);
      pkt.timestamp = now;
      pkt.tuple = hot;
      filter.record_outbound(pkt);
      // Cold random traffic for contention.
      FiveTuple cold;
      cold.src_addr = Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())};
      cold.dst_addr = Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())};
      cold.src_port = static_cast<std::uint16_t>(rng.next_below(65536));
      cold.dst_port = static_cast<std::uint16_t>(rng.next_below(65536));
      pkt.tuple = cold;
      filter.record_outbound(pkt);
      pkt.tuple = hot.inverse();
      if (!filter.admits_inbound(pkt)) rejected_hot.fetch_add(1);
    }
  };

  std::vector<std::thread> threads;
  for (int id = 0; id < kThreads; ++id) threads.emplace_back(worker, id);
  for (std::thread& t : threads) t.join();

  // A mark racing one concurrent clear can be lost from that vector only;
  // re-marked-every-step flows may lose isolated probes but never a
  // meaningful fraction.
  EXPECT_LT(rejected_hot.load(),
            static_cast<std::uint64_t>(kThreads) * kSteps / 100);
  EXPECT_GT(filter.rotations(), 0u);
}

TEST(ConcurrencyStress, SharedFilterParallelReplayEndToEnd) {
  // Full engine under the race detector: partitioner thread + 4 workers
  // all driving one concurrent filter through SharedFilterView.
  CampusTraceConfig trace_config;
  trace_config.duration = Duration::sec(15.0);
  trace_config.connections_per_sec = 40.0;
  trace_config.bandwidth_bps = 8e6;
  trace_config.seed = 21;
  const GeneratedTrace trace = generate_campus_trace(trace_config);

  ConcurrentBitmapFilter shared{BitmapFilterConfig{}};
  const ShardRouterFactory factory = [&shared](const ClientNetwork& network,
                                               std::size_t shard) {
    EdgeRouterConfig config;
    config.network = network;
    config.track_blocked_connections = false;
    config.seed = shard_seed(3, shard);
    return std::make_unique<EdgeRouter>(
        config, std::make_unique<SharedFilterView>(shared),
        std::make_unique<ConstantDropPolicy>(1.0));
  };

  ParallelReplayConfig config;
  config.threads = 4;
  config.chunk_packets = 64;  // small chunks: maximal ring traffic
  config.ring_chunks = 4;
  const ParallelReplayResult result =
      parallel_replay(trace.packets, trace.network, factory, config);

  std::uint64_t routed = 0;
  for (const std::uint64_t count : result.shard_packets) routed += count;
  EXPECT_EQ(routed, trace.packets.size());
  const EdgeRouterStats& stats = result.merged.stats;
  EXPECT_EQ(stats.outbound_packets + stats.inbound_passed_packets +
                stats.inbound_dropped_packets +
                stats.suppressed_outbound_packets + stats.ignored_packets,
            trace.packets.size());
}

}  // namespace
}  // namespace upbound
