#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace upbound {
namespace {

TEST(SummaryStats, EmptyIsZero) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(SummaryStats, BasicMoments) {
  SummaryStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryStats, SingleSampleVarianceZero) {
  SummaryStats s;
  s.add(3.14);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.14);
}

TEST(SummaryStats, NegativeValues) {
  SummaryStats s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(CdfBuilder, PercentileInterpolates) {
  CdfBuilder cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(cdf.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(100), 100.0);
  EXPECT_NEAR(cdf.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(cdf.percentile(90), 90.1, 1e-9);
}

TEST(CdfBuilder, PercentileOnEmptyThrows) {
  CdfBuilder cdf;
  EXPECT_THROW(cdf.percentile(50), std::logic_error);
}

TEST(CdfBuilder, FractionBelow) {
  CdfBuilder cdf;
  for (double x : {1.0, 2.0, 3.0, 4.0}) cdf.add(x);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(2.0), 0.5);   // <= is inclusive
  EXPECT_DOUBLE_EQ(cdf.fraction_below(3.5), 0.75);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(10.0), 1.0);
}

TEST(CdfBuilder, UnsortedInsertOrderIrrelevant) {
  CdfBuilder a, b;
  for (double x : {5.0, 1.0, 3.0}) a.add(x);
  for (double x : {1.0, 3.0, 5.0}) b.add(x);
  EXPECT_DOUBLE_EQ(a.percentile(50), b.percentile(50));
}

TEST(CdfBuilder, CurveMonotone) {
  CdfBuilder cdf;
  for (int i = 0; i < 1000; ++i) cdf.add(static_cast<double>(i % 37));
  const auto curve = cdf.curve(20);
  ASSERT_EQ(curve.size(), 20u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
    EXPECT_GE(curve[i].first, curve[i - 1].first);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(100.0);  // clamps to bin 9
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, WeightedAdds) {
  Histogram h{0.0, 1.0, 2};
  h.add(0.25, 10);
  h.add(0.75, 30);
  EXPECT_EQ(h.bin(0), 10u);
  EXPECT_EQ(h.bin(1), 30u);
  EXPECT_EQ(h.total(), 40u);
}

TEST(Histogram, BinBoundaries) {
  Histogram h{10.0, 20.0, 5};
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 18.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 20.0);
}

TEST(Histogram, PercentileApproximation) {
  Histogram h{0.0, 100.0, 100};
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.percentile(50), 50.0, 1.0);
  EXPECT_NEAR(h.percentile(90), 90.0, 1.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 10), std::invalid_argument);
}

TEST(TimeSeries, BucketsByInterval) {
  TimeSeries ts{Duration::sec(1.0)};
  ts.add(SimTime::from_sec(0.1), 5.0);
  ts.add(SimTime::from_sec(0.9), 5.0);
  ts.add(SimTime::from_sec(1.5), 7.0);
  ts.add(SimTime::from_sec(4.0), 1.0);
  ASSERT_EQ(ts.bucket_count(), 5u);
  EXPECT_DOUBLE_EQ(ts.bucket_value(0), 10.0);
  EXPECT_DOUBLE_EQ(ts.bucket_value(1), 7.0);
  EXPECT_DOUBLE_EQ(ts.bucket_value(2), 0.0);
  EXPECT_DOUBLE_EQ(ts.bucket_value(4), 1.0);
  EXPECT_DOUBLE_EQ(ts.total(), 18.0);
}

TEST(TimeSeries, RatesScaleByWidth) {
  TimeSeries ts{Duration::sec(2.0)};
  ts.add(SimTime::from_sec(0.5), 8.0);
  const auto rates = ts.rates();
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 4.0);  // 8 units over a 2 s bucket
}

TEST(TimeSeries, BucketStart) {
  TimeSeries ts{Duration::sec(5.0)};
  ts.add(SimTime::from_sec(12.0), 1.0);
  EXPECT_EQ(ts.bucket_start(2), SimTime::from_sec(10.0));
}

TEST(TimeSeries, NegativeTimeIgnored) {
  TimeSeries ts{Duration::sec(1.0)};
  ts.add(SimTime::from_usec(-5), 1.0);
  EXPECT_EQ(ts.bucket_count(), 0u);
}

TEST(TimeSeries, RejectsNonPositiveWidth) {
  EXPECT_THROW(TimeSeries(Duration::usec(0)), std::invalid_argument);
}

TEST(Ewma, FirstSampleInitializes) {
  Ewma e{0.5};
  EXPECT_TRUE(e.empty());
  e.add(10.0);
  EXPECT_FALSE(e.empty());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, ConvergesTowardConstantInput) {
  Ewma e{0.25};
  e.add(0.0);
  for (int i = 0; i < 100; ++i) e.add(100.0);
  EXPECT_NEAR(e.value(), 100.0, 1e-6);
}

TEST(Ewma, AlphaOneTracksExactly) {
  Ewma e{1.0};
  e.add(3.0);
  e.add(7.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.0);
}

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_THROW(Ewma(0.0), std::invalid_argument);
  EXPECT_THROW(Ewma(1.5), std::invalid_argument);
}

TEST(FormatBitsPerSec, PicksUnits) {
  EXPECT_EQ(format_bits_per_sec(146.7e6), "146.70 Mbps");
  EXPECT_EQ(format_bits_per_sec(2.5e9), "2.50 Gbps");
  EXPECT_EQ(format_bits_per_sec(1200.0), "1.20 Kbps");
  EXPECT_EQ(format_bits_per_sec(42.0), "42 bps");
}

}  // namespace
}  // namespace upbound
