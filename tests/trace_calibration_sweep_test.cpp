// Multi-seed calibration sweep: the campus generator's Table 2 / Section
// 3.3 targets must hold across seeds, not just the seed the other tests
// use. Bands are wider than the single-seed tests because each trace is
// small; what is being asserted is that no seed drifts grossly.
#include <gtest/gtest.h>

#include <map>

#include "trace/campus.h"

namespace upbound {
namespace {

class CalibrationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CalibrationSweep, AggregatesHoldAcrossSeeds) {
  CampusTraceConfig config;
  config.duration = Duration::sec(25.0);
  config.connections_per_sec = 70.0;
  config.bandwidth_bps = 8e6;
  config.seed = GetParam();
  const GeneratedTrace trace = generate_campus_trace(config);

  ASSERT_TRUE(is_time_sorted(trace.packets));
  ASSERT_GT(trace.connection_count, 1000u);

  // Connection mix (ground truth).
  std::map<AppProtocol, std::size_t> conns;
  std::size_t udp = 0;
  for (const auto& [tuple, app] : trace.truth) {
    ++conns[app];
    if (tuple.protocol == Protocol::kUdp) ++udp;
  }
  const double total = static_cast<double>(trace.truth.size());
  EXPECT_NEAR(conns[AppProtocol::kBitTorrent] / total, 0.479, 0.10);
  EXPECT_NEAR(conns[AppProtocol::kEdonkey] / total, 0.220, 0.08);
  EXPECT_NEAR(udp / total, 0.69, 0.08);

  // Byte direction and protocol structure.
  std::uint64_t tcp_bytes = 0, all_bytes = 0;
  for (const auto& pkt : trace.packets) {
    all_bytes += pkt.wire_size();
    if (pkt.is_tcp()) tcp_bytes += pkt.wire_size();
  }
  EXPECT_GT(static_cast<double>(tcp_bytes) / static_cast<double>(all_bytes),
            0.98);
  const double upload =
      static_cast<double>(trace.outbound_bytes) /
      static_cast<double>(trace.outbound_bytes + trace.inbound_bytes);
  EXPECT_GT(upload, 0.75);
  EXPECT_LT(upload, 0.95);

  // Offered volume within a loose factor of the configured target.
  const double target_bytes = 8e6 * 25.0 / 8.0;
  EXPECT_GT(static_cast<double>(all_bytes), target_bytes * 0.5);
  EXPECT_LT(static_cast<double>(all_bytes), target_bytes * 2.2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalibrationSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 99),
                         [](const ::testing::TestParamInfo<std::uint64_t>&
                                info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace upbound
