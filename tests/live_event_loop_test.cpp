// Event-loop edge cases: coalesced timer expirations, EAGAIN/partial
// drains, runt/garbage frames, shutdown draining, and signalfd wiring.
// These are the failure modes that distinguish a datapath that happens
// to work on a quiet loopback from one that holds its invariants under
// scheduling jitter and hostile input.
#include "live_harness.h"

#include <gtest/gtest.h>

#include <csignal>
#include <thread>

#include "filter/bitmap_filter.h"
#include "filter/filter_registry.h"
#include "filter/params.h"

namespace upbound::live::testing {
namespace {

FilterSpec bitmap_spec(double dt_sec = 5.0) {
  MapFilterArgs args;
  args.set("bits", "14");
  args.set("dt", std::to_string(dt_sec));
  return FilterRegistry::instance().at("bitmap").parse(args);
}

TEST(EventLoop, CoalescedTimerExpirationsArriveAsOneCallback) {
  EventLoop loop;
  int callbacks = 0;
  std::uint64_t total_expirations = 0;
  loop.add_timer(Duration::msec(5), [&](std::uint64_t n) {
    ++callbacks;
    total_expirations += n;
  });
  // Sleep through several timer periods without polling: the kernel
  // accumulates expirations in the timerfd counter instead of queueing
  // events, and one read returns them all.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  loop.poll_once(0);
  EXPECT_EQ(callbacks, 1);
  EXPECT_GE(total_expirations, 2u);
}

TEST(EventLoop, SignalfdDeliversBlockedSignal) {
  EventLoop loop;
  int delivered = 0;
  int signo = 0;
  loop.add_signals({SIGUSR1}, [&](int s) {
    ++delivered;
    signo = s;
    loop.stop();
  });
  ::raise(SIGUSR1);
  loop.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(signo, SIGUSR1);
}

TEST(EventLoop, StopFromHandlerBreaksRun) {
  EventLoop loop;
  loop.add_timer(Duration::msec(1),
                 [&](std::uint64_t) { loop.stop(); });
  loop.run();  // must return rather than spin
  EXPECT_TRUE(loop.stopped());
}

TEST(LiveDatapath, CoalescedTicksRotateOncePerBoundary) {
  // The filter's rotation count must track Δt boundaries crossed, never
  // tick-callback counts: a loop stalled through N ticks and M rotation
  // boundaries does exactly M rotations when it wakes.
  VirtualClock clock;
  EventLoop loop;
  UdpTapSource::Config tap_config;
  tap_config.port = 0;
  auto source = std::make_unique<UdpTapSource>(tap_config);

  LiveConfig config;
  config.clock = &clock;
  config.tick = Duration::msec(2);
  LiveDatapath datapath{config, bitmap_spec(5.0), std::move(source), loop};
  const auto& bitmap =
      dynamic_cast<const BitmapFilter&>(datapath.router().filter());

  // Cross three rotation boundaries (5, 10, 15) in one jump, then let a
  // single (likely multi-expiration) tick fire.
  clock.advance_to(SimTime::from_sec(16.0));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  loop.poll_once(0);
  EXPECT_EQ(bitmap.rotations(), 3u);

  // More stalled ticks with no clock movement: no further rotations.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  loop.poll_once(0);
  EXPECT_EQ(bitmap.rotations(), 3u);
  EXPECT_GE(datapath.stats().ticks, 2u);
}

TEST(BitmapFilter, SetRotateIntervalReanchorsToLastBoundary) {
  BitmapFilterConfig config;
  config.log2_bits = 10;
  config.rotate_interval = Duration::sec(5.0);
  BitmapFilter filter{config};

  filter.advance_time(SimTime::from_sec(4.0));  // inside the first window
  EXPECT_EQ(filter.rotations(), 0u);
  // Retune 5s -> 1s: the schedule re-anchors on the new 1s grid but
  // clamps the first boundary strictly past the last observed clock
  // value (4s), so a shrink never retroactively expires state marked in
  // the current window with a burst of catch-up rotations.
  EXPECT_TRUE(filter.set_rotate_interval(Duration::sec(1.0)));
  filter.advance_time(SimTime::from_sec(4.0));
  EXPECT_EQ(filter.rotations(), 0u);
  filter.advance_time(SimTime::from_sec(5.0));
  EXPECT_EQ(filter.rotations(), 1u);
  filter.advance_time(SimTime::from_sec(7.5));
  EXPECT_EQ(filter.rotations(), 3u);
  EXPECT_THROW(filter.set_rotate_interval(Duration{}),
               std::invalid_argument);
}

TEST(LiveDatapath, PartialDrainsRespectBatchMaxAndLoseNothing) {
  // 10 datagrams through a batch_max of 4: the capture drain must stop
  // at the batch boundary, flush, and resume -- no frame skipped, no
  // oversized batch handed to the router.
  const GeneratedTrace& generated = conformance_trace();
  ASSERT_GE(generated.packets.size(), 10u);
  Trace slice{generated.packets.begin(), generated.packets.begin() + 10};

  LiveRunOptions options;
  options.batch_max = 4;
  options.burst = 10;
  const LiveRunOutput live =
      run_live_tap(slice, generated.network, bitmap_spec(), options);
  EXPECT_EQ(live.stats.packets, 10u);
  EXPECT_GE(live.stats.batches, 3u);
}

TEST(LiveDatapath, RuntAndGarbageFramesAreCountedNotCrashed) {
  VirtualClock clock;
  EventLoop loop;
  UdpTapSource::Config tap_config;
  tap_config.port = 0;
  auto source = std::make_unique<UdpTapSource>(tap_config);
  const std::uint16_t port = source->local_port();

  LiveConfig config;
  config.clock = &clock;
  LiveDatapath datapath{config, bitmap_spec(), std::move(source), loop};
  UdpTapSender sender{port};

  // A runt (< 10-byte record header), a record whose declared length
  // overruns the datagram, and a well-formed record carrying a garbage
  // frame the decoder rejects.
  const std::uint8_t runt[3] = {0xde, 0xad, 0xbe};
  std::uint8_t overrun[10] = {};  // header claims a 100-byte frame, no body
  overrun[8] = 100;
  std::uint8_t garbage[10 + 11] = {};  // timestamp 0, length 11, junk frame
  garbage[8] = 11;
  for (std::size_t i = 10; i < sizeof(garbage); ++i) {
    garbage[i] = static_cast<std::uint8_t>(i * 37);
  }
  sender.send_datagram(runt);
  sender.send_datagram(overrun);
  sender.send_datagram(garbage);
  const GeneratedTrace& generated = conformance_trace();
  sender.send_packet(generated.packets.front());  // one valid packet

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (datapath.source().frames_received() +
             datapath.source().malformed_inputs() <
         4) {
    loop.poll_once(1);
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
  }
  datapath.finalize();

  EXPECT_EQ(datapath.stats().malformed, 2u);
  EXPECT_EQ(datapath.stats().decode_errors, 1u);
  EXPECT_EQ(datapath.stats().packets, 1u);
}

TEST(LiveDatapath, ShutdownDrainsEverythingAlreadyQueued) {
  // Conservation under shutdown: frames sitting in the socket buffer
  // when drain_and_stop fires are still decoded, processed, and
  // reflected in the final result.
  const GeneratedTrace& generated = conformance_trace();
  ASSERT_GE(generated.packets.size(), 200u);

  VirtualClock clock;
  EventLoop loop;
  UdpTapSource::Config tap_config;
  tap_config.port = 0;
  auto source = std::make_unique<UdpTapSource>(tap_config);
  const std::uint16_t port = source->local_port();

  LiveConfig config;
  config.router.network = generated.network;
  config.clock = &clock;
  LiveDatapath datapath{config, bitmap_spec(), std::move(source), loop};
  UdpTapSender sender{port};
  for (std::size_t p = 0; p < 200; ++p) {
    sender.send_packet(generated.packets[p]);
  }
  // No polling: all 200 datagrams are still queued in the kernel when
  // the stop lands.
  datapath.drain_and_stop();

  EXPECT_TRUE(loop.stopped());
  EXPECT_EQ(datapath.stats().frames, 200u);
  EXPECT_EQ(datapath.stats().packets, 200u);
  EXPECT_EQ(datapath.stats().decode_errors, 0u);
}

TEST(LiveDatapath, MaxPacketsStopsTheLoop) {
  const GeneratedTrace& generated = conformance_trace();
  VirtualClock clock;
  EventLoop loop;
  UdpTapSource::Config tap_config;
  tap_config.port = 0;
  auto source = std::make_unique<UdpTapSource>(tap_config);
  const std::uint16_t port = source->local_port();

  LiveConfig config;
  config.router.network = generated.network;
  config.clock = &clock;
  config.max_packets = 50;
  LiveDatapath datapath{config, bitmap_spec(), std::move(source), loop};
  UdpTapSender sender{port};
  for (std::size_t p = 0; p < 80; ++p) {
    sender.send_packet(generated.packets[p]);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!loop.stopped()) {
    loop.poll_once(1);
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
  }
  EXPECT_GE(datapath.stats().packets, 50u);
}

}  // namespace
}  // namespace upbound::live::testing
