#include "filter/filter_registry.h"
#include "sim/edge_router.h"

#include <gtest/gtest.h>

#include "filter/bitmap_filter.h"
#include "filter/naive_filter.h"

namespace upbound {
namespace {

ClientNetwork campus() {
  return ClientNetwork{{*Cidr::parse("140.112.30.0/24")}};
}

FiveTuple out_conn(std::uint16_t sport = 40000) {
  return FiveTuple{Protocol::kTcp, Ipv4Addr{140, 112, 30, 5}, sport,
                   Ipv4Addr{61, 2, 3, 4}, 80};
}

FiveTuple in_conn(std::uint16_t speer = 12345) {
  return FiveTuple{Protocol::kTcp, Ipv4Addr{61, 2, 3, 4}, speer,
                   Ipv4Addr{140, 112, 30, 5}, 30000};
}

PacketRecord pkt(const FiveTuple& t, double t_sec,
                 std::uint32_t payload = 0) {
  PacketRecord p;
  p.timestamp = SimTime::from_sec(t_sec);
  p.tuple = t;
  p.flags.ack = true;
  p.payload_size = payload;
  return p;
}

std::unique_ptr<EdgeRouter> make_router(
    double drop_p = 1.0, bool blocklist = true,
    EdgeRouterConfig config = EdgeRouterConfig{}) {
  config.network = campus();
  config.track_blocked_connections = blocklist;
  BitmapFilterConfig filter_config;
  filter_config.log2_bits = 16;
  return std::make_unique<EdgeRouter>(
      config, make_state_filter(bitmap_filter_spec(filter_config)),
      std::make_unique<ConstantDropPolicy>(drop_p));
}

TEST(EdgeRouter, OutboundAlwaysPasses) {
  auto router = make_router();
  EXPECT_EQ(router->process(pkt(out_conn(), 0.0, 100)),
            RouterDecision::kPassedOutbound);
  EXPECT_EQ(router->stats().outbound_packets, 1u);
}

TEST(EdgeRouter, SolicitedInboundPasses) {
  auto router = make_router();
  router->process(pkt(out_conn(), 0.0, 10));
  EXPECT_EQ(router->process(pkt(out_conn().inverse(), 0.1, 500)),
            RouterDecision::kPassedInbound);
}

TEST(EdgeRouter, UnsolicitedInboundDroppedAtPdOne) {
  auto router = make_router(1.0);
  EXPECT_EQ(router->process(pkt(in_conn(), 0.0, 100)),
            RouterDecision::kDroppedByPolicy);
  EXPECT_EQ(router->stats().inbound_dropped_packets, 1u);
}

TEST(EdgeRouter, UnsolicitedInboundPassesAtPdZero) {
  auto router = make_router(0.0);
  EXPECT_EQ(router->process(pkt(in_conn(), 0.0, 100)),
            RouterDecision::kPassedInbound);
}

TEST(EdgeRouter, BlockedConnectionStaysBlocked) {
  auto router = make_router(1.0);
  router->process(pkt(in_conn(), 0.0, 100));  // dropped + blocked
  // Even the outbound reply direction of the blocked pair is suppressed.
  EXPECT_EQ(router->process(pkt(in_conn().inverse(), 0.1, 50)),
            RouterDecision::kDroppedBlocked);
  EXPECT_EQ(router->process(pkt(in_conn(), 0.2, 100)),
            RouterDecision::kDroppedBlocked);
  EXPECT_EQ(router->stats().suppressed_outbound_packets, 1u);
  EXPECT_EQ(router->stats().blocked_drops, 1u);
}

TEST(EdgeRouter, PaperReplaySemanticsKeepBlockedOutboundFlowing) {
  // suppress_blocked_outbound = false reproduces the paper's replay
  // limitation: the blocked connection's inbound packets drop, but its
  // outbound (upload) packets keep flowing and keep marking state.
  EdgeRouterConfig config;
  config.network = campus();
  config.track_blocked_connections = true;
  config.suppress_blocked_outbound = false;
  BitmapFilterConfig filter_config;
  filter_config.log2_bits = 16;
  EdgeRouter router{config, make_state_filter(bitmap_filter_spec(filter_config)),
                    std::make_unique<ConstantDropPolicy>(1.0)};

  router.process(pkt(in_conn(), 0.0, 100));  // dropped + blocked
  // Outbound reply direction still passes (paper replay semantics)...
  EXPECT_EQ(router.process(pkt(in_conn().inverse(), 0.1, 50)),
            RouterDecision::kPassedOutbound);
  EXPECT_EQ(router.stats().suppressed_outbound_packets, 0u);
  // ...and because it marked the bitmap, a subsequent inbound packet of
  // the pair would be admitted by the FILTER -- but the blocklist still
  // catches it first.
  EXPECT_EQ(router.process(pkt(in_conn(), 0.2, 100)),
            RouterDecision::kDroppedBlocked);
}

TEST(EdgeRouter, BlocklistDisabledRetriesConsultFilter) {
  auto router = make_router(1.0, /*blocklist=*/false);
  router->process(pkt(in_conn(), 0.0, 100));
  // The retry is evaluated afresh; having since sent outbound traffic on
  // the pair admits it.
  router->process(pkt(in_conn().inverse(), 0.1, 10));
  EXPECT_EQ(router->process(pkt(in_conn(), 0.2, 100)),
            RouterDecision::kPassedInbound);
}

TEST(EdgeRouter, LocalAndTransitIgnored) {
  auto router = make_router();
  FiveTuple local{Protocol::kTcp, Ipv4Addr{140, 112, 30, 1}, 1,
                  Ipv4Addr{140, 112, 30, 2}, 2};
  FiveTuple transit{Protocol::kTcp, Ipv4Addr{1, 1, 1, 1}, 1,
                    Ipv4Addr{2, 2, 2, 2}, 2};
  EXPECT_EQ(router->process(pkt(local, 0.0)), RouterDecision::kIgnored);
  EXPECT_EQ(router->process(pkt(transit, 0.1)), RouterDecision::kIgnored);
  EXPECT_EQ(router->stats().ignored_packets, 2u);
}

TEST(EdgeRouter, MeterSeesOutboundBytes) {
  auto router = make_router();
  router->process(pkt(out_conn(), 0.0, 10000));
  EXPECT_GT(router->uplink_bits_per_sec(SimTime::from_sec(0.5)), 0.0);
}

TEST(EdgeRouter, RedPolicyKicksInWithThroughput) {
  // L = 1 Kbps, H = 2 Kbps: one outbound packet saturates the ramp.
  EdgeRouterConfig config;
  config.network = campus();
  BitmapFilterConfig filter_config;
  filter_config.log2_bits = 16;
  EdgeRouter router{config, make_state_filter(bitmap_filter_spec(filter_config)),
                    std::make_unique<RedDropPolicy>(1e3, 2e3)};
  // Below L: unsolicited inbound passes.
  EXPECT_EQ(router.process(pkt(in_conn(1), 0.0, 100)),
            RouterDecision::kPassedInbound);
  // Push uplink above H.
  router.process(pkt(out_conn(), 0.1, 5000));
  EXPECT_EQ(router.process(pkt(in_conn(2), 0.2, 100)),
            RouterDecision::kDroppedByPolicy);
}

TEST(EdgeRouter, SeriesAccumulatePassedBytes) {
  auto router = make_router(0.0);
  router->process(pkt(out_conn(), 0.5, 1000));
  router->process(pkt(in_conn(), 1.5, 2000));
  const TimeSeries& out_series = router->passed_outbound_series();
  const TimeSeries& in_series = router->passed_inbound_series();
  ASSERT_GE(out_series.bucket_count(), 1u);
  EXPECT_DOUBLE_EQ(out_series.bucket_value(0), 1000.0 + 54.0);
  ASSERT_GE(in_series.bucket_count(), 2u);
  EXPECT_DOUBLE_EQ(in_series.bucket_value(1), 2000.0 + 54.0);
}

TEST(EdgeRouter, DropRateComputation) {
  auto router = make_router(1.0);
  router->process(pkt(out_conn(), 0.0, 10));
  router->process(pkt(out_conn().inverse(), 0.05, 10));  // solicited: pass
  router->process(pkt(in_conn(1), 0.1, 10));             // drop
  router->process(pkt(in_conn(2), 0.2, 10));             // drop
  EXPECT_DOUBLE_EQ(router->stats().inbound_drop_rate(), 2.0 / 3.0);
}

TEST(EdgeRouter, NullFilterRejected) {
  EdgeRouterConfig config;
  config.network = campus();
  EXPECT_THROW(EdgeRouter(config, nullptr,
                          std::make_unique<ConstantDropPolicy>(1.0)),
               std::invalid_argument);
  EXPECT_THROW(EdgeRouter(config,
                          make_state_filter(naive_filter_spec(NaiveFilterConfig{})),
                          nullptr),
               std::invalid_argument);
}

TEST(EdgeRouter, DropDecisionsDeterministicPerSeed) {
  auto run = [&](std::uint64_t seed) {
    EdgeRouterConfig config;
    config.network = campus();
    config.seed = seed;
    BitmapFilterConfig filter_config;
    filter_config.log2_bits = 16;
    EdgeRouter router{config,
                      make_state_filter(bitmap_filter_spec(filter_config)),
                      std::make_unique<ConstantDropPolicy>(0.5)};
    std::string decisions;
    for (int i = 0; i < 64; ++i) {
      decisions += router.process(pkt(in_conn(static_cast<std::uint16_t>(
                                          1000 + i)),
                                      i * 0.01, 10)) ==
                           RouterDecision::kDroppedByPolicy
                       ? 'D'
                       : 'P';
    }
    return decisions;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace upbound
