// FilterRegistry: the single seam between backend existence and backend
// construction. These tests pin the registry contract every consumer
// (CLI, filter bank, parallel replay, attack evaluator, snapshot
// dispatch, test enumeration) relies on: stable names and registration
// order, capability bits that match each backend's actual behavior,
// argument parsing with typed errors, and factories that build working
// filters.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <stdexcept>

#include "filter/filter_registry.h"

namespace upbound {
namespace {

TEST(FilterRegistry, RegistersTheFullBackendZoo) {
  const std::vector<std::string> names = FilterRegistry::instance().names();
  const std::vector<std::string> expected{
      "bitmap",    "bitmap-mt", "bitmap-blocked", "aging",     "spi",
      "naive",     "retouched", "counting",       "hierarchical"};
  EXPECT_EQ(names, expected);
  EXPECT_EQ(FilterRegistry::instance().names_joined("|"),
            "bitmap|bitmap-mt|bitmap-blocked|aging|spi|naive|retouched|"
            "counting|hierarchical");
}

TEST(FilterRegistry, FindAndAtAgreeAndUnknownNamesAreTypedErrors) {
  const FilterRegistry& registry = FilterRegistry::instance();
  EXPECT_NE(registry.find("bitmap"), nullptr);
  EXPECT_EQ(registry.find("quantum"), nullptr);
  EXPECT_EQ(&registry.at("counting"), registry.find("counting"));
  try {
    registry.at("quantum");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error names the alternatives so CLI messages stay current.
    EXPECT_NE(std::string{e.what()}.find("bitmap"), std::string::npos);
    EXPECT_NE(std::string{e.what()}.find("counting"), std::string::npos);
  }
}

TEST(FilterRegistry, CapabilityBitsMatchBackendBehavior) {
  const FilterRegistry& registry = FilterRegistry::instance();
  const BackendDescriptor& bitmap = registry.at("bitmap");
  EXPECT_TRUE(bitmap.has(kCapOccupancy));
  EXPECT_TRUE(bitmap.has(kCapSnapshot));
  EXPECT_TRUE(bitmap.has(kCapSharedView));
  EXPECT_TRUE(bitmap.has(kCapPureLookup));
  EXPECT_TRUE(bitmap.has(kCapNoFalseNegative));
  EXPECT_FALSE(bitmap.has(kCapDeletion));

  // Only the plain bitmap speaks the snapshot format.
  for (const BackendDescriptor& backend : registry.descriptors()) {
    EXPECT_EQ(backend.has(kCapSnapshot), backend.name == "bitmap")
        << backend.name;
  }
  // Only the concurrent-capable bitmaps may be shared across shards.
  for (const BackendDescriptor& backend : registry.descriptors()) {
    EXPECT_EQ(backend.has(kCapSharedView),
              backend.name == "bitmap" || backend.name == "bitmap-mt")
        << backend.name;
  }

  // Retouching deliberately trades the paper's core guarantee away.
  EXPECT_FALSE(registry.at("retouched").has(kCapNoFalseNegative));
  EXPECT_TRUE(registry.at("retouched").has(kCapOccupancy));

  // Counting is the only backend with per-tuple deletion.
  for (const BackendDescriptor& backend : registry.descriptors()) {
    EXPECT_EQ(backend.has(kCapDeletion), backend.name == "counting")
        << backend.name;
  }

  // Only the word-addressed bitmaps digest keys through the batch hash
  // kernel; their verdicts must be identical with SIMD on or off (pinned
  // by the differential tests in filter_blocked_simd_test).
  for (const BackendDescriptor& backend : registry.descriptors()) {
    EXPECT_EQ(backend.has(kCapSimdBatch),
              backend.name == "bitmap" || backend.name == "bitmap-blocked")
        << backend.name;
  }

  // The aging ring has no Eq. 2 occupancy signal; SPI refreshes state on
  // lookup so its lookups are not pure.
  EXPECT_FALSE(registry.at("aging").has(kCapOccupancy));
  EXPECT_FALSE(registry.at("spi").has(kCapPureLookup));
}

TEST(FilterRegistry, EveryFactoryBuildsAWorkingFilter) {
  for (const BackendDescriptor& backend :
       FilterRegistry::instance().descriptors()) {
    const FilterSpec spec = backend.parse(MapFilterArgs{});
    EXPECT_EQ(spec.backend, &backend);
    const std::unique_ptr<StateFilter> filter = make_state_filter(spec);
    ASSERT_NE(filter, nullptr) << backend.name;
    // The occupancy capability bit is exactly "occupancy_fraction()
    // returns a value".
    EXPECT_EQ(filter->occupancy_fraction().has_value(),
              backend.has(kCapOccupancy))
        << backend.name;
    // Pure-lookup capability mirrors the filter's own declaration.
    EXPECT_EQ(filter->inbound_lookup_is_pure(), backend.has(kCapPureLookup))
        << backend.name;
  }
}

TEST(FilterRegistry, ParseMapsArgumentsIntoValidatedConfigs) {
  MapFilterArgs args;
  args.set("bits", "12").set("k", "3").set("m", "2").set("dt", "2.5");
  args.set_flag("hole-punching");
  const FilterSpec spec = FilterRegistry::instance().parse("bitmap", args);
  const BitmapFilterConfig& config = spec.config_as<BitmapFilterConfig>();
  EXPECT_EQ(config.log2_bits, 12u);
  EXPECT_EQ(config.vector_count, 3u);
  EXPECT_EQ(config.hash_count, 2u);
  EXPECT_EQ(config.rotate_interval, Duration::sec(2.5));
  EXPECT_EQ(config.key_mode, KeyMode::kHolePunching);
}

TEST(FilterRegistry, BadArgumentsAreInvalidArgument) {
  MapFilterArgs garbage;
  garbage.set("bits", "not-a-number");
  EXPECT_THROW(FilterRegistry::instance().parse("bitmap", garbage),
               std::invalid_argument);

  MapFilterArgs invalid;
  invalid.set("k", "1");  // fewer than 2 vectors cannot rotate safely
  EXPECT_THROW(FilterRegistry::instance().parse("bitmap", invalid),
               std::invalid_argument);

  MapFilterArgs fraction;
  fraction.set("retouch-fraction", "0.9");  // >= 0.5 rejected
  EXPECT_THROW(FilterRegistry::instance().parse("retouched", fraction),
               std::invalid_argument);
}

TEST(FilterRegistry, ConfigAsIsTypeChecked) {
  const FilterSpec spec =
      FilterRegistry::instance().parse("counting", MapFilterArgs{});
  EXPECT_NO_THROW(spec.config_as<CountingFilterConfig>());
  EXPECT_THROW(spec.config_as<BitmapFilterConfig>(), std::logic_error);
}

TEST(FilterRegistry, GeometryAndWindowHooks) {
  const FilterRegistry& registry = FilterRegistry::instance();

  MapFilterArgs args;
  args.set("bits", "14").set("k", "4").set("m", "3").set("dt", "5");
  const FilterSpec bitmap = registry.parse("bitmap", args);
  const std::optional<FilterGeometry> geometry =
      registry.at("bitmap").geometry(bitmap);
  ASSERT_TRUE(geometry.has_value());
  EXPECT_EQ(geometry->bits, std::size_t{1} << 14);
  EXPECT_EQ(geometry->hash_count, 3u);
  EXPECT_EQ(geometry->vector_count, 4u);
  EXPECT_EQ(geometry->rotate_interval, Duration::sec(5.0));
  // Guaranteed no-FN window of a generational backend: (k-1)*dt.
  EXPECT_EQ(registry.at("bitmap").guaranteed_window(bitmap),
            Duration::sec(15.0));

  const FilterSpec counting = registry.parse("counting", args);
  EXPECT_TRUE(registry.at("counting").geometry(counting).has_value());
  EXPECT_EQ(registry.at("counting").guaranteed_window(counting),
            Duration::sec(15.0));

  // Exact-state backends have no Bloom geometry; their window is the
  // configured timeout.
  MapFilterArgs timeout;
  timeout.set("timeout", "30");
  const FilterSpec naive = registry.parse("naive", timeout);
  EXPECT_FALSE(registry.at("naive").geometry(naive).has_value());
  EXPECT_EQ(registry.at("naive").guaranteed_window(naive),
            Duration::sec(30.0));
}

TEST(FilterRegistry, TypedSpecBuildersMatchParse) {
  BitmapFilterConfig config;
  config.log2_bits = 12;
  const FilterSpec spec = bitmap_filter_spec(config);
  EXPECT_EQ(spec.kind(), "bitmap");
  EXPECT_EQ(spec.config_as<BitmapFilterConfig>().log2_bits, 12u);

  CountingFilterConfig counting;
  counting.log2_cells = 10;
  const FilterSpec counting_spec = counting_filter_spec(counting);
  EXPECT_EQ(counting_spec.kind(), "counting");
  EXPECT_EQ(counting_spec.config_as<CountingFilterConfig>().log2_cells, 10u);

  RetouchedBitmapConfig retouched;
  retouched.retouch_fraction = 0.05;
  const FilterSpec retouched_spec = retouched_filter_spec(retouched);
  EXPECT_EQ(retouched_spec.kind(), "retouched");
  EXPECT_DOUBLE_EQ(
      retouched_spec.config_as<RetouchedBitmapConfig>().retouch_fraction,
      0.05);
}

TEST(FilterArgs, TypedAccessorsFallBackAndRejectGarbage) {
  MapFilterArgs args;
  args.set("good", "2.5").set("bad", "2.5x").set("count", "7");
  EXPECT_DOUBLE_EQ(args.get_double("good", 1.0), 2.5);
  EXPECT_DOUBLE_EQ(args.get_double("absent", 1.0), 1.0);
  EXPECT_EQ(args.get_u64("count", 0), 7u);
  EXPECT_EQ(args.get_unsigned("count", 0), 7u);
  EXPECT_THROW(args.get_double("bad", 1.0), std::invalid_argument);
  EXPECT_THROW(args.get_u64("good", 0), std::invalid_argument);
}

TEST(FilterRegistry, DistinctFilterInstancesPerMakeCall) {
  // Parallel replay builds one filter per shard from the same spec; the
  // factory must never hand out shared state.
  const FilterSpec spec =
      FilterRegistry::instance().parse("counting", MapFilterArgs{});
  const auto a = make_state_filter(spec);
  const auto b = make_state_filter(spec);
  PacketRecord pkt;
  pkt.timestamp = SimTime::from_sec(1.0);
  pkt.tuple = FiveTuple{Protocol::kUdp, Ipv4Addr{140, 112, 30, 5}, 1111,
                        Ipv4Addr{8, 8, 8, 8}, 53};
  a->advance_time(pkt.timestamp);
  a->record_outbound(pkt);
  PacketRecord probe = pkt;
  probe.tuple = pkt.tuple.inverse();
  a->advance_time(probe.timestamp);
  b->advance_time(probe.timestamp);
  EXPECT_TRUE(a->admits_inbound(probe));
  EXPECT_FALSE(b->admits_inbound(probe));
}

}  // namespace
}  // namespace upbound
