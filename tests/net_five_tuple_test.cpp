#include "net/five_tuple.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace upbound {
namespace {

FiveTuple sample_tuple() {
  return FiveTuple{Protocol::kTcp, Ipv4Addr{140, 112, 30, 5}, 34567,
                   Ipv4Addr{61, 2, 3, 4}, 6881};
}

TEST(FiveTuple, InverseSwapsEndpoints) {
  const FiveTuple t = sample_tuple();
  const FiveTuple inv = t.inverse();
  EXPECT_EQ(inv.src_addr, t.dst_addr);
  EXPECT_EQ(inv.src_port, t.dst_port);
  EXPECT_EQ(inv.dst_addr, t.src_addr);
  EXPECT_EQ(inv.dst_port, t.src_port);
  EXPECT_EQ(inv.protocol, t.protocol);
  EXPECT_EQ(inv.inverse(), t);
}

TEST(FiveTuple, CanonicalIsDirectionIndependent) {
  const FiveTuple t = sample_tuple();
  EXPECT_EQ(t.canonical(), t.inverse().canonical());
}

TEST(FiveTuple, CanonicalIsIdempotent) {
  const FiveTuple t = sample_tuple();
  EXPECT_EQ(t.canonical().canonical(), t.canonical());
}

TEST(FiveTuple, CanonicalOrdersByAddressThenPort) {
  FiveTuple t{Protocol::kUdp, Ipv4Addr{10, 0, 0, 1}, 9999,
              Ipv4Addr{10, 0, 0, 1}, 53};
  // Same address: the smaller port goes first.
  EXPECT_EQ(t.canonical().src_port, 53);
}

TEST(FiveTuple, ToStringFormat) {
  EXPECT_EQ(sample_tuple().to_string(),
            "TCP 140.112.30.5:34567 -> 61.2.3.4:6881");
}

TEST(FiveTuple, ProtocolNames) {
  EXPECT_STREQ(protocol_name(Protocol::kTcp), "TCP");
  EXPECT_STREQ(protocol_name(Protocol::kUdp), "UDP");
}

TEST(TupleKey, LayoutIsNetworkOrder) {
  std::uint8_t key[kTupleKeySize];
  encode_tuple_key(sample_tuple(), key);
  EXPECT_EQ(key[0], 6);      // TCP
  EXPECT_EQ(key[1], 140);    // src address big-endian
  EXPECT_EQ(key[4], 5);
  EXPECT_EQ(key[5], 34567 >> 8);
  EXPECT_EQ(key[6], 34567 & 0xff);
  EXPECT_EQ(key[7], 61);     // dst address
  EXPECT_EQ(key[11], 6881 >> 8);
  EXPECT_EQ(key[12], 6881 & 0xff);
}

TEST(TupleHash, DirectionSensitive) {
  const FiveTuple t = sample_tuple();
  EXPECT_NE(tuple_hash(t), tuple_hash(t.inverse()));
}

TEST(TupleHash, SeedSeparates) {
  const FiveTuple t = sample_tuple();
  EXPECT_NE(tuple_hash(t, 0), tuple_hash(t, 1));
}

TEST(TupleHash, StableAcrossCalls) {
  const FiveTuple t = sample_tuple();
  EXPECT_EQ(tuple_hash(t), tuple_hash(t));
}

TEST(TupleHash, SensitiveToEveryField) {
  const FiveTuple base = sample_tuple();
  const std::uint64_t h0 = tuple_hash(base);

  FiveTuple t = base;
  t.protocol = Protocol::kUdp;
  EXPECT_NE(tuple_hash(t), h0);

  t = base;
  t.src_addr = Ipv4Addr{140, 112, 30, 6};
  EXPECT_NE(tuple_hash(t), h0);

  t = base;
  t.src_port ^= 1;
  EXPECT_NE(tuple_hash(t), h0);

  t = base;
  t.dst_addr = Ipv4Addr{61, 2, 3, 5};
  EXPECT_NE(tuple_hash(t), h0);

  t = base;
  t.dst_port ^= 1;
  EXPECT_NE(tuple_hash(t), h0);
}

TEST(TupleHashers, UnorderedSetUsage) {
  std::unordered_set<FiveTuple, FiveTupleHash> directional;
  directional.insert(sample_tuple());
  EXPECT_TRUE(directional.contains(sample_tuple()));
  EXPECT_FALSE(directional.contains(sample_tuple().inverse()));

  std::unordered_set<FiveTuple, CanonicalTupleHash, CanonicalTupleEq> conns;
  conns.insert(sample_tuple());
  EXPECT_TRUE(conns.contains(sample_tuple()));
  EXPECT_TRUE(conns.contains(sample_tuple().inverse()));
  conns.insert(sample_tuple().inverse());
  EXPECT_EQ(conns.size(), 1u);
}

}  // namespace
}  // namespace upbound
