#include "analyzer/netflow.h"

#include <gtest/gtest.h>

#include "analyzer/analyzer.h"
#include "trace/campus.h"

namespace upbound {
namespace {

ConnectionRecord sample_record() {
  ConnectionRecord rec;
  rec.tuple = FiveTuple{Protocol::kTcp, Ipv4Addr{140, 112, 30, 5}, 40000,
                        Ipv4Addr{61, 2, 3, 4}, 6881};
  rec.first_packet_time = SimTime::from_sec(1.5);
  rec.last_packet_time = SimTime::from_sec(42.25);
  rec.saw_syn = true;
  rec.closed = true;
  rec.packets_from_initiator = 100;
  rec.bytes_from_initiator = 14'000;
  rec.packets_to_initiator = 900;
  rec.bytes_to_initiator = 1'300'000;
  return rec;
}

TEST(NetflowFlowsOf, BidirectionalConnectionGivesTwoFlows) {
  const auto flows = flows_of(sample_record());
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].src_addr, Ipv4Addr(140, 112, 30, 5));
  EXPECT_EQ(flows[0].dst_port, 6881);
  EXPECT_EQ(flows[0].packets, 100u);
  EXPECT_EQ(flows[0].octets, 14'000u);
  EXPECT_EQ(flows[0].first_ms, 1500u);
  EXPECT_EQ(flows[0].last_ms, 42'250u);
  EXPECT_EQ(flows[0].tcp_flags, 0x03);  // SYN + FIN observed
  EXPECT_EQ(flows[1].src_addr, Ipv4Addr(61, 2, 3, 4));
  EXPECT_EQ(flows[1].octets, 1'300'000u);
  EXPECT_EQ(flows[1].protocol, 6);
}

TEST(NetflowFlowsOf, OneWayConnectionGivesOneFlow) {
  ConnectionRecord rec = sample_record();
  rec.packets_to_initiator = 0;
  rec.bytes_to_initiator = 0;
  EXPECT_EQ(flows_of(rec).size(), 1u);
}

TEST(NetflowFlowsOf, HugeCountersClamp) {
  ConnectionRecord rec = sample_record();
  rec.bytes_from_initiator = 10'000'000'000ULL;  // > 2^32
  const auto flows = flows_of(rec);
  EXPECT_EQ(flows[0].octets, 0xffffffffu);
}

TEST(NetflowCodec, RoundTrip) {
  const auto flows = flows_of(sample_record());
  const auto payload = encode_netflow_v5(flows, 1234);
  EXPECT_EQ(payload.size(),
            kNetflowV5HeaderSize + flows.size() * kNetflowV5RecordSize);

  const auto decoded = decode_netflow_v5(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sequence, 1234u);
  ASSERT_EQ(decoded->records.size(), flows.size());
  EXPECT_EQ(decoded->records[0], flows[0]);
  EXPECT_EQ(decoded->records[1], flows[1]);
}

TEST(NetflowCodec, WireFormatIsBigEndianV5) {
  const auto payload = encode_netflow_v5({}, 0);
  ASSERT_EQ(payload.size(), kNetflowV5HeaderSize);
  EXPECT_EQ(payload[0], 0);  // version 5 big-endian
  EXPECT_EQ(payload[1], 5);
  EXPECT_EQ(payload[2], 0);  // count 0
  EXPECT_EQ(payload[3], 0);
}

TEST(NetflowCodec, RejectsMalformed) {
  EXPECT_FALSE(decode_netflow_v5({}).has_value());
  auto payload = encode_netflow_v5(flows_of(sample_record()), 0);
  payload[1] = 9;  // version 9
  EXPECT_FALSE(decode_netflow_v5(payload).has_value());
  payload[1] = 5;
  payload.pop_back();  // truncated record
  EXPECT_FALSE(decode_netflow_v5(payload).has_value());
  payload.push_back(0);
  payload.push_back(0);  // trailing garbage
  EXPECT_FALSE(decode_netflow_v5(payload).has_value());
}

TEST(NetflowCodec, TooManyRecordsThrows) {
  std::vector<FlowRecordV5> many(31);
  EXPECT_THROW(encode_netflow_v5(many, 0), std::invalid_argument);
}

TEST(NetflowExport, FullTableChunksAndSequences) {
  CampusTraceConfig config;
  config.duration = Duration::sec(8.0);
  config.connections_per_sec = 40.0;
  config.bandwidth_bps = 2e6;
  config.seed = 9;
  const GeneratedTrace trace = generate_campus_trace(config);

  TrafficAnalyzer analyzer{trace.network};
  for (const PacketRecord& pkt : trace.packets) analyzer.process(pkt);

  const auto packets = export_netflow_v5(analyzer.connections());
  ASSERT_GT(packets.size(), 1u);

  std::size_t flows = 0;
  std::uint32_t expected_sequence = 0;
  std::uint64_t octets = 0;
  for (const auto& payload : packets) {
    const auto decoded = decode_netflow_v5(payload);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->sequence, expected_sequence);
    expected_sequence += static_cast<std::uint32_t>(decoded->records.size());
    flows += decoded->records.size();
    for (const auto& record : decoded->records) octets += record.octets;
    EXPECT_LE(decoded->records.size(), kNetflowV5MaxRecordsPerPacket);
  }
  // Every connection contributed 1-2 flows.
  EXPECT_GE(flows, trace.connection_count);
  EXPECT_LE(flows, 2 * trace.connection_count);
  // Byte conservation across the export.
  EXPECT_EQ(octets, trace.outbound_bytes + trace.inbound_bytes);
}

}  // namespace
}  // namespace upbound
