// Property pass over the bitmap filter stack.
//
// The load-bearing invariant is the paper's no-false-negative guarantee:
// rotation clears the OLDEST vector (Algorithm 1), so the current vector
// at lookup time t' was last cleared at R(t') - (k-1)*dt, where R(t') is
// the last rotation at or before t'. Any outbound mark at tm with
//
//     tm >= R(t') - (k-1)*dt
//
// is therefore still present -- solicited inbound traffic inside the
// guaranteed window of (k-1)*dt (and up to k*dt depending on phase) is
// always admitted. We drive randomized workloads against an exact
// reference model of that visibility rule and assert:
//
//   - model says visible  -> filter admits (the hard guarantee), and
//   - model says expired  -> filter rejects (no false positives at this
//     bitmap size: ~hundreds of marks in 2^20 bits makes the Bloom FP
//     probability ~1e-11, and the workload is seed-fixed, so this holds
//     deterministically),
//
// for both the scalar and batch entry points, on both BitmapFilter and
// (single-threaded) ConcurrentBitmapFilter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "filter/bitmap_filter.h"
#include "filter/concurrent_bitmap.h"
#include "net/packet.h"
#include "util/rng.h"

namespace upbound {
namespace {

constexpr double kDt = 5.0;
constexpr unsigned kVectors = 4;  // k

BitmapFilterConfig property_config() {
  BitmapFilterConfig config;
  config.log2_bits = 20;
  config.vector_count = kVectors;
  config.hash_count = 3;
  config.rotate_interval = Duration::sec(kDt);
  return config;
}

PacketRecord packet_at(double sec, const FiveTuple& tuple) {
  PacketRecord pkt;
  pkt.timestamp = SimTime::from_sec(sec);
  pkt.tuple = tuple;
  pkt.payload_size = 100;
  return pkt;
}

/// A client<->peer connection: outbound packets carry `out`, inbound
/// packets carry out.inverse() (sender-first, as on the wire).
struct Flow {
  FiveTuple out;
  double last_mark = -1.0;  // seconds; < 0 = never marked
};

std::vector<Flow> make_flows(std::size_t n, Rng& rng) {
  std::vector<Flow> flows;
  flows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Flow flow;
    flow.out.protocol = rng.next_bool(0.7) ? Protocol::kTcp : Protocol::kUdp;
    flow.out.src_addr = Ipv4Addr{140, 112, 30,
                                 static_cast<std::uint8_t>(1 + i % 250)};
    flow.out.src_port = static_cast<std::uint16_t>(10'000 + i);
    flow.out.dst_addr =
        Ipv4Addr{static_cast<std::uint32_t>(0x3D000000u + 7919 * i)};
    flow.out.dst_port = static_cast<std::uint16_t>(1024 + (i * 31) % 50'000);
    flows.push_back(flow);
  }
  return flows;
}

/// Last rotation at or before t (rotations fire at dt, 2dt, ... from the
/// origin); the current vector was cleared (k-1)*dt earlier.
double window_floor(double t) {
  const double rotation = std::floor(t / kDt) * kDt;
  return rotation - (kVectors - 1) * kDt;
}

/// The exact reference verdict. Marks exactly on the window floor survive:
/// advance_time rotates (clearing) before the mark is written.
bool model_visible(const Flow& flow, double t) {
  return flow.last_mark >= 0.0 && flow.last_mark >= window_floor(t);
}

/// One randomized scalar workload against `filter`, checking every lookup
/// against the model. Returns (visible checks, expired checks) so callers
/// can assert the workload exercised both sides.
std::pair<int, int> drive_scalar(StateFilter& filter, Rng& rng) {
  std::vector<Flow> flows = make_flows(120, rng);
  int visible = 0;
  int expired = 0;
  double now = 0.0;
  for (int step = 0; step < 8000; ++step) {
    now += rng.exponential(0.04);  // ~320 s total: many full expiry cycles
    Flow& flow = flows[rng.next_below(flows.size())];
    // Model time is the microsecond-truncated packet time -- exactly what
    // the filter sees -- so boundary comparisons can never disagree by a
    // sub-microsecond rounding artifact.
    const double t = SimTime::from_sec(now).sec();
    filter.advance_time(SimTime::from_sec(now));
    if (rng.next_bool(0.4)) {
      filter.record_outbound(packet_at(now, flow.out));
      flow.last_mark = t;
    } else {
      const bool admitted =
          filter.admits_inbound(packet_at(now, flow.out.inverse()));
      if (model_visible(flow, t)) {
        EXPECT_TRUE(admitted)
            << "false negative: mark at " << flow.last_mark << "s, lookup at "
            << t << "s, window floor " << window_floor(t) << "s";
        ++visible;
      } else {
        EXPECT_FALSE(admitted)
            << "unexpected admit (mark at " << flow.last_mark
            << "s, lookup at " << t << "s)";
        ++expired;
      }
    }
  }
  return {visible, expired};
}

TEST(FilterProperty, BitmapNoFalseNegativeWithinGuaranteedWindow) {
  BitmapFilter filter{property_config()};
  Rng rng{2024};
  const auto [visible, expired] = drive_scalar(filter, rng);
  // The workload must actually exercise both regimes.
  EXPECT_GT(visible, 500);
  EXPECT_GT(expired, 300);
}

TEST(FilterProperty, ConcurrentBitmapMatchesSameModelSingleThreaded) {
  ConcurrentBitmapFilter filter{property_config()};
  Rng rng{2024};  // same workload as the plain bitmap run
  const auto [visible, expired] = drive_scalar(filter, rng);
  EXPECT_GT(visible, 500);
  EXPECT_GT(expired, 300);
}

TEST(FilterProperty, BatchPathObeysTheSameInvariant) {
  // Same invariant through the batch entry points: time-sorted outbound
  // runs via record_outbound_batch, inbound runs via admits_inbound_batch,
  // with rotation boundaries landing inside batches.
  BitmapFilter filter{property_config()};
  Rng rng{77};
  std::vector<Flow> flows = make_flows(80, rng);

  double now = 0.0;
  int visible = 0;
  int expired = 0;
  for (int round = 0; round < 300; ++round) {
    // Outbound burst.
    std::vector<PacketRecord> out_batch;
    const std::size_t out_n = 1 + rng.next_below(40);
    for (std::size_t i = 0; i < out_n; ++i) {
      now += rng.exponential(0.03);
      Flow& flow = flows[rng.next_below(flows.size())];
      out_batch.push_back(packet_at(now, flow.out));
      flow.last_mark = out_batch.back().timestamp.sec();
    }
    filter.record_outbound_batch(
        PacketBatch{out_batch.data(), out_batch.size()});

    // Inbound burst, each verdict checked against the model.
    std::vector<PacketRecord> in_batch;
    std::vector<const Flow*> probed;
    const std::size_t in_n = 1 + rng.next_below(40);
    for (std::size_t i = 0; i < in_n; ++i) {
      now += rng.exponential(0.03);
      const Flow& flow = flows[rng.next_below(flows.size())];
      in_batch.push_back(packet_at(now, flow.out.inverse()));
      probed.push_back(&flow);
    }
    std::unique_ptr<bool[]> admits{new bool[in_batch.size()]};
    filter.admits_inbound_batch(PacketBatch{in_batch.data(), in_batch.size()},
                                std::span<bool>{admits.get(), in_batch.size()});
    for (std::size_t i = 0; i < in_batch.size(); ++i) {
      const double t = in_batch[i].timestamp.sec();
      if (model_visible(*probed[i], t)) {
        EXPECT_TRUE(admits[i]) << "batch false negative at " << t << "s";
        ++visible;
      } else {
        EXPECT_FALSE(admits[i]) << "batch false positive at " << t << "s";
        ++expired;
      }
    }
  }
  EXPECT_GT(visible, 300);
  EXPECT_GT(expired, 150);
}

TEST(FilterProperty, ScalarAndBatchDecisionsIdentical) {
  // Differential: the batch fast path must be bit-identical to the scalar
  // ground truth on the same packet sequence (the StateFilter contract).
  BitmapFilter scalar_filter{property_config()};
  BitmapFilter batch_filter{property_config()};
  ConcurrentBitmapFilter concurrent_filter{property_config()};
  Rng rng{555};
  std::vector<Flow> flows = make_flows(60, rng);

  double now = 0.0;
  for (int round = 0; round < 200; ++round) {
    const bool outbound = rng.next_bool(0.5);
    std::vector<PacketRecord> batch;
    const std::size_t n = 1 + rng.next_below(90);
    for (std::size_t i = 0; i < n; ++i) {
      now += rng.exponential(0.015);
      const Flow& flow = flows[rng.next_below(flows.size())];
      batch.push_back(
          packet_at(now, outbound ? flow.out : flow.out.inverse()));
    }
    const PacketBatch span{batch.data(), batch.size()};
    if (outbound) {
      for (const PacketRecord& pkt : batch) {
        scalar_filter.advance_time(pkt.timestamp);
        scalar_filter.record_outbound(pkt);
      }
      batch_filter.record_outbound_batch(span);
      concurrent_filter.record_outbound_batch(span);
    } else {
      std::unique_ptr<bool[]> batch_admits{new bool[batch.size()]};
      std::unique_ptr<bool[]> concurrent_admits{new bool[batch.size()]};
      batch_filter.admits_inbound_batch(
          span, std::span<bool>{batch_admits.get(), batch.size()});
      concurrent_filter.admits_inbound_batch(
          span, std::span<bool>{concurrent_admits.get(), batch.size()});
      for (std::size_t i = 0; i < batch.size(); ++i) {
        scalar_filter.advance_time(batch[i].timestamp);
        const bool scalar = scalar_filter.admits_inbound(batch[i]);
        ASSERT_EQ(scalar, batch_admits[i])
            << "scalar/batch divergence at packet " << i << " of round "
            << round;
        // Driven single-threaded, the concurrent variant is bit-identical
        // to the sequential bitmap too.
        ASSERT_EQ(scalar, concurrent_admits[i])
            << "bitmap/concurrent divergence at packet " << i << " of round "
            << round;
      }
    }
  }
}

}  // namespace
}  // namespace upbound
