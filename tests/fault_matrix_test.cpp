// The fault matrix: every fault kind drives the supervised parallel
// replay engine to a *reproducible* result -- same (trace, spec, seed,
// shards) twice gives byte-identical stats and deterministic metrics --
// and the non-destructive kinds (stall, ring-overflow) leave the result
// identical to a fault-free run.
#include <gtest/gtest.h>

#include "fault/fault_injector.h"
#include "filter/bitmap_filter.h"
#include "filter/drop_policy.h"
#include "filter/filter_registry.h"
#include "filter/spi_filter.h"
#include "sim/parallel_replay.h"
#include "trace/campus.h"

namespace upbound {
namespace {

const GeneratedTrace& shared_trace() {
  static const GeneratedTrace trace = [] {
    CampusTraceConfig config;
    config.duration = Duration::sec(20.0);
    config.connections_per_sec = 50.0;
    config.bandwidth_bps = 8e6;
    config.seed = 5;
    return generate_campus_trace(config);
  }();
  return trace;
}

ShardRouterFactory bitmap_factory() {
  return [](const ClientNetwork& network, std::size_t shard) {
    EdgeRouterConfig config;
    config.network = network;
    config.seed = shard_seed(7, shard);
    return std::make_unique<EdgeRouter>(
        config, make_state_filter(bitmap_filter_spec(BitmapFilterConfig{})),
        std::make_unique<ConstantDropPolicy>(1.0));
  };
}

ShardRouterFactory spi_factory() {
  return [](const ClientNetwork& network, std::size_t shard) {
    EdgeRouterConfig config;
    config.network = network;
    config.seed = shard_seed(7, shard);
    return std::make_unique<EdgeRouter>(
        config, make_state_filter(spi_filter_spec(SpiFilterConfig{})),
        std::make_unique<ConstantDropPolicy>(1.0));
  };
}

std::uint64_t total_packets(const EdgeRouterStats& stats) {
  return stats.outbound_packets + stats.inbound_passed_packets +
         stats.inbound_dropped_packets + stats.suppressed_outbound_packets +
         stats.ignored_packets;
}

ParallelReplayResult run_with_spec(const std::string& spec_text,
                                   std::size_t threads,
                                   const ShardRouterFactory& factory) {
  const GeneratedTrace& trace = shared_trace();
  FaultInjector injector{FaultSpec::parse(spec_text), 7};
  ParallelReplayConfig config;
  config.threads = threads;
  config.shards = 8;
  if (injector.armed()) config.fault_injector = &injector;
  return parallel_replay(trace.packets, trace.network, factory, config);
}

TEST(FaultMatrix, EveryKindIsRunToRunReproducible) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault plane compiled out";
  const char* kSpecs[] = {
      "kill-shard:1@200",   "stall-shard:2@100:20", "corrupt:0.05",
      "clock-step:-1.5@500", "clock-skew:1.0001",   "flip-bit:0:123@50",
      "ring-overflow:3",     "kill-shard:1@200,corrupt:0.02,flip-bit:4:9@10",
  };
  for (const char* spec : kSpecs) {
    const ParallelReplayResult a = run_with_spec(spec, 4, bitmap_factory());
    const ParallelReplayResult b = run_with_spec(spec, 4, bitmap_factory());
    EXPECT_EQ(a.merged.stats, b.merged.stats) << spec;
    EXPECT_EQ(a.shard_stats, b.shard_stats) << spec;
    EXPECT_EQ(a.shard_packets, b.shard_packets) << spec;
    EXPECT_EQ(a.shard_failed, b.shard_failed) << spec;
    EXPECT_EQ(a.failover_packets, b.failover_packets) << spec;
    EXPECT_EQ(a.merged.metrics.deterministic(),
              b.merged.metrics.deterministic())
        << spec;
  }
}

TEST(FaultMatrix, EveryKindConservesPackets) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault plane compiled out";
  const GeneratedTrace& trace = shared_trace();
  const char* kSpecs[] = {
      "kill-shard:1@200", "stall-shard:2@100:20", "corrupt:0.05",
      "clock-step:-1.5@500", "clock-skew:1.0001", "flip-bit:0:123@50",
      "ring-overflow:3",
  };
  for (const char* spec : kSpecs) {
    const ParallelReplayResult result = run_with_spec(spec, 4,
                                                      bitmap_factory());
    EXPECT_EQ(total_packets(result.merged.stats) + result.unroutable_packets +
                  result.lost_packets,
              trace.packets.size())
        << spec;
  }
}

TEST(FaultMatrix, StallAndRingOverflowAreResultNeutral) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault plane compiled out";
  // Timing-plane faults perturb scheduling and backpressure only; the
  // merged outcome must be byte-identical to the fault-free run.
  const ParallelReplayResult clean = run_with_spec("", 4, bitmap_factory());
  for (const char* spec : {"stall-shard:1@50:30", "ring-overflow:1",
                           "stall-shard:1@50:30,ring-overflow:2"}) {
    const ParallelReplayResult faulted = run_with_spec(spec, 4,
                                                       bitmap_factory());
    EXPECT_EQ(clean.merged.stats, faulted.merged.stats) << spec;
    EXPECT_EQ(clean.shard_stats, faulted.shard_stats) << spec;
    EXPECT_EQ(clean.shard_packets, faulted.shard_packets) << spec;
  }
}

TEST(FaultMatrix, DaemonPlaneKindsAreInertInShardReplay) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault plane compiled out";
  // capture.* and checkpoint.* address the live daemon's capture loop
  // and checkpointer. Inside the shard replay engine they must parse,
  // ride along with shard-scoped kinds in one spec, and leave the result
  // byte-identical to a fault-free run.
  const ParallelReplayResult clean = run_with_spec("", 4, bitmap_factory());
  for (const char* spec :
       {"capture.kill@100", "capture.stall:40@100", "checkpoint.corrupt:1",
        "capture.kill@100,capture.stall:40@100,checkpoint.corrupt:1"}) {
    const ParallelReplayResult faulted =
        run_with_spec(spec, 4, bitmap_factory());
    EXPECT_EQ(clean.merged.stats, faulted.merged.stats) << spec;
    EXPECT_EQ(clean.shard_stats, faulted.shard_stats) << spec;
    EXPECT_EQ(clean.shard_packets, faulted.shard_packets) << spec;
    EXPECT_EQ(clean.shard_failed, faulted.shard_failed) << spec;
  }
  // Mixed daemon + shard kinds behave exactly like the shard kind alone.
  const ParallelReplayResult shard_only =
      run_with_spec("stall-shard:1@50:30", 4, bitmap_factory());
  const ParallelReplayResult mixed = run_with_spec(
      "stall-shard:1@50:30,capture.kill@10,checkpoint.corrupt:1", 4,
      bitmap_factory());
  EXPECT_EQ(shard_only.merged.stats, mixed.merged.stats);
  EXPECT_EQ(shard_only.shard_stats, mixed.shard_stats);
}

TEST(FaultMatrix, FlipBitPerturbsBitmapDecisions) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault plane compiled out";
  const GeneratedTrace& trace = shared_trace();
  // Flip a handful of bits in every shard's current vector early on: the
  // run must complete, and the flips are recorded as applied.
  FaultInjector injector{
      FaultSpec::parse("flip-bit:0:1@10,flip-bit:1:2@10,flip-bit:2:3@10"),
      7};
  ParallelReplayConfig config;
  config.threads = 4;
  config.shards = 8;
  config.fault_injector = &injector;
  const ParallelReplayResult result =
      parallel_replay(trace.packets, trace.network, bitmap_factory(), config);
  EXPECT_EQ(injector.bits_flipped(), 3u);
  EXPECT_EQ(injector.flips_ignored(), 0u);
  EXPECT_EQ(total_packets(result.merged.stats), trace.packets.size());
}

TEST(FaultMatrix, FlipBitIgnoredButCountedOnSpiFilter) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault plane compiled out";
  const GeneratedTrace& trace = shared_trace();
  FaultInjector injector{FaultSpec::parse("flip-bit:0:123@50"), 7};
  ParallelReplayConfig config;
  config.threads = 2;
  config.shards = 4;
  config.fault_injector = &injector;
  const ParallelReplayResult result =
      parallel_replay(trace.packets, trace.network, spi_factory(), config);
  EXPECT_EQ(injector.bits_flipped(), 0u);
  EXPECT_EQ(injector.flips_ignored(), 1u);
  EXPECT_EQ(total_packets(result.merged.stats), trace.packets.size());
}

TEST(FaultMatrix, FaultCountersAreExportedDeterministically) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault plane compiled out";
  const ParallelReplayResult result =
      run_with_spec("corrupt:0.05,kill-shard:1@200", 4, bitmap_factory());
  const MetricsSnapshot snap = result.merged.metrics.deterministic();
  bool saw_corrupted = false;
  bool saw_killed = false;
  for (const CounterSample& sample : snap.counters) {
    if (sample.name == "fault.packets_corrupted") {
      saw_corrupted = true;
      EXPECT_GT(sample.value, 0u);
    }
    if (sample.name == "replay.lanes_killed") {
      saw_killed = true;
      EXPECT_EQ(sample.value, 1u);
    }
  }
  EXPECT_TRUE(saw_corrupted);
  EXPECT_TRUE(saw_killed);
}

TEST(FaultMatrix, BindRejectsOutOfRangeShard) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault plane compiled out";
  const GeneratedTrace& trace = shared_trace();
  FaultInjector injector{FaultSpec::parse("kill-shard:9@0"), 7};
  ParallelReplayConfig config;
  config.shards = 4;
  config.fault_injector = &injector;
  EXPECT_THROW(parallel_replay(trace.packets, trace.network, bitmap_factory(),
                               config),
               std::invalid_argument);
}

}  // namespace
}  // namespace upbound
