// End-to-end: the analyzer run on a calibrated campus trace must
// reproduce the paper's Section 3.3 measurements -- the classification
// output matching ground truth, Table 2 shares, port classes, lifetime
// shape, and out-in delay bounds.
#include <gtest/gtest.h>

#include "analyzer/analyzer.h"
#include "trace/campus.h"

namespace upbound {
namespace {

CampusTraceConfig trace_config() {
  CampusTraceConfig config;
  // 40 s at 80 conns/s keeps the heavy-tailed transfer-size variance small
  // enough for the Table 2 byte-share bands below (a 30 s trace can be
  // dominated by a couple of tail draws).
  config.duration = Duration::sec(40.0);
  config.connections_per_sec = 80.0;
  config.bandwidth_bps = 10e6;
  config.seed = 3;
  return config;
}

class AnalyzerIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new GeneratedTrace(generate_campus_trace(trace_config()));
    analyzer_ = new TrafficAnalyzer{trace_->network};
    for (const PacketRecord& pkt : trace_->packets) analyzer_->process(pkt);
    report_ = new AnalyzerReport(analyzer_->finish());
  }
  static void TearDownTestSuite() {
    delete report_;
    delete analyzer_;
    delete trace_;
    report_ = nullptr;
    analyzer_ = nullptr;
    trace_ = nullptr;
  }

  static GeneratedTrace* trace_;
  static TrafficAnalyzer* analyzer_;
  static AnalyzerReport* report_;
};

GeneratedTrace* AnalyzerIntegrationTest::trace_ = nullptr;
TrafficAnalyzer* AnalyzerIntegrationTest::analyzer_ = nullptr;
AnalyzerReport* AnalyzerIntegrationTest::report_ = nullptr;

TEST_F(AnalyzerIntegrationTest, AllPacketsProcessed) {
  EXPECT_EQ(analyzer_->packets_processed(), trace_->packets.size());
  EXPECT_EQ(analyzer_->packets_skipped(), 0u);
}

TEST_F(AnalyzerIntegrationTest, ConnectionCountMatchesGroundTruth) {
  EXPECT_EQ(report_->total_connections, trace_->connection_count);
}

TEST_F(AnalyzerIntegrationTest, ClassificationAccuracyHigh) {
  std::size_t correct = 0, total = 0;
  analyzer_->connections().for_each([&](const ConnectionRecord& rec) {
    const auto it = trace_->truth.find(rec.tuple.canonical());
    ASSERT_NE(it, trace_->truth.end());
    ++total;
    if (rec.app == it->second) ++correct;
  });
  // Known imperfections: encrypted P2P can collide with the eDonkey
  // marker byte, and some short flows end up port-classified. The bulk
  // must still be right.
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.93);
}

TEST_F(AnalyzerIntegrationTest, IdentifiedP2pMostlyByPatternOrMemo) {
  std::size_t pattern_or_memo = 0, p2p_total = 0;
  analyzer_->connections().for_each([&](const ConnectionRecord& rec) {
    if (!is_p2p(rec.app)) return;
    ++p2p_total;
    if (rec.method == ClassifyMethod::kPattern ||
        rec.method == ClassifyMethod::kEndpointMemo) {
      ++pattern_or_memo;
    }
  });
  ASSERT_GT(p2p_total, 0u);
  EXPECT_GT(static_cast<double>(pattern_or_memo) /
                static_cast<double>(p2p_total),
            0.9);
}

TEST_F(AnalyzerIntegrationTest, ProtocolSharesTrackTable2) {
  const auto frac = [&](AppProtocol app) {
    return report_->share_of(app).connection_fraction;
  };
  EXPECT_NEAR(frac(AppProtocol::kBitTorrent), 0.479, 0.09);
  EXPECT_NEAR(frac(AppProtocol::kEdonkey), 0.220, 0.07);
  EXPECT_NEAR(frac(AppProtocol::kGnutella), 0.0756, 0.05);
  EXPECT_NEAR(frac(AppProtocol::kUnknown), 0.1755, 0.07);
  EXPECT_NEAR(frac(AppProtocol::kHttp), 0.0217, 0.02);
}

TEST_F(AnalyzerIntegrationTest, ByteSharesTrackTable2Utilization) {
  const auto frac = [&](AppProtocol app) {
    return report_->share_of(app).byte_fraction;
  };
  EXPECT_NEAR(frac(AppProtocol::kBitTorrent), 0.18, 0.09);
  EXPECT_NEAR(frac(AppProtocol::kEdonkey), 0.21, 0.10);
  EXPECT_NEAR(frac(AppProtocol::kGnutella), 0.16, 0.09);
  EXPECT_NEAR(frac(AppProtocol::kUnknown), 0.35, 0.13);
}

TEST_F(AnalyzerIntegrationTest, UploadFractionNearPaper) {
  EXPECT_GT(report_->upload_fraction(), 0.80);
  EXPECT_LT(report_->upload_fraction(), 0.97);
}

TEST_F(AnalyzerIntegrationTest, TcpCarriesBytesUdpCarriesConnections) {
  const double tcp_byte_share =
      static_cast<double>(report_->tcp_bytes) /
      static_cast<double>(report_->tcp_bytes + report_->udp_bytes);
  EXPECT_GT(tcp_byte_share, 0.985);
  const double udp_conn_share =
      static_cast<double>(report_->udp_connections) /
      static_cast<double>(report_->total_connections);
  EXPECT_NEAR(udp_conn_share, 0.69, 0.07);
}

TEST_F(AnalyzerIntegrationTest, NonP2pTcpPortsConcentrateOnWellKnown) {
  // Fig. 2: Non-P2P connections live on a handful of well-known ports.
  const auto& non_p2p = report_->tcp_port_cdf.at(PortClass::kNonP2p);
  ASSERT_GT(non_p2p.count(), 0u);
  EXPECT_GT(non_p2p.fraction_below(1024.0), 0.5);
  // P2P ports spread into the high range.
  const auto& p2p = report_->tcp_port_cdf.at(PortClass::kP2p);
  ASSERT_GT(p2p.count(), 0u);
  EXPECT_LT(p2p.fraction_below(1024.0), 0.1);
  EXPECT_GT(p2p.fraction_below(40000.0), 0.9);
}

TEST_F(AnalyzerIntegrationTest, UnknownPortDistributionResemblesP2p) {
  // The paper's key Fig. 2/3 observation: UNKNOWN port usage looks like
  // P2P (spread over 10000-40000), not like Non-P2P.
  const auto& unknown = report_->tcp_port_cdf.at(PortClass::kUnknown);
  ASSERT_GT(unknown.count(), 0u);
  EXPECT_LT(unknown.fraction_below(1024.0), 0.15);
}

TEST_F(AnalyzerIntegrationTest, UdpPortsNearUniformWithServiceSpikes) {
  const auto& all = report_->udp_port_cdf.at(PortClass::kAll);
  ASSERT_GT(all.count(), 100u);
  // Spread: no more than a third of samples below 10000 (service spikes
  // only), wide occupancy of the 10000-61000 listen+ephemeral ranges, and
  // a thin random-port tail above.
  EXPECT_LT(all.fraction_below(10000.0), 0.35);
  EXPECT_GT(all.fraction_below(61001.0), 0.9);
  EXPECT_DOUBLE_EQ(all.fraction_below(65535.0), 1.0);
}

TEST_F(AnalyzerIntegrationTest, LifetimeShapeMatchesFig4) {
  ASSERT_GT(report_->lifetimes.count(), 100u);
  // 30 s generation window with a 2x lifetime cap: verify the short-flow
  // mass the paper reports (90% under 45 s), not the clipped tail.
  EXPECT_GT(report_->lifetimes.fraction_below(45.0), 0.80);
  EXPECT_GT(report_->lifetimes.fraction_below(240.0), 0.94);
}

TEST_F(AnalyzerIntegrationTest, OutInDelaysShortLikeFig5) {
  ASSERT_GT(report_->out_in_delays.count(), 1000u);
  // Fig. 5: 99% under 2.8 s (small-trace sampling gets within ~0.5 pp).
  EXPECT_GT(report_->out_in_delays.fraction_below(2.8), 0.985);
  // And generally dominated by sub-second RTTs.
  EXPECT_GT(report_->out_in_delays.fraction_below(1.0), 0.85);
}

TEST_F(AnalyzerIntegrationTest, ProtocolTableRendersAllRows) {
  const std::string table = report_->protocol_table();
  EXPECT_NE(table.find("bittorrent"), std::string::npos);
  EXPECT_NE(table.find("UNKNOWN"), std::string::npos);
  EXPECT_NE(table.find("%"), std::string::npos);
}

TEST_F(AnalyzerIntegrationTest, FtpDataConnectionsLinked) {
  std::size_t ftp_data = 0;
  analyzer_->connections().for_each([&](const ConnectionRecord& rec) {
    if (rec.method == ClassifyMethod::kFtpData) ++ftp_data;
  });
  EXPECT_GT(ftp_data, 0u);
  EXPECT_EQ(ftp_data, analyzer_->classifier().ftp_data_hits());
}

}  // namespace
}  // namespace upbound
