#include "net/pcapng.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "trace/campus.h"
#include "util/byte_io.h"

namespace upbound {
namespace {

class PcapngTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("upbound_pcapng_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name()) +
              ".pcapng"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void write_bytes(const std::vector<std::uint8_t>& bytes) {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
  }

  std::string path_;
};

PacketRecord make_packet(double t_sec, std::uint16_t sport) {
  PacketRecord pkt;
  pkt.timestamp = SimTime::from_sec(t_sec);
  pkt.tuple = FiveTuple{Protocol::kTcp, Ipv4Addr{10, 0, 0, 1}, sport,
                        Ipv4Addr{8, 8, 8, 8}, 443};
  pkt.flags.ack = true;
  pkt.payload = {1, 2, 3, 4, 5, 6, 7};
  pkt.payload_size = 7;
  return pkt;
}

TEST_F(PcapngTest, WriteReadRoundTrip) {
  Trace trace;
  for (int i = 0; i < 20; ++i) {
    trace.push_back(make_packet(i * 0.25, static_cast<std::uint16_t>(1000 + i)));
  }
  {
    PcapngWriter writer{path_};
    writer.write_all(trace);
    EXPECT_EQ(writer.packets_written(), 20u);
  }
  PcapngReader reader{path_};
  const Trace got = reader.read_all();
  ASSERT_EQ(got.size(), trace.size());
  EXPECT_EQ(reader.blocks_skipped(), 0u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].timestamp, trace[i].timestamp);
    EXPECT_EQ(got[i].tuple, trace[i].tuple);
    EXPECT_EQ(got[i].payload, trace[i].payload);
  }
}

TEST_F(PcapngTest, CampusTraceSurvivesFormat) {
  CampusTraceConfig config;
  config.duration = Duration::sec(5.0);
  config.connections_per_sec = 30.0;
  config.bandwidth_bps = 1e6;
  config.seed = 4;
  const GeneratedTrace trace = generate_campus_trace(config);
  {
    PcapngWriter writer{path_};
    writer.write_all(trace.packets);
  }
  PcapngReader reader{path_};
  const Trace got = reader.read_all();
  EXPECT_EQ(got.size(), trace.packets.size());
}

TEST_F(PcapngTest, UnknownBlocksSkipped) {
  // Valid SHB + IDB via the writer, then a custom block, then one packet.
  {
    PcapngWriter writer{path_};
    writer.write(make_packet(1.0, 1000));
  }
  // Append an unknown block type and a second valid-file read check needs
  // the block between header and packets: craft manually instead.
  std::vector<std::uint8_t> bytes;
  {
    ByteWriter w{bytes};
    // SHB
    w.u32le(kPcapngShb);
    w.u32le(28);
    w.u32le(kPcapngByteOrderMagic);
    w.u16le(1);
    w.u16le(0);
    w.u32le(0xffffffff);
    w.u32le(0xffffffff);
    w.u32le(28);
    // IDB (Ethernet)
    w.u32le(kPcapngIdb);
    w.u32le(20);
    w.u16le(1);
    w.u16le(0);
    w.u32le(65535);
    w.u32le(20);
    // Unknown block (e.g. Name Resolution, type 4) with 4 bytes of body.
    w.u32le(0x00000004);
    w.u32le(16);
    w.u32le(0xdeadbeef);
    w.u32le(16);
  }
  write_bytes(bytes);
  PcapngReader reader{path_};
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.blocks_skipped(), 1u);
}

TEST_F(PcapngTest, BigEndianSectionReads) {
  // Hand-craft a big-endian section with one EPB.
  const PacketRecord pkt = make_packet(2.0, 1234);
  const auto frame = encode_frame(pkt);
  std::vector<std::uint8_t> bytes;
  ByteWriter w{bytes};
  // SHB, big-endian.
  w.u32be(kPcapngShb);  // palindromic anyway
  w.u32be(28);
  w.u32be(kPcapngByteOrderMagic);
  w.u16be(1);
  w.u16be(0);
  w.u32be(0xffffffff);
  w.u32be(0xffffffff);
  w.u32be(28);
  // IDB.
  w.u32be(kPcapngIdb);
  w.u32be(20);
  w.u16be(1);
  w.u16be(0);
  w.u32be(65535);
  w.u32be(20);
  // EPB.
  const std::uint64_t ts = 2'000'000;
  const std::uint32_t padded =
      (static_cast<std::uint32_t>(frame.size()) + 3u) & ~3u;
  const std::uint32_t total = 32 + padded;
  w.u32be(kPcapngEpb);
  w.u32be(total);
  w.u32be(0);
  w.u32be(static_cast<std::uint32_t>(ts >> 32));
  w.u32be(static_cast<std::uint32_t>(ts));
  w.u32be(static_cast<std::uint32_t>(frame.size()));
  w.u32be(static_cast<std::uint32_t>(frame.size()));
  w.bytes(frame);
  while (bytes.size() % 4 != 0) bytes.push_back(0);
  w.u32be(total);
  write_bytes(bytes);

  PcapngReader reader{path_};
  const auto got = reader.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->tuple, pkt.tuple);
  EXPECT_EQ(got->timestamp, pkt.timestamp);
  EXPECT_FALSE(reader.next().has_value());
}

TEST_F(PcapngTest, TsresolOptionRespected) {
  // IDB declaring millisecond resolution (if_tsresol = 3).
  const PacketRecord pkt = make_packet(0, 1);
  const auto frame = encode_frame(pkt);
  std::vector<std::uint8_t> bytes;
  ByteWriter w{bytes};
  w.u32le(kPcapngShb);
  w.u32le(28);
  w.u32le(kPcapngByteOrderMagic);
  w.u16le(1);
  w.u16le(0);
  w.u32le(0xffffffff);
  w.u32le(0xffffffff);
  w.u32le(28);
  // IDB with options: if_tsresol(9) len 1 value 3, padded; opt_end.
  w.u32le(kPcapngIdb);
  w.u32le(20 + 8 + 4);
  w.u16le(1);
  w.u16le(0);
  w.u32le(65535);
  w.u16le(9);   // if_tsresol
  w.u16le(1);
  w.u8(3);      // 10^-3 seconds
  w.u8(0);
  w.u8(0);
  w.u8(0);      // padding
  w.u16le(0);   // opt_endofopt
  w.u16le(0);
  w.u32le(20 + 8 + 4);
  // EPB with timestamp 1500 ticks = 1.5 s.
  const std::uint32_t padded =
      (static_cast<std::uint32_t>(frame.size()) + 3u) & ~3u;
  const std::uint32_t total = 32 + padded;
  w.u32le(kPcapngEpb);
  w.u32le(total);
  w.u32le(0);
  w.u32le(0);
  w.u32le(1500);
  w.u32le(static_cast<std::uint32_t>(frame.size()));
  w.u32le(static_cast<std::uint32_t>(frame.size()));
  w.bytes(frame);
  while (bytes.size() % 4 != 0) bytes.push_back(0);
  w.u32le(total);
  write_bytes(bytes);

  PcapngReader reader{path_};
  const auto got = reader.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->timestamp, SimTime::from_sec(1.5));
}

TEST_F(PcapngTest, MalformedFilesRejected) {
  write_bytes({1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_THROW(PcapngReader{path_}, PcapError);

  // Valid-looking SHB with a garbage byte-order magic.
  std::vector<std::uint8_t> bytes;
  ByteWriter w{bytes};
  w.u32le(kPcapngShb);
  w.u32le(28);
  w.u32le(0x12345678);
  write_bytes(bytes);
  EXPECT_THROW(PcapngReader{path_}, PcapError);
}

TEST_F(PcapngTest, ClassicPcapIsNotPcapng) {
  {
    PcapWriter writer{path_};
    writer.write(make_packet(0.0, 1));
  }
  EXPECT_THROW(PcapngReader{path_}, PcapError);
}

TEST_F(PcapngTest, MissingFileThrows) {
  EXPECT_THROW(PcapngReader{"/nonexistent/x.pcapng"}, PcapError);
}

}  // namespace
}  // namespace upbound
