// The health monitor and the degraded-operation stance: occupancy and
// clamped-clock signals drive a hysteretic healthy/degraded state
// machine, and a degraded router changes exactly one thing -- the
// stateless-inbound verdict (fail-open admits, fail-closed drops).
#include <gtest/gtest.h>

#include "fault/fault_injector.h"  // kFaultsCompiled
#include "fault/health_monitor.h"
#include "filter/bitmap_filter.h"
#include "filter/drop_policy.h"
#include "filter/filter_registry.h"
#include "sim/edge_router.h"

namespace upbound {
namespace {

TEST(HealthMonitor, OccupancyEntersAndExitsWithHysteresis) {
  HealthConfig config;
  config.stance = UnhealthyStance::kFailOpen;
  config.occupancy_enter = 0.5;
  config.occupancy_exit = 0.35;
  HealthMonitor monitor{config};
  EXPECT_FALSE(monitor.degraded());

  monitor.note_occupancy(0.4, SimTime::from_sec(1.0));
  EXPECT_FALSE(monitor.degraded());  // below enter: still healthy
  monitor.note_occupancy(0.6, SimTime::from_sec(2.0));
  EXPECT_TRUE(monitor.degraded());
  monitor.note_occupancy(0.4, SimTime::from_sec(3.0));
  EXPECT_TRUE(monitor.degraded());  // inside the hysteresis band
  monitor.note_occupancy(0.3, SimTime::from_sec(4.0));
  EXPECT_FALSE(monitor.degraded());  // below exit: recovered

  EXPECT_EQ(monitor.transitions_to_degraded(), 1u);
  EXPECT_EQ(monitor.transitions_to_healthy(), 1u);
}

TEST(HealthMonitor, ClampBurstTripsAndHoldExpires) {
  HealthConfig config;
  config.stance = UnhealthyStance::kFailClosed;
  config.clamp_threshold = 3;
  config.clamp_hold = Duration::sec(5.0);
  HealthMonitor monitor{config};

  monitor.note_clock_clamp(SimTime::from_sec(1.0));
  monitor.note_clock_clamp(SimTime::from_sec(1.1));
  EXPECT_FALSE(monitor.degraded());  // below threshold
  monitor.note_clock_clamp(SimTime::from_sec(1.2));
  EXPECT_TRUE(monitor.degraded());
  EXPECT_EQ(monitor.clamp_events(), 3u);

  // Signal holds while time stays inside the window ...
  monitor.note_occupancy(0.0, SimTime::from_sec(4.0));
  EXPECT_TRUE(monitor.degraded());
  // ... and clears once the hold expires with no further clamps.
  monitor.note_occupancy(0.0, SimTime::from_sec(12.0));
  EXPECT_FALSE(monitor.degraded());
}

TEST(HealthMonitor, ZeroClampThresholdDisablesTheClockSignal) {
  HealthConfig config;
  config.stance = UnhealthyStance::kFailOpen;
  config.clamp_threshold = 0;
  HealthMonitor monitor{config};
  for (int i = 0; i < 100; ++i) {
    monitor.note_clock_clamp(SimTime::from_sec(1.0));
  }
  EXPECT_FALSE(monitor.degraded());
  EXPECT_EQ(monitor.clamp_events(), 100u);
}

// ---------------- Router integration ----------------

ClientNetwork campus() {
  return ClientNetwork{{*Cidr::parse("140.112.30.0/24")}};
}

PacketRecord pkt(const FiveTuple& t, double t_sec) {
  PacketRecord p;
  p.timestamp = SimTime::from_sec(t_sec);
  p.tuple = t;
  p.flags.ack = true;
  p.payload_size = 100;
  return p;
}

FiveTuple out_conn(std::uint32_t n) {
  return FiveTuple{Protocol::kTcp, Ipv4Addr{140, 112, 30, 5},
                   static_cast<std::uint16_t>(1024 + n % 60000),
                   Ipv4Addr{0x3d000000u + n}, 80};
}

FiveTuple unknown_inbound(std::uint16_t sport = 3333) {
  return FiveTuple{Protocol::kTcp, Ipv4Addr{99, 88, 77, 66}, sport,
                   Ipv4Addr{140, 112, 30, 9}, 44444};
}

std::unique_ptr<EdgeRouter> health_router(UnhealthyStance stance,
                                          double enter = 0.2) {
  EdgeRouterConfig config;
  config.network = campus();
  config.health.stance = stance;
  config.health.occupancy_enter = enter;
  config.health.occupancy_exit = enter * 0.5;
  config.health.occupancy_sample_batches = 1;  // sample every packet
  BitmapFilterConfig filter_config;
  filter_config.log2_bits = 8;  // 256 bits/vector: easy to saturate
  filter_config.vector_count = 4;
  filter_config.hash_count = 3;
  return std::make_unique<EdgeRouter>(
      config, make_state_filter(bitmap_filter_spec(filter_config)),
      std::make_unique<ConstantDropPolicy>(1.0));
}

/// Drives enough distinct outbound connections through the tiny bitmap to
/// push its current-vector occupancy past `enter`.
void saturate(EdgeRouter& router, int connections = 60) {
  for (int i = 0; i < connections; ++i) {
    router.process(pkt(out_conn(static_cast<std::uint32_t>(i)),
                       0.001 * static_cast<double>(i)));
  }
}

std::uint64_t counter_value(const MetricsSnapshot& snap,
                            const std::string& name) {
  for (const CounterSample& sample : snap.counters) {
    if (sample.name == name) return sample.value;
  }
  return 0;
}

TEST(RouterHealth, DisabledStanceExposesNoHealthSurface) {
  auto router = health_router(UnhealthyStance::kDisabled);
  saturate(*router);
  EXPECT_EQ(router->health(), nullptr);
  const MetricsSnapshot snap = router->metrics_snapshot();
  for (const CounterSample& sample : snap.counters) {
    EXPECT_EQ(sample.name.rfind("health.", 0), std::string::npos)
        << sample.name;
  }
  for (const GaugeSample& gauge : snap.gauges) {
    EXPECT_NE(gauge.name, "health.state");
  }
}

TEST(RouterHealth, SaturationDegradesTheRouter) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault plane compiled out";
  auto router = health_router(UnhealthyStance::kFailOpen);
  ASSERT_NE(router->health(), nullptr);
  EXPECT_FALSE(router->health()->degraded());
  saturate(*router);
  // The poll runs at the head of each batch, so one more packet observes
  // the saturated occupancy and trips the transition.
  router->process(pkt(out_conn(1000), 1.0));
  EXPECT_TRUE(router->health()->degraded());

  const MetricsSnapshot snap = router->metrics_snapshot();
  EXPECT_GE(counter_value(snap, "health.transitions_degraded"), 1u);
  bool saw_state = false;
  for (const GaugeSample& gauge : snap.gauges) {
    if (gauge.name == "health.state") {
      saw_state = true;
      EXPECT_DOUBLE_EQ(gauge.value, 1.0);
    }
  }
  EXPECT_TRUE(saw_state);
}

TEST(RouterHealth, FailOpenAdmitsStatelessInboundWhileDegraded) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault plane compiled out";
  auto router = health_router(UnhealthyStance::kFailOpen);
  saturate(*router);
  router->process(pkt(out_conn(1000), 1.0));
  ASSERT_TRUE(router->health()->degraded());

  // P_d = 1 would normally drop this; the fail-open stance waives it.
  EXPECT_EQ(router->process(pkt(unknown_inbound(), 1.1)),
            RouterDecision::kPassedInbound);
  const MetricsSnapshot snap = router->metrics_snapshot();
  EXPECT_GE(counter_value(snap, "health.fail_open_admits"), 1u);
}

TEST(RouterHealth, FailClosedDropsWithoutPolicyOrBlocklistSideEffects) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault plane compiled out";
  auto router = health_router(UnhealthyStance::kFailClosed);
  saturate(*router);
  router->process(pkt(out_conn(1000), 1.0));
  ASSERT_TRUE(router->health()->degraded());

  const EdgeRouterStats before = router->stats();
  EXPECT_EQ(router->process(pkt(unknown_inbound(), 1.1)),
            RouterDecision::kDroppedByPolicy);
  const EdgeRouterStats after = router->stats();
  EXPECT_EQ(after.inbound_dropped_packets,
            before.inbound_dropped_packets + 1);

  // The drop bypassed Eq. 1 and the blocklist: the policy stage ran zero
  // evaluations for it, and a repeat of the same connection is dropped by
  // the degraded stance again, not by a blocklist hit.
  const MetricsSnapshot snap = router->metrics_snapshot();
  EXPECT_EQ(counter_value(snap, "policy.evaluations"),
            counter_value(snap, "policy.drops") +
                counter_value(snap, "policy.passes"));
  EXPECT_GE(counter_value(snap, "health.fail_closed_drops"), 1u);
  EXPECT_EQ(router->process(pkt(unknown_inbound(), 1.2)),
            RouterDecision::kDroppedByPolicy);
  EXPECT_EQ(router->stats().blocked_drops, before.blocked_drops);
}

TEST(RouterHealth, HealthyRouterBehavesExactlyLikeDisabled) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault plane compiled out";
  // With a sky-high threshold the monitor never trips; decisions and
  // stats must match a router with the feature off entirely.
  auto enabled = health_router(UnhealthyStance::kFailClosed, 0.99);
  auto disabled = health_router(UnhealthyStance::kDisabled, 0.99);
  for (int i = 0; i < 200; ++i) {
    const PacketRecord p =
        i % 3 == 2 ? pkt(unknown_inbound(static_cast<std::uint16_t>(i)),
                         0.01 * static_cast<double>(i))
                   : pkt(out_conn(static_cast<std::uint32_t>(i / 2)),
                         0.01 * static_cast<double>(i));
    ASSERT_EQ(enabled->process(p), disabled->process(p)) << "packet " << i;
  }
  EXPECT_FALSE(enabled->health()->degraded());
  const EdgeRouterStats a = enabled->stats();
  EdgeRouterStats b = disabled->stats();
  // The enabled router's snapshot additionally carries the (all-zero)
  // health.* counters; compare everything else field by field.
  b.stage_counters = a.stage_counters;
  EdgeRouterStats a_copy = a;
  a_copy.stage_counters = b.stage_counters;
  EXPECT_EQ(a_copy, b);
  for (const CounterSample& sample : a.stage_counters) {
    if (sample.name.rfind("health.", 0) == 0) {
      EXPECT_EQ(sample.value, 0u) << sample.name;
    }
  }
}

TEST(RouterHealth, OccupancyBlindBackendCountsSkippedSamples) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault plane compiled out";
  // The aging backend has no kCapOccupancy: an armed health monitor runs
  // blind on the saturation signal and says so via a counter instead of
  // silently reporting "healthy".
  EdgeRouterConfig config;
  config.network = campus();
  config.health.stance = UnhealthyStance::kFailOpen;
  config.health.occupancy_enter = 0.2;
  config.health.occupancy_exit = 0.1;
  config.health.occupancy_sample_batches = 1;
  auto router = std::make_unique<EdgeRouter>(
      config,
      make_state_filter(FilterRegistry::instance().parse("aging",
                                                         MapFilterArgs{})),
      std::make_unique<ConstantDropPolicy>(1.0));
  ASSERT_NE(router->health(), nullptr);
  saturate(*router);
  router->process(pkt(out_conn(1000), 1.0));

  const MetricsSnapshot snap = router->metrics_snapshot();
  EXPECT_GT(counter_value(snap, "health.occupancy_unsupported"), 0u);
  // Blind, not degraded: the occupancy signal never fired.
  EXPECT_FALSE(router->health()->degraded());
  EXPECT_EQ(counter_value(snap, "health.transitions_degraded"), 0u);

  // An occupancy-capable backend under the identical setup never counts a
  // skipped sample.
  auto seeing = health_router(UnhealthyStance::kFailOpen);
  saturate(*seeing);
  seeing->process(pkt(out_conn(1000), 1.0));
  EXPECT_EQ(counter_value(seeing->metrics_snapshot(),
                          "health.occupancy_unsupported"),
            0u);
}

TEST(RouterHealth, RegressedClocksCanDegradeTheRouter) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault plane compiled out";
  EdgeRouterConfig config;
  config.network = campus();
  config.health.stance = UnhealthyStance::kFailClosed;
  config.health.occupancy_enter = 0.99;  // occupancy signal out of play
  config.health.clamp_threshold = 2;
  config.health.clamp_hold = Duration::sec(60.0);
  BitmapFilterConfig filter_config;
  filter_config.log2_bits = 12;
  auto router = std::make_unique<EdgeRouter>(
      config, make_state_filter(bitmap_filter_spec(filter_config)),
      std::make_unique<ConstantDropPolicy>(1.0));

  router->process(pkt(out_conn(1), 5.0));
  EXPECT_FALSE(router->health()->degraded());
  // Two regressed timestamps: clamped, counted, and past the threshold.
  router->process(pkt(out_conn(2), 1.0));
  router->process(pkt(out_conn(3), 1.5));
  router->process(pkt(out_conn(4), 5.1));
  EXPECT_TRUE(router->health()->degraded());
  EXPECT_EQ(router->stats().out_of_order_packets, 2u);
}

}  // namespace
}  // namespace upbound
