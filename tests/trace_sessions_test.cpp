#include "trace/sessions.h"

#include <gtest/gtest.h>

#include <set>

namespace upbound {
namespace {

class SessionsTest : public ::testing::Test {
 protected:
  NetworkModel net_{NetworkModelConfig{}};
  Rng rng_{7};
};

TEST_F(SessionsTest, RttSamplesInPlausibleRange) {
  for (int i = 0; i < 5000; ++i) {
    const Duration rtt = sample_rtt(rng_);
    EXPECT_GE(rtt, Duration::msec(5));
    EXPECT_LE(rtt, Duration::sec(2.5));
  }
}

TEST_F(SessionsTest, RttP99UnderPaperBound) {
  // Fig. 5: 99% of out-in delays under 2.8 s.
  int over = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (sample_rtt(rng_) > Duration::sec(2.8)) ++over;
  }
  EXPECT_LT(static_cast<double>(over) / n, 0.01);
}

TEST_F(SessionsTest, LifetimeShapeMatchesFig4) {
  // With the paper's 45.84 s mean: ~90% under 45 s, 95% under 4 min,
  // under ~1.5% above 810 s.
  const Duration mean = Duration::sec(45.84);
  int under_45 = 0, under_240 = 0, over_810 = 0;
  const int n = 30'000;
  for (int i = 0; i < n; ++i) {
    const Duration life = sample_lifetime(rng_, mean);
    if (life < Duration::sec(45.0)) ++under_45;
    if (life < Duration::sec(240.0)) ++under_240;
    if (life > Duration::sec(810.0)) ++over_810;
  }
  EXPECT_NEAR(static_cast<double>(under_45) / n, 0.90, 0.03);
  EXPECT_GT(static_cast<double>(under_240) / n, 0.945);
  EXPECT_LT(static_cast<double>(over_810) / n, 0.015);
}

TEST_F(SessionsTest, HttpSessionShape) {
  for (int i = 0; i < 50; ++i) {
    const auto conns =
        make_http_session(net_, rng_, SimTime::from_sec(1.0));
    ASSERT_EQ(conns.size(), 1u);
    const ConnectionSpec& c = conns[0];
    EXPECT_EQ(c.app, AppProtocol::kHttp);
    EXPECT_TRUE(c.initiator_internal);
    EXPECT_EQ(c.tuple.protocol, Protocol::kTcp);
    EXPECT_TRUE(net_.client_network().is_internal(c.tuple.src_addr));
    EXPECT_FALSE(net_.client_network().is_internal(c.tuple.dst_addr));
    EXPECT_TRUE(c.tuple.dst_port == 80 || c.tuple.dst_port == 8080 ||
                c.tuple.dst_port == 3128);
    ASSERT_GE(c.messages.size(), 2u);
    EXPECT_TRUE(c.messages[0].from_initiator);
    EXPECT_FALSE(c.messages[1].from_initiator);
    // Response dominates: download-heavy.
    EXPECT_GT(c.messages[1].total_bytes, c.messages[0].total_bytes);
  }
}

TEST_F(SessionsTest, DnsSessionShape) {
  const auto conns = make_dns_session(net_, rng_, SimTime::origin());
  ASSERT_GE(conns.size(), 1u);
  ASSERT_LE(conns.size(), 3u);
  for (const auto& c : conns) {
    EXPECT_EQ(c.app, AppProtocol::kDns);
    EXPECT_EQ(c.tuple.protocol, Protocol::kUdp);
    EXPECT_EQ(c.tuple.dst_port, 53);
    EXPECT_EQ(c.close, CloseKind::kNone);
    EXPECT_EQ(c.messages.size(), 2u);
  }
}

TEST_F(SessionsTest, FtpSessionControlAndDataLinked) {
  for (int i = 0; i < 20; ++i) {
    const auto conns = make_ftp_session(net_, rng_, SimTime::origin());
    ASSERT_GE(conns.size(), 2u);
    const ConnectionSpec& control = conns[0];
    EXPECT_EQ(control.tuple.dst_port, 21);
    EXPECT_EQ(control.app, AppProtocol::kFtp);

    // Every data connection's port must be announced in a PASV reply on
    // the control stream.
    std::set<std::uint16_t> announced;
    for (const auto& msg : control.messages) {
      const std::string text(msg.prefix.begin(), msg.prefix.end());
      if (text.rfind("227 ", 0) == 0) {
        const auto open = text.rfind(',');
        // "...,p1,p2)." -- parse the final two comma fields.
        const auto prev = text.rfind(',', open - 1);
        const int p1 = std::stoi(text.substr(prev + 1));
        const int p2 = std::stoi(text.substr(open + 1));
        announced.insert(static_cast<std::uint16_t>(p1 * 256 + p2));
      }
    }
    for (std::size_t d = 1; d < conns.size(); ++d) {
      EXPECT_EQ(conns[d].app, AppProtocol::kFtp);
      EXPECT_EQ(conns[d].tuple.dst_addr, control.tuple.dst_addr);
      EXPECT_TRUE(announced.contains(conns[d].tuple.dst_port))
          << "data port " << conns[d].tuple.dst_port << " not announced";
      EXPECT_GE(conns[d].start, control.start);
    }
  }
}

TEST_F(SessionsTest, OtherServiceUsesWellKnownPorts) {
  const std::set<std::uint16_t> allowed{22, 25, 110, 143, 443, 993};
  for (int i = 0; i < 30; ++i) {
    const auto conns =
        make_other_service_session(net_, rng_, SimTime::origin());
    ASSERT_EQ(conns.size(), 1u);
    EXPECT_TRUE(allowed.contains(conns[0].tuple.dst_port));
    EXPECT_EQ(conns[0].app, AppProtocol::kOther);
  }
}

TEST_F(SessionsTest, P2pSessionMixesDirections) {
  P2pPeerParams params;
  params.app = AppProtocol::kBitTorrent;
  params.outbound_conns = 2;
  params.inbound_conns = 3;
  params.udp_exchanges = 5;
  const auto conns =
      make_p2p_peer_session(net_, rng_, SimTime::origin(), params);
  ASSERT_EQ(conns.size(), 10u);

  int outbound_tcp = 0, inbound_tcp = 0, udp = 0;
  for (const auto& c : conns) {
    EXPECT_EQ(c.app, AppProtocol::kBitTorrent);
    if (c.tuple.protocol == Protocol::kUdp) {
      ++udp;
    } else if (c.initiator_internal) {
      ++outbound_tcp;
      EXPECT_TRUE(net_.client_network().is_internal(c.tuple.src_addr));
    } else {
      ++inbound_tcp;
      EXPECT_FALSE(net_.client_network().is_internal(c.tuple.src_addr));
      EXPECT_TRUE(net_.client_network().is_internal(c.tuple.dst_addr));
    }
  }
  EXPECT_EQ(outbound_tcp, 2);
  EXPECT_EQ(inbound_tcp, 3);
  EXPECT_EQ(udp, 5);
}

TEST_F(SessionsTest, P2pInboundConnectionsTargetSameListenPort) {
  P2pPeerParams params;
  params.inbound_conns = 5;
  params.outbound_conns = 0;
  params.udp_exchanges = 0;
  const auto conns =
      make_p2p_peer_session(net_, rng_, SimTime::origin(), params);
  std::set<std::uint16_t> listen_ports;
  for (const auto& c : conns) listen_ports.insert(c.tuple.dst_port);
  EXPECT_EQ(listen_ports.size(), 1u);  // one shared listen socket
}

TEST_F(SessionsTest, P2pUploadsFlowOutboundOnInboundConnections) {
  P2pPeerParams params;
  params.inbound_conns = 4;
  params.outbound_conns = 0;
  params.udp_exchanges = 0;
  params.mean_upload_bytes = 1e6;
  const auto conns =
      make_p2p_peer_session(net_, rng_, SimTime::origin(), params);
  for (const auto& c : conns) {
    std::uint64_t from_external = 0, from_internal = 0;
    for (const auto& m : c.messages) {
      // Initiator is the external peer on inbound connections.
      (m.from_initiator ? from_external : from_internal) += m.total_bytes;
    }
    EXPECT_GT(from_internal, from_external)
        << "upload should dominate on inbound P2P connections";
  }
}

TEST_F(SessionsTest, UnknownP2pUsesRandomPortsAndOpaquePayloads) {
  P2pPeerParams params;
  params.app = AppProtocol::kUnknown;
  params.outbound_conns = 5;
  params.inbound_conns = 5;
  params.udp_exchanges = 5;
  const auto conns =
      make_p2p_peer_session(net_, rng_, SimTime::origin(), params);
  std::set<std::uint16_t> ports;
  for (const auto& c : conns) {
    ports.insert(c.tuple.dst_port);
    for (const auto& m : c.messages) {
      if (!m.prefix.empty()) {
        const std::string text(m.prefix.begin(),
                               m.prefix.begin() + std::min<std::size_t>(
                                                      m.prefix.size(), 13));
        EXPECT_EQ(text.find("BitTorrent"), std::string::npos);
        EXPECT_EQ(text.find("GNUTELLA"), std::string::npos);
      }
    }
  }
  EXPECT_GT(ports.size(), 3u);  // no single well-known port
}

TEST_F(SessionsTest, EdonkeyUdpSometimesUsesDefaultPorts) {
  P2pPeerParams params;
  params.app = AppProtocol::kEdonkey;
  params.outbound_conns = 0;
  params.inbound_conns = 0;
  params.udp_exchanges = 100;
  const auto conns =
      make_p2p_peer_session(net_, rng_, SimTime::origin(), params);
  int default_port_hits = 0;
  for (const auto& c : conns) {
    if (c.tuple.dst_port == 4672 || c.tuple.dst_port == 4661 ||
        c.tuple.src_port == 4672 || c.tuple.src_port == 4661) {
      ++default_port_hits;
    }
  }
  EXPECT_GT(default_port_hits, 10);  // the Fig. 3 eDonkey spikes
}

TEST_F(SessionsTest, SessionsAreDeterministicPerSeed) {
  Rng a{123};
  Rng b{123};
  const auto x = make_http_session(net_, a, SimTime::origin());
  const auto y = make_http_session(net_, b, SimTime::origin());
  ASSERT_EQ(x.size(), y.size());
  EXPECT_EQ(x[0].tuple, y[0].tuple);
  ASSERT_EQ(x[0].messages.size(), y[0].messages.size());
  for (std::size_t i = 0; i < x[0].messages.size(); ++i) {
    EXPECT_EQ(x[0].messages[i].total_bytes, y[0].messages[i].total_bytes);
  }
}

}  // namespace
}  // namespace upbound
